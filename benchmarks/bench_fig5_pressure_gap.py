"""Figure 5: MaxLive - MinAvg — distance from the absolute pressure bound.

Paper reference: with the bidirectional slack scheduler, 46% of loops
achieve MaxLive = MinAvg exactly and 93% land within 10 rotating
registers of the bound; Cydrome's scheduler is visibly worse (its
histogram has a heavier tail).  Reproduce: a large optimal mass for the
new scheduler, >=90% within 10 RRs, and new-beats-old in aggregate.
"""

from repro.experiments import cumulative_at, figure5, run_corpus

from _shared import corpus, corpus_size, machine, measured, publish


def test_figure5(benchmark):
    new = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack"),
        rounds=1,
        iterations=1,
    )
    old = measured("cydrome")
    publish("figure5", figure5(new, old) + f"\n(corpus size {corpus_size()})")

    new_gaps = [m.pressure_gap for m in new if m.success]
    old_gaps = [m.pressure_gap for m in old if m.success]
    assert cumulative_at(new_gaps, 0) >= 40.0  # paper: 46% optimal
    assert cumulative_at(new_gaps, 10) >= 90.0  # paper: 93% within 10
    # New scheduler at least matches the old one near the bound.
    assert cumulative_at(new_gaps, 0) >= cumulative_at(old_gaps, 0)
    assert sum(new_gaps) <= sum(old_gaps)
