"""Shared infrastructure for the table/figure benchmarks.

Every benchmark regenerates one artifact of the paper's evaluation
(Tables 2-4, Figures 5-8, the §6 effort statistics, and two ablations).
The corpus defaults to 300 loops for quick runs; set ``REPRO_CORPUS=1525``
to reproduce at the paper's full scale.

Measured corpus runs are cached per (size, algorithm, options) so the
figure benchmarks — which need both schedulers' results — do not pay for
re-measuring what an earlier benchmark already produced; each benchmark
still *times* its own primary computation via ``benchmark.pedantic``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.core import SchedulerOptions
from repro.experiments import LoopMetrics, run_corpus
from repro.machine import cydra5
from repro.workloads import default_corpus_size, paper_corpus

_MACHINE = cydra5()
_CORPUS_CACHE: Dict[int, list] = {}
_RUN_CACHE: Dict[Tuple[int, str, Tuple], List[LoopMetrics]] = {}

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def corpus_size() -> int:
    return default_corpus_size(300)


def corpus(size: int = None):
    size = size or corpus_size()
    if size not in _CORPUS_CACHE:
        _CORPUS_CACHE[size] = paper_corpus(size)
    return _CORPUS_CACHE[size]


def machine():
    return _MACHINE


def measured(algorithm: str, options: SchedulerOptions = None, size: int = None):
    """Cached corpus measurement for one scheduler configuration."""
    size = size or corpus_size()
    key = (size, algorithm, _options_key(options))
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_corpus(
            corpus(size), _MACHINE, algorithm=algorithm, options=options
        )
    return _RUN_CACHE[key]


def _options_key(options: SchedulerOptions) -> Tuple:
    if options is None:
        return ()
    return (
        options.budget_ratio,
        options.max_attempts,
        options.ii_step_percent,
        options.bidirectional,
        options.critical_threshold,
    )


def publish(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/out/."""
    print()
    print(text)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
