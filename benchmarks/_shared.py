"""Back-compat facade over :mod:`harness` for the bench_*.py scripts.

The measurement/caching machinery that used to live here moved into
``benchmarks/harness.py`` (which itself builds on ``repro.obs.bench``);
``measured()`` results now come from profiled runs, so span breakdowns
are available via ``harness.measured_run(...)`` instead of opaque wall
times.  Existing imports keep working unchanged.
"""

from __future__ import annotations

from harness import (  # noqa: F401  (re-exported for the bench scripts)
    OUT_DIR,
    MeasuredRun,
    corpus,
    corpus_size,
    machine,
    measured,
    measured_run,
    publish,
)
