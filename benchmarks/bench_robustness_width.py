"""§7 robustness, machine-width axis: narrow and wide Table 1 variants.

Complements the load-latency sweep: the §7 claim that the scheduler "is
quite robust" is tested against machines with halved and doubled
functional-unit counts.  Expectations: optimality (II = MII for the
*respective* machine's MII) stays high everywhere, and the bidirectional
pressure advantage survives — resource scarcity changes MII, not the
scheduler's ability to reach it.
"""

import dataclasses

from repro.experiments import run_corpus
from repro.machine import Machine, table1_units

from _shared import corpus, corpus_size, publish


def _scaled_machine(name: str, factor: float) -> Machine:
    units = tuple(
        dataclasses.replace(unit, count=max(1, int(unit.count * factor)))
        for unit in table1_units()
    )
    return Machine(name, units)


MACHINES = [
    ("narrow (1x ports)", _scaled_machine("cydra5-narrow", 0.5)),
    ("paper (Table 1)", _scaled_machine("cydra5-paper", 1.0)),
    ("wide (2x units)", _scaled_machine("cydra5-wide", 2.0)),
]


def _measure():
    programs = corpus()[: min(200, corpus_size())]
    rows = {}
    for label, target in MACHINES:
        slack = run_corpus(programs, target, algorithm="slack")
        early = run_corpus(programs, target, algorithm="unidirectional")
        rows[label] = {
            "optimal": 100.0 * sum(1 for m in slack if m.optimal) / len(slack),
            "sum_mii": sum(m.mii for m in slack),
            "sum_ii": sum(m.ii for m in slack if m.success),
            "slack_pressure": sum(m.max_live for m in slack if m.success),
            "early_pressure": sum(m.max_live for m in early if m.success),
        }
    return rows


def test_robustness_width(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [
        "Robustness: machine-width sweep (Section 7)",
        f"{'machine':<20} {'II=MII':>8} {'sum MII':>8} {'sum II':>8} "
        f"{'slack prs':>10} {'early prs':>10}",
    ]
    for label, row in rows.items():
        lines.append(
            f"{label:<20} {row['optimal']:>7.1f}% {row['sum_mii']:>8} "
            f"{row['sum_ii']:>8} {row['slack_pressure']:>10} {row['early_pressure']:>10}"
        )
    publish("robustness_width", "\n".join(lines) + f"\n(corpus size {corpus_size()})")

    for label, row in rows.items():
        assert row["optimal"] >= 90.0, label
        assert row["slack_pressure"] <= row["early_pressure"], label
    # Scarcer resources force larger MIIs; wider ones smaller.
    assert rows["narrow (1x ports)"]["sum_mii"] >= rows["paper (Table 1)"]["sum_mii"]
    assert rows["wide (2x units)"]["sum_mii"] <= rows["paper (Table 1)"]["sum_mii"]
