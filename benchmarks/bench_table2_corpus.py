"""Table 2: corpus complexity measurements (min / 50% / 90% / max).

Paper reference (1,525 loops):

    # Basic Blocks           1     1     2     30
    # Operations             4    13    33    634
    # Critical Ops at MII    0     4    18    269
    # Ops on Recurrences     0     0    10    178
    # Div/Mod/Sqrt Ops       0     0     0     31
    RecMII                   1     1     4    148
    ResMII                   1     3     9    105
    MII                      1     3     9    148
    MinAvg at MII            2    10    25    157
    # GPRs                   0     3     9     59

We reproduce the shape: op counts with a long tail, RecMII mostly 1,
ResMII dominating MII, MinAvg tracking op counts.
"""

from repro.experiments import run_corpus, table2

from _shared import corpus, corpus_size, machine, publish


def test_table2(benchmark):
    metrics = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack"),
        rounds=1,
        iterations=1,
    )
    publish("table2", table2(metrics) + f"\n(corpus size {corpus_size()})")
    assert len(metrics) == corpus_size()
