"""§8 comparison: slack scheduling vs Warp-style hierarchical reduction.

Paper: "neither of the two prior approaches is totally satisfactory
because the early placement of all operations from a recurrence circuit
can be an unnecessary constraint on the scheduler; after all, the
minimum schedule length of a recurrence circuit need not be anywhere
near its limit of II cycles.  The empirical results in [9] and Section
7 support this intuition."

This benchmark makes that comparison concrete: Table-3-style rows for
the Warp-style scheduler next to the slack scheduler, on the same
corpus.  Expected shape: the hierarchical scheduler (no backtracking,
recurrences pre-packed) achieves MII less often, fails on more loops,
and pays more II in aggregate — with the gap concentrated in the
recurrence classes.
"""

from repro.experiments import run_corpus, scheduling_performance

from _shared import corpus, corpus_size, machine, measured, publish


def test_related_warp(benchmark):
    metrics = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="warp"),
        rounds=1,
        iterations=1,
    )
    slack = measured("slack")
    text = scheduling_performance(
        metrics, "Warp-style hierarchical scheduling performance"
    )
    publish("related_warp", text + f"\n(corpus size {corpus_size()})")

    warp_optimal = sum(1 for m in metrics if m.optimal)
    slack_optimal = sum(1 for m in slack if m.optimal)
    warp_failures = sum(1 for m in metrics if not m.success)
    slack_failures = sum(1 for m in slack if not m.success)
    warp_ii = sum(m.ii for m in metrics if m.success)
    slack_ii = sum(m.ii for m in slack if m.success)

    assert warp_optimal <= slack_optimal
    assert warp_failures >= slack_failures
    # Aggregate II comparison only over the common successful loops.
    common = {
        m.name for m in metrics if m.success
    } & {m.name for m in slack if m.success}
    warp_common = sum(m.ii for m in metrics if m.name in common)
    slack_common = sum(m.ii for m in slack if m.name in common)
    assert warp_common >= slack_common
