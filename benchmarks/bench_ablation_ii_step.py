"""Footnote 6 ablation: II escalation by 4% versus by +1.

Paper reference: "Incrementing II by 1 lowered the total II by 45 at
the expense of 29% more time spent in the scheduler."  Reproduce the
tradeoff's direction: the +1 policy never yields a *larger* total II but
costs more scheduling work (placements) on the loops that miss MII.
"""

from repro.core import SchedulerOptions
from repro.experiments import run_corpus

from _shared import corpus, corpus_size, machine, measured, publish

PLUS_ONE = SchedulerOptions(ii_step_percent=0.0)


def test_ablation_ii_step(benchmark):
    plus_one = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack", options=PLUS_ONE),
        rounds=1,
        iterations=1,
    )
    four_percent = measured("slack")

    total_plus = sum(m.ii for m in plus_one if m.success)
    total_four = sum(m.ii for m in four_percent if m.success)
    work_plus = sum(m.placements for m in plus_one)
    work_four = sum(m.placements for m in four_percent)
    text = "\n".join(
        [
            "Ablation: II escalation policy (footnote 6)",
            f"{'policy':<16} {'sum II':>8} {'placements':>12} {'restarts':>9}",
            f"{'II += 4%':<16} {total_four:>8} {work_four:>12} "
            f"{sum(m.attempts - 1 for m in four_percent):>9}",
            f"{'II += 1':<16} {total_plus:>8} {work_plus:>12} "
            f"{sum(m.attempts - 1 for m in plus_one):>9}",
            f"(corpus size {corpus_size()})",
        ]
    )
    publish("ablation_ii_step", text)

    # +1 finds an II at least as small, at no less scheduling work.
    assert total_plus <= total_four
    assert work_plus >= work_four * 0.95
