"""Micro-benchmarks of the scheduler itself (proper timing runs).

These are conventional pytest-benchmark timings (multiple rounds) of
scheduling single representative loops, complementing the one-shot
corpus benchmarks: use them to track scheduler performance regressions.
"""

import pytest

from repro.core import modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.workloads.livermore import kernel7_state
from repro.workloads.generator import LoopGenerator

MACHINE = cydra5()


@pytest.fixture(scope="module")
def medium_loop():
    loop = compile_loop(kernel7_state())
    return loop, build_ddg(loop, MACHINE)


@pytest.fixture(scope="module")
def large_loop():
    program = None
    generator = LoopGenerator(13)
    # Draw until a genuinely large loop appears (deterministic).
    for index in range(200):
        candidate = generator.generate(f"big{index}", "both")
        compiled = compile_loop(candidate)
        if program is None or len(compiled.real_ops) > len(program[0].real_ops):
            program = (compiled, candidate)
        if len(program[0].real_ops) >= 80:
            break
    loop = program[0]
    return loop, build_ddg(loop, MACHINE)


def test_schedule_medium_loop(benchmark, medium_loop):
    loop, ddg = medium_loop
    result = benchmark(lambda: modulo_schedule(loop, MACHINE, ddg=ddg))
    assert result.success


def test_schedule_large_loop(benchmark, large_loop):
    loop, ddg = large_loop
    result = benchmark(lambda: modulo_schedule(loop, MACHINE, ddg=ddg))
    assert result.success


def test_schedule_cydrome_medium(benchmark, medium_loop):
    loop, ddg = medium_loop
    result = benchmark(lambda: modulo_schedule(loop, MACHINE, algorithm="cydrome", ddg=ddg))
    assert result.success
