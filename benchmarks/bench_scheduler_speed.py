"""Micro-benchmarks of the scheduler itself (proper timing runs).

These are conventional pytest-benchmark timings (multiple rounds) of
scheduling single representative loops, complementing the one-shot
corpus benchmarks: use them to track scheduler performance regressions.

``test_trace_overhead`` is the observability guardrail: it schedules a
Table-2-style corpus untraced, with the default :class:`NullTracer`
(whose cost is one attribute test per decision), with the disabled
:class:`NullProfiler` (same pattern), with the batch progress stream
(per-job lifecycle events through a :class:`ProgressTracker` plus
latency-quantile recording, the per-job cost ``run_batch`` adds), with
the bounded :class:`FlightRecorder` ring buffer (always-on crash
forensics), and with the full :class:`CollectingTracer` + metrics +
enabled :class:`Profiler`.  It asserts the disabled tracer, the
disabled profiler, the progress/quantile path, *and* the flight
recorder each stay under 5% overhead, and publishes the numbers to
``benchmarks/out/trace_overhead.txt``.
"""

import gc
import time

import pytest

from repro.core import modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.obs import (
    NULL_PROFILER,
    NULL_TRACER,
    CollectingTracer,
    FlightRecorder,
    MetricsRegistry,
    Profiler,
)
from repro.obs.progress import (
    KIND_STARTED,
    KIND_SUBMITTED,
    NullProgressSink,
    ProgressTracker,
    StragglerWatchdog,
    job_event,
)
from repro.workloads import paper_corpus
from repro.workloads.livermore import kernel7_state
from repro.workloads.generator import LoopGenerator

from _shared import publish

MACHINE = cydra5()


@pytest.fixture(scope="module")
def medium_loop():
    loop = compile_loop(kernel7_state())
    return loop, build_ddg(loop, MACHINE)


@pytest.fixture(scope="module")
def large_loop():
    program = None
    generator = LoopGenerator(13)
    # Draw until a genuinely large loop appears (deterministic).
    for index in range(200):
        candidate = generator.generate(f"big{index}", "both")
        compiled = compile_loop(candidate)
        if program is None or len(compiled.real_ops) > len(program[0].real_ops):
            program = (compiled, candidate)
        if len(program[0].real_ops) >= 80:
            break
    loop = program[0]
    return loop, build_ddg(loop, MACHINE)


def test_schedule_medium_loop(benchmark, medium_loop):
    loop, ddg = medium_loop
    result = benchmark(lambda: modulo_schedule(loop, MACHINE, ddg=ddg))
    assert result.success


def test_schedule_large_loop(benchmark, large_loop):
    loop, ddg = large_loop
    result = benchmark(lambda: modulo_schedule(loop, MACHINE, ddg=ddg))
    assert result.success


def test_schedule_cydrome_medium(benchmark, medium_loop):
    loop, ddg = medium_loop
    result = benchmark(lambda: modulo_schedule(loop, MACHINE, algorithm="cydrome", ddg=ddg))
    assert result.success


# ----------------------------------------------------------------------
# Traced vs untraced: the NullTracer must be (nearly) free
# ----------------------------------------------------------------------
def _one_corpus_run(loops, **schedule_kwargs):
    """Wall time of scheduling every pre-compiled loop once.

    Collects garbage before starting the clock: a traced configuration
    leaves thousands of dead event objects behind, and without the
    explicit collect their GC debt lands inside the *next*
    configuration's timing window, skewing the paired ratios (the
    untraced baseline, which runs first in every round, used to absorb
    the CollectingTracer's garbage from the previous round).
    """
    gc.collect()
    started = time.perf_counter()
    for loop, ddg in loops:
        modulo_schedule(loop, MACHINE, ddg=ddg, **schedule_kwargs)
    return time.perf_counter() - started


def _one_corpus_run_with_progress(loops):
    """Wall time of the same corpus with the batch progress stream: the
    per-job lifecycle events, straggler watchdog, and latency-quantile
    histogram that ``run_batch`` layers on top of the scheduler."""
    from repro.obs.progress import KIND_FINISHED

    registry = MetricsRegistry()
    tracker = ProgressTracker(
        total=len(loops),
        sinks=[NullProgressSink()],
        metrics=registry,
        watchdog=StragglerWatchdog(),
    )
    latencies = registry.histogram("service.job.seconds")
    gc.collect()  # same GC-debt isolation as _one_corpus_run
    started = time.perf_counter()
    for index, (loop, ddg) in enumerate(loops):
        tracker.emit(job_event(KIND_SUBMITTED, index, loop.name))
        tracker.emit(job_event(KIND_STARTED, index, loop.name))
        job_started = time.perf_counter()
        modulo_schedule(loop, MACHINE, ddg=ddg)
        seconds = time.perf_counter() - job_started
        tracker.emit(
            job_event(KIND_FINISHED, index, loop.name, status="ok", seconds=seconds)
        )
        latencies.record(seconds)
    elapsed = time.perf_counter() - started
    tracker.close()
    return elapsed


def test_trace_overhead(benchmark):
    loops = []
    for program in paper_corpus(120, seed=1993):
        loop = compile_loop(program)
        loops.append((loop, build_ddg(loop, MACHINE)))

    # Interleave the configurations within every round and compare
    # *paired* per-round ratios (median over rounds), so machine noise
    # and clock-frequency drift cannot masquerade as tracer overhead.
    rounds = 7

    def measure():
        samples = []
        for _ in range(rounds):
            samples.append(
                (
                    _one_corpus_run(loops),
                    _one_corpus_run(loops, tracer=NULL_TRACER),
                    _one_corpus_run(loops, profiler=NULL_PROFILER),
                    _one_corpus_run_with_progress(loops),
                    _one_corpus_run(loops, tracer=FlightRecorder()),
                    _one_corpus_run(
                        loops,
                        tracer=CollectingTracer(),
                        metrics=MetricsRegistry(),
                        profiler=Profiler(),
                    ),
                )
            )
        return samples

    _one_corpus_run(loops)  # warm caches
    samples = benchmark.pedantic(measure, rounds=1, iterations=1)

    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    untraced = min(s[0] for s in samples)
    null_traced = min(s[1] for s in samples)
    null_profiled = min(s[2] for s in samples)
    progressed = min(s[3] for s in samples)
    flight_traced = min(s[4] for s in samples)
    full_traced = min(s[5] for s in samples)
    null_overhead = median(s[1] / s[0] for s in samples) - 1.0
    prof_overhead = median(s[2] / s[0] for s in samples) - 1.0
    progress_overhead = median(s[3] / s[0] for s in samples) - 1.0
    flight_overhead = median(s[4] / s[0] for s in samples) - 1.0
    full_overhead = median(s[5] / s[0] for s in samples) - 1.0
    report = "\n".join(
        [
            f"trace overhead ({len(loops)}-loop corpus, {rounds} interleaved rounds,",
            "best-of wall times and median paired per-round overhead)",
            f"  untraced (no tracer argument):   {untraced * 1e3:8.1f} ms",
            f"  NullTracer (the default):        {null_traced * 1e3:8.1f} ms "
            f"({null_overhead:+.1%})",
            f"  NullProfiler (the default):      {null_profiled * 1e3:8.1f} ms "
            f"({prof_overhead:+.1%})",
            f"  progress stream + quantiles:     {progressed * 1e3:8.1f} ms "
            f"({progress_overhead:+.1%})",
            f"  FlightRecorder ring (64 slots):  {flight_traced * 1e3:8.1f} ms "
            f"({flight_overhead:+.1%})",
            f"  tracer + metrics + profiler:     {full_traced * 1e3:8.1f} ms "
            f"({full_overhead:+.1%})",
            "",
            "invariant: the opt-out NullTracer and NullProfiler paths must",
            "each stay within 5% of the untraced scheduler (one attribute",
            "test per decision/site), the batch progress stream (per-job",
            "lifecycle events + latency-quantile tracking) must cost under 5%",
            "because it runs per job, not per scheduling decision, and the",
            "always-on FlightRecorder ring buffer (bounded append, no",
            "timestamping) must also stay within the same 5% budget.",
        ]
    )
    publish("trace_overhead", report)
    assert null_overhead < 0.05, (
        f"NullTracer overhead {null_overhead:.1%} exceeds the 5% budget"
    )
    assert prof_overhead < 0.05, (
        f"NullProfiler overhead {prof_overhead:.1%} exceeds the 5% budget"
    )
    assert progress_overhead < 0.05, (
        f"progress-stream overhead {progress_overhead:.1%} exceeds the 5% budget"
    )
    assert flight_overhead < 0.05, (
        f"flight-recorder overhead {flight_overhead:.1%} exceeds the 5% budget"
    )
