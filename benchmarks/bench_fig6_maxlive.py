"""Figure 6: MaxLive — overall rotating-register pressure.

Paper reference: modulo scheduling does not need excessively many
rotating registers — 92% of loops use <= 32 RRs and only 5 loops exceed
64.  Reproduce: the bulk of the distribution below 32 registers and a
thin tail past 64.
"""

from repro.experiments import cumulative_at, figure6, run_corpus

from _shared import corpus, corpus_size, machine, measured, publish


def test_figure6(benchmark):
    new = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack"),
        rounds=1,
        iterations=1,
    )
    old = measured("cydrome")
    publish("figure6", figure6(new, old) + f"\n(corpus size {corpus_size()})")

    live = [m.max_live for m in new if m.success]
    assert cumulative_at(live, 32) >= 75.0  # paper: 92% <= 32 RRs
    heavy = sum(1 for v in live if v > 64)
    assert heavy <= max(2, len(live) // 50)  # paper: 5 loops of 1,525
