"""§3.2 substrate check: rotating allocation achieves ~MaxLive.

Paper reference (quoting Rau et al. '92 data, footnote 4): the
wands-only end-fit strategy with adjacency ordering never needed more
than MaxLive + 1 registers, and best-fit variants never more than
MaxLive + 5.  This justified approximating register pressure with
MaxLive throughout the evaluation.  Reproduce: small overshoot across
the corpus for each (fit, ordering) strategy pair.
"""

import collections

from repro.core import modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.regalloc import FIT_STRATEGIES, ORDERINGS, allocate_registers

from _shared import corpus, machine, publish


def _allocate_corpus(fit, ordering, programs):
    overshoots = collections.Counter()
    for program in programs:
        loop = compile_loop(program)
        ddg = build_ddg(loop, machine())
        result = modulo_schedule(loop, machine(), ddg=ddg)
        if not result.success:
            continue
        assignment = allocate_registers(result.schedule, ddg, fit=fit, ordering=ordering)
        overshoots[assignment.rr.overshoot] += 1
    return overshoots


def test_regalloc_overshoot(benchmark):
    programs = corpus()[: min(150, len(corpus()))]
    main = benchmark.pedantic(
        lambda: _allocate_corpus("end_fit", "adjacency", programs),
        rounds=1,
        iterations=1,
    )
    lines = ["Rotating allocation: registers used beyond the MaxLive bound",
             f"{'strategy':<24} distribution (overshoot: loops)"]
    lines.append(f"{'end_fit/adjacency':<24} {dict(sorted(main.items()))}")
    for fit in FIT_STRATEGIES:
        for ordering in ORDERINGS:
            if (fit, ordering) == ("end_fit", "adjacency"):
                continue
            dist = _allocate_corpus(fit, ordering, programs[:60])
            lines.append(f"{fit + '/' + ordering:<24} {dict(sorted(dist.items()))}")
    publish("regalloc_overshoot", "\n".join(lines))

    worst = max(main)
    total = sum(main.values())
    # Paper/Rau '92 shape: overwhelmingly at or near MaxLive.
    assert worst <= 8
    assert main[0] + main.get(1, 0) >= total * 0.5
