"""§6: scheduler effort — backtracking volume and time breakdown.

Paper reference (1,525 loops): 889 loops needed no backtracking; the
other 636 placed 23,603 operations in 306,860 central-loop iterations,
invoking step 3 157,694 times (ejecting 282,130 operations); step 6
(restart at a larger II) fired only 139 times.  Cydrome's scheduler
backtracked 3.7x as much and took 6.5x longer.  Reproduce: most loops
schedule without backtracking, ejections concentrate in a minority of
loops, restarts are rare, and the Cydrome baseline ejects several times
more than the slack scheduler.
"""

from repro.experiments import run_corpus, section6_effort

from _shared import corpus, corpus_size, machine, measured, publish


def test_section6_effort(benchmark):
    metrics = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack"),
        rounds=1,
        iterations=1,
    )
    cydrome = measured("cydrome")

    slack_ejections = sum(m.ejections for m in metrics)
    cydrome_ejections = sum(m.ejections for m in cydrome)
    factor = cydrome_ejections / max(1, slack_ejections)
    text = (
        section6_effort(metrics)
        + f"\n\nCydrome baseline ejections: {cydrome_ejections} "
        + f"({factor:.1f}x the slack scheduler's {slack_ejections})"
        + f"\n(corpus size {corpus_size()})"
    )
    publish("section6_effort", text)

    no_backtracking = sum(1 for m in metrics if not m.backtracked)
    restarts = sum(m.attempts - 1 for m in metrics)
    assert no_backtracking >= len(metrics) * 0.30  # paper: 58%
    assert restarts <= len(metrics) * 0.10  # paper: 139/1525 = 9%
    assert cydrome_ejections >= slack_ejections  # paper: 3.7x
