"""§3.1 extension: unrolling to exploit fractional MII.

The paper: "if a compiler performs loop unrolling, then it can take
advantage of fractional lower bounds.  For instance, if a loop had an
exact minimum II of 3/2, then the compiler could unroll the loop once
and attempt to schedule for an II of 3.  Unfortunately, the current
compiler does not perform any such loop transformations."

This benchmark implements the missing transformation and measures it on
recurrence-limited loops: per-source-iteration II drops toward the
fractional bound as the unroll factor grows, while semantics (checked
elsewhere by the test suite) are preserved.
"""

import dataclasses

from repro.core import modulo_schedule
from repro.frontend import ArrayRef, Assign, DoLoop, Scalar, compile_loop
from repro.frontend.transforms import unroll
from repro.machine import Machine, table1_units

from _shared import publish


def _wide_machine() -> Machine:
    """Table 1 with doubled unit counts.

    Unrolling multiplies per-iteration resource use by the factor, so on
    the paper's narrow machine ResMII quickly masks the recurrence-bound
    gains this experiment isolates; a 2x-wide machine keeps the cases
    recurrence-bound across the sweep.
    """
    widened = tuple(
        dataclasses.replace(unit, count=unit.count * 2) for unit in table1_units()
    )
    return Machine("cydra5-wide", widened)


def _fractional_cases():
    # Exact minimum 3/2: mul(2) + add(1) over distance 2.
    frac_3_2 = DoLoop(
        "frac32",
        body=[Assign(ArrayRef("x"), ArrayRef("x", -2) * Scalar("c") + ArrayRef("y"))],
        arrays={"x": 300, "y": 300},
        scalars={"c": 0.5},
        trip=24,
    )
    # Exact minimum 4/3: mul(2) + mul(2) over distance 3.
    frac_4_3 = DoLoop(
        "frac43",
        body=[
            Assign(
                ArrayRef("x"),
                ArrayRef("x", -3) * Scalar("c") * ArrayRef("y"),
            )
        ],
        arrays={"x": 400, "y": 400},
        scalars={"c": 0.9},
        trip=24,
    )
    return [(frac_3_2, 3 / 2), (frac_4_3, 4 / 3)]


def _sweep(program, factors, target):
    rows = []
    for factor in factors:
        transformed = unroll(program, factor) if factor > 1 else program
        result = modulo_schedule(compile_loop(transformed), target)
        rows.append((factor, result.ii, result.ii / factor, result.optimal))
    return rows


def test_extension_unroll(benchmark):
    cases = _fractional_cases()
    target = _wide_machine()
    sweeps = benchmark.pedantic(
        lambda: [(p.name, bound, _sweep(p, [1, 2, 3, 4], target)) for p, bound in cases],
        rounds=1,
        iterations=1,
    )
    lines = ["Extension: unrolling for fractional MII (Section 3.1)",
             "(on a 2x-wide Table 1 machine, keeping the loops recurrence-bound)"]
    for name, bound, rows in sweeps:
        lines.append(f"\n{name} (exact minimum II = {bound:.3f} per source iteration)")
        lines.append(f"{'factor':>7} {'II':>5} {'II/iter':>8} {'optimal':>8}")
        for factor, ii, per_iter, optimal in rows:
            lines.append(f"{factor:>7} {ii:>5} {per_iter:>8.3f} {str(optimal):>8}")
    publish("extension_unroll", "\n".join(lines))

    for name, bound, rows in sweeps:
        base = rows[0][2]
        best = min(per_iter for _, _, per_iter, _ in rows)
        assert best < base, f"{name}: unrolling never improved throughput"
        assert best <= bound + 0.51, f"{name}: did not approach the fractional bound"
