"""§8 ablation: dynamic slack priority vs frozen initial slack.

The paper's intuition for why the dynamic priority matters: "the
operations on a recurrence circuit can have a lot of slack until one of
them gets placed, at which point the slack can sharply converge nearly
to zero ... The dynamic-priority scheme can detect this transition
because the scheduler maintains precise Estart and Lstart bounds for
all operations at all times."  Cydrome's scheduler instead used a
static priority (minimal *initial* slack) and had to pre-place every
recurrence operation to stay safe.

The 2x2 decomposition below isolates the two slack-scheduler
ingredients — dynamic priority and bidirectional placement — on the
recurrence-bearing loops where the priority scheme earns its keep.
"""

from repro.core import SchedulerOptions
from repro.experiments import run_corpus

from _shared import corpus, corpus_size, machine, measured, publish

CONFIGS = [
    ("dynamic + bidirectional", SchedulerOptions()),
    ("dynamic + early-only", SchedulerOptions(bidirectional=False)),
    ("static + bidirectional", SchedulerOptions(dynamic_priority=False)),
    ("static + early-only", SchedulerOptions(dynamic_priority=False, bidirectional=False)),
]


def _summarize(metrics):
    recurrence = [m for m in metrics if m.klass in ("recurrence", "both")]
    return {
        "optimal": 100.0 * sum(1 for m in metrics if m.optimal) / len(metrics),
        "rec_optimal": (
            100.0 * sum(1 for m in recurrence if m.optimal) / len(recurrence)
            if recurrence
            else 0.0
        ),
        "pressure": sum(m.max_live for m in metrics if m.success),
        "ejections": sum(m.ejections for m in metrics),
    }


def test_ablation_priority(benchmark):
    def run_all():
        rows = {}
        for label, options in CONFIGS:
            if label == "dynamic + bidirectional":
                metrics = measured("slack")
            else:
                metrics = run_corpus(
                    corpus(), machine(), algorithm="slack", options=options
                )
            rows[label] = _summarize(metrics)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Ablation: dynamic priority x bidirectional placement (Sections 4.3, 5.2, 8)",
        f"{'configuration':<26} {'II=MII':>8} {'rec II=MII':>11} "
        f"{'sum MaxLive':>12} {'ejections':>10}",
    ]
    for label, row in rows.items():
        lines.append(
            f"{label:<26} {row['optimal']:>7.1f}% {row['rec_optimal']:>10.1f}% "
            f"{row['pressure']:>12} {row['ejections']:>10}"
        )
    publish("ablation_priority", "\n".join(lines) + f"\n(corpus size {corpus_size()})")

    full = rows["dynamic + bidirectional"]
    static = rows["static + early-only"]
    # The full scheme dominates the fully-static one on both axes.
    assert full["optimal"] >= static["optimal"] - 0.5
    assert full["pressure"] <= rows["dynamic + early-only"]["pressure"]
    # Dynamic priority specifically helps the recurrence classes.
    assert full["rec_optimal"] >= rows["static + bidirectional"]["rec_optimal"] - 0.5
