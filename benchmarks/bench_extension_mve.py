"""§2.3 comparison: rotating register file vs modulo variable expansion.

The paper motivates the rotating register file as the hardware that
avoids MVE's code duplication: "this modulo variable expansion
technique can result in a large amount of code expansion [18]".  This
benchmark quantifies the claim over the corpus: for every scheduled
loop, kernel-only code (rotating file) is exactly one kernel copy,
while MVE needs prologue + U unrolled kernels + epilogue, with U driven
by the longest lifetime.  Register cost is compared too: rotating
MaxLive vs MVE's sum of per-value name counts.
"""

import statistics

from repro.bounds import rr_max_live
from repro.codegen.mve import plan_mve
from repro.core import modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg

from _shared import corpus, corpus_size, machine, publish


def _measure(programs):
    rows = []
    for program in programs:
        loop = compile_loop(program)
        ddg = build_ddg(loop, machine())
        result = modulo_schedule(loop, machine(), ddg=ddg)
        if not result.success:
            continue
        rotating_pressure = rr_max_live(loop, ddg, result.schedule.times, result.ii)
        by_policy = {}
        for policy in ("minimal", "power2", "uniform"):
            try:
                plan = plan_mve(result.schedule, ddg, policy=policy)
            except RuntimeError:
                by_policy[policy] = None
                continue
            by_policy[policy] = (plan.unroll, plan.expansion, plan.total_registers)
        rows.append((program.name, rotating_pressure, by_policy))
    return rows


def test_extension_mve(benchmark):
    programs = corpus()[: min(200, corpus_size())]
    rows = benchmark.pedantic(lambda: _measure(programs), rounds=1, iterations=1)

    lines = [
        "Extension: rotating file vs modulo variable expansion (Section 2.3)",
        f"loops measured: {len(rows)} (kernel-only code expansion = 1.00x always)",
    ]
    for policy in ("minimal", "power2", "uniform"):
        expansions = [r[2][policy][1] for r in rows if r[2][policy] is not None]
        unrolls = [r[2][policy][0] for r in rows if r[2][policy] is not None]
        blown = sum(1 for r in rows if r[2][policy] is None)
        lines.append(
            f"  MVE {policy:<8}: median expansion {statistics.median(expansions):5.2f}x, "
            f"max {max(expansions):6.2f}x; median unroll {statistics.median(unrolls):.0f}, "
            f"max {max(unrolls)}; {blown} loops over the unroll cap"
        )
    rotating = [r[1] for r in rows]
    mve_regs = [r[2]["power2"][2] for r in rows if r[2]["power2"] is not None]
    lines.append(
        f"  registers: rotating MaxLive median {statistics.median(rotating):.0f} "
        f"vs MVE(power2) names median {statistics.median(mve_regs):.0f}"
    )
    publish("extension_mve", "\n".join(lines))

    power2 = [r[2]["power2"][1] for r in rows if r[2]["power2"] is not None]
    # The paper's claim: MVE costs a large amount of code expansion.
    assert statistics.median(power2) >= 2.0
    assert max(power2) >= 4.0
