"""Table 4: Cydrome-style baseline performance by loop class.

Paper reference: Cydrome's scheduler achieves MII on 91% of loops
(1,393/1,525), fails to pipeline 14 loops, and lands at total II / MII
= 1.12x, an 11% slowdown versus the slack scheduler.  The qualitative
claims to reproduce: strictly fewer optimal loops than Table 3, a worse
aggregate ratio, and a heavier II > MII tail.
"""

from repro.experiments import run_corpus, table4

from _shared import corpus, corpus_size, machine, measured, publish


def test_table4(benchmark):
    metrics = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="cydrome"),
        rounds=1,
        iterations=1,
    )
    publish("table4", table4(metrics) + f"\n(corpus size {corpus_size()})")

    slack = measured("slack")
    cyd_optimal = sum(1 for m in metrics if m.optimal)
    slack_optimal = sum(1 for m in slack if m.optimal)
    cyd_ratio = sum(m.ii for m in metrics) / max(1, sum(m.mii for m in metrics))
    slack_ratio = sum(m.ii for m in slack) / max(1, sum(m.mii for m in slack))
    # The paper's ordering: the slack scheduler wins on both counts.
    assert cyd_optimal <= slack_optimal
    assert cyd_ratio >= slack_ratio
