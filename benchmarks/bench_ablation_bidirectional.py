"""§7 ablation: the bidirectional heuristic is what cuts register pressure.

Paper reference: "This performance is due to the bidirectional
heuristics of Section 5.2; without them, the slack scheduler generates
nearly the same register pressure as Cydrome's scheduler."  Reproduce:
slack-with-heuristic <= slack-without-heuristic ~= Cydrome in aggregate
MaxLive, with no loss of achieved II.
"""

from repro.experiments import run_corpus

from _shared import corpus, corpus_size, machine, measured, publish


def test_ablation_bidirectional(benchmark):
    unidirectional = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="unidirectional"),
        rounds=1,
        iterations=1,
    )
    slack = measured("slack")
    cydrome = measured("cydrome")

    def total_pressure(metrics):
        return sum(m.max_live for m in metrics if m.success)

    def total_ii(metrics):
        return sum(m.ii for m in metrics if m.success)

    rows = [
        ("slack (bidirectional)", total_pressure(slack), total_ii(slack)),
        ("slack (early-only)", total_pressure(unidirectional), total_ii(unidirectional)),
        ("cydrome baseline", total_pressure(cydrome), total_ii(cydrome)),
    ]
    text = "\n".join(
        ["Ablation: bidirectional placement (Section 7)",
         f"{'configuration':<24} {'sum MaxLive':>12} {'sum II':>8}"]
        + [f"{name:<24} {pressure:>12} {ii:>8}" for name, pressure, ii in rows]
        + [f"(corpus size {corpus_size()})"]
    )
    publish("ablation_bidirectional", text)

    slack_pressure = total_pressure(slack)
    uni_pressure = total_pressure(unidirectional)
    cyd_pressure = total_pressure(cydrome)
    # Bidirectional wins; early-only lands near the Cydrome baseline.
    assert slack_pressure <= uni_pressure
    assert abs(uni_pressure - cyd_pressure) <= 0.15 * cyd_pressure
