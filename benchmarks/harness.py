"""Unified measurement harness for the table/figure benchmark suite.

This is the pytest-side face of :mod:`repro.obs.bench`: one shared,
cached corpus-measurement layer that every ``bench_*.py`` script pulls
its data from.  Each cached entry is a :class:`MeasuredRun` carrying
the per-loop metrics *and* a profiler span breakdown
(:mod:`repro.obs.prof`), so a benchmark that reports "time" can say
where the time went instead of quoting one opaque wall number.

The corpus defaults to 300 loops for quick runs; set
``REPRO_CORPUS=1525`` to reproduce at the paper's full scale.  Results
are cached per (size, algorithm, options) so the figure benchmarks —
which need both schedulers' results — do not pay for re-measuring what
an earlier benchmark already produced.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional, Tuple

from repro.core import SchedulerOptions
from repro.experiments import LoopMetrics, run_corpus
from repro.machine import cydra5
from repro.obs.bench import Scenario, run_scenario, scenario_registry
from repro.obs.prof import Profiler
from repro.workloads import default_corpus_size, paper_corpus

_MACHINE = cydra5()
_CORPUS_CACHE: Dict[int, list] = {}

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@dataclasses.dataclass
class MeasuredRun:
    """One cached corpus measurement: metrics + where the time went."""

    metrics: List[LoopMetrics]
    profile: dict  # Profiler.snapshot(): spans, counters, peak memory
    wall_seconds: float

    def span_seconds(self, path: str) -> float:
        """Cumulative seconds of one span path ('' -> 0.0)."""
        entry = self.profile.get("spans", {}).get(path)
        return entry["cum_seconds"] if entry else 0.0


_RUN_CACHE: Dict[Tuple[int, str, Tuple], MeasuredRun] = {}


def corpus_size() -> int:
    return default_corpus_size(300)


def corpus(size: int = None):
    size = size or corpus_size()
    if size not in _CORPUS_CACHE:
        _CORPUS_CACHE[size] = paper_corpus(size)
    return _CORPUS_CACHE[size]


def machine():
    return _MACHINE


def options_key(options: Optional[SchedulerOptions]) -> Tuple:
    if options is None:
        return ()
    return (
        options.budget_ratio,
        options.max_attempts,
        options.ii_step_percent,
        options.bidirectional,
        options.critical_threshold,
    )


def measured_run(
    algorithm: str, options: SchedulerOptions = None, size: int = None
) -> MeasuredRun:
    """Cached profiled corpus measurement for one configuration."""
    size = size or corpus_size()
    key = (size, algorithm, options_key(options))
    run = _RUN_CACHE.get(key)
    if run is None:
        profiler = Profiler()
        started = time.perf_counter()
        metrics = run_corpus(
            corpus(size), _MACHINE, algorithm=algorithm, options=options,
            profiler=profiler,
        )
        run = _RUN_CACHE[key] = MeasuredRun(
            metrics=metrics,
            profile=profiler.snapshot(),
            wall_seconds=time.perf_counter() - started,
        )
    return run


def measured(
    algorithm: str, options: SchedulerOptions = None, size: int = None
) -> List[LoopMetrics]:
    """The metrics of :func:`measured_run` (the historical interface)."""
    return measured_run(algorithm, options, size).metrics


def publish(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/out/."""
    print()
    print(text)
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


__all__ = [
    "MeasuredRun",
    "OUT_DIR",
    "Scenario",
    "corpus",
    "corpus_size",
    "machine",
    "measured",
    "measured_run",
    "options_key",
    "publish",
    "run_scenario",
    "scenario_registry",
]
