"""§7 robustness: results persist across functional-unit latencies.

Paper: "the scheduler appears quite robust, as other experiments with
different latencies for the functional units give very similar
performance results and compilation times."  This benchmark sweeps the
memory latency register (§2.1) across 2 / 13 / 27 cycles and reports
optimality and pressure for the slack scheduler and the unidirectional
ablation.  The claims to reproduce: II = MII rates stay high at every
latency, and the bidirectional advantage never inverts.

The sweep runs through the heterogeneous batch path
(:func:`repro.experiments.run_corpus_sweep`): all three latencies are
submitted as ONE batch with per-job machines, so the parallel backends
interleave configurations across workers and each (loop, latency) pair
keeps its own cache key.
"""

import os

from repro.experiments import cumulative_at, run_corpus_sweep
from repro.machine import cydra5

from _shared import corpus, corpus_size, publish

LATENCIES = (2, 13, 27)


def _measure_all():
    machines = [cydra5(load_latency=latency) for latency in LATENCIES]
    programs = corpus()[: min(250, corpus_size())]
    jobs = min(4, os.cpu_count() or 1)
    results = {latency: {} for latency in LATENCIES}
    for algorithm in ("slack", "unidirectional"):
        swept = run_corpus_sweep(
            programs, machines, algorithm=algorithm, jobs=jobs
        )
        for latency, metrics in zip(LATENCIES, swept):
            gaps = [m.pressure_gap for m in metrics if m.success]
            results[latency][algorithm] = {
                "optimal_ii": 100.0 * sum(1 for m in metrics if m.optimal) / len(metrics),
                "optimal_pressure": cumulative_at(gaps, 0),
                "sum_maxlive": sum(m.max_live for m in metrics if m.success),
            }
    return results


def test_robustness_latency(benchmark):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    lines = [
        "Robustness: memory latency sweep (Section 7)",
        f"{'latency':>8} {'algorithm':<16} {'II=MII':>8} {'gap=0':>7} {'sum MaxLive':>12}",
    ]
    for latency, rows in results.items():
        for algorithm, row in rows.items():
            lines.append(
                f"{latency:>8} {algorithm:<16} {row['optimal_ii']:>7.1f}% "
                f"{row['optimal_pressure']:>6.1f}% {row['sum_maxlive']:>12}"
            )
    publish("robustness_latency", "\n".join(lines))

    for latency, rows in results.items():
        assert rows["slack"]["optimal_ii"] >= 90.0, f"latency {latency}"
        assert (
            rows["slack"]["sum_maxlive"] <= rows["unidirectional"]["sum_maxlive"]
        ), f"bidirectional advantage inverted at latency {latency}"
