"""§8 future work: slack scheduling on straight-line code, vs IPS.

The paper: "the bidirectional slack-scheduling framework, which can be
applied to straight-line code as well as loops, attempts to integrate
lifetime sensitivity into the placement of each operation.  Future
experimentation may assess how well slack-scheduling would work in the
context where IPS has been studied."

The experiment: over a corpus of basic blocks (loop bodies with the
carried dependences dropped), compare

* critical-path list scheduling (the pre-IPS baseline);
* IPS with a per-block register limit two below the baseline's pressure
  (so its pressure-reduction mode genuinely engages);
* the bidirectional slack framework in straight-line mode.

Reported per scheduler: total makespan and total peak register
pressure.  Expected shape: slack buys a visible pressure reduction for
a small makespan cost, *without* needing a register-limit knob.
"""

from repro.core.acyclic import acyclic_ddg, schedule_ips, schedule_list, schedule_slack
from repro.frontend import compile_loop

from _shared import corpus, corpus_size, machine, publish


def _measure(programs):
    rows = {"list": [0, 0], "ips": [0, 0], "slack": [0, 0]}
    for program in programs:
        loop = compile_loop(program)
        ddg = acyclic_ddg(loop, machine())
        base = schedule_list(loop, machine(), ddg)
        limited = schedule_ips(
            loop, machine(), ddg, pressure_limit=max(2, base.pressure - 2)
        )
        slack = schedule_slack(loop, machine(), ddg)
        for name, result in (("list", base), ("ips", limited), ("slack", slack)):
            rows[name][0] += result.length
            rows[name][1] += result.pressure
    return rows


def test_future_ips(benchmark):
    programs = corpus()[: min(200, corpus_size())]
    rows = benchmark.pedantic(lambda: _measure(programs), rounds=1, iterations=1)
    lines = [
        "Future work (Section 8): slack scheduling of straight-line code",
        f"basic blocks: {len(programs)}",
        f"{'scheduler':<22} {'sum makespan':>12} {'sum pressure':>13}",
        f"{'list (critical path)':<22} {rows['list'][0]:>12} {rows['list'][1]:>13}",
        f"{'IPS (limit = base-2)':<22} {rows['ips'][0]:>12} {rows['ips'][1]:>13}",
        f"{'bidirectional slack':<22} {rows['slack'][0]:>12} {rows['slack'][1]:>13}",
    ]
    publish("future_ips", "\n".join(lines))

    # Slack's integrated lifetime sensitivity beats both on pressure...
    assert rows["slack"][1] <= rows["ips"][1]
    assert rows["slack"][1] < rows["list"][1]
    # ...at a bounded makespan premium.
    assert rows["slack"][0] <= rows["list"][0] * 1.2
