"""Grand scheduler comparison: every implemented algorithm, one table.

Pulls the whole field together — the paper's slack scheduler, its
unidirectional ablation, the Cydrome-style static-priority baseline
(Table 4), the IMS-style height-priority scheduler, and the Warp-style
hierarchical reducer (§8) — over one corpus, reporting optimality,
aggregate II inflation, register pressure and backtracking volume.

Expected ordering (the paper's thesis in one table): slack scheduling
matches or beats every baseline on II *and* pressure simultaneously;
the unidirectional ablation gives back the pressure win; the
no-backtracking and static-priority schemes give back II.
"""

from repro.experiments import run_corpus

from _shared import corpus, corpus_size, machine, measured, publish

ALGORITHMS = ["slack", "unidirectional", "cydrome", "height", "warp"]


def _summarize(metrics):
    successes = [m for m in metrics if m.success]
    return {
        "optimal": 100.0 * sum(1 for m in metrics if m.optimal) / len(metrics),
        "failures": sum(1 for m in metrics if not m.success),
        "ii_ratio": sum(m.ii for m in successes) / max(1, sum(m.mii for m in successes)),
        "pressure": sum(m.max_live for m in successes),
        "ejections": sum(m.ejections for m in metrics),
    }


def test_related_schedulers(benchmark):
    def run_all():
        rows = {}
        for algorithm in ALGORITHMS:
            if algorithm in ("slack", "cydrome"):
                metrics = measured(algorithm)
            else:
                metrics = run_corpus(corpus(), machine(), algorithm=algorithm)
            rows[algorithm] = _summarize(metrics)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        "Scheduler comparison (all implemented algorithms)",
        f"{'algorithm':<16} {'II=MII':>8} {'fail':>5} {'II/MII':>7} "
        f"{'sum MaxLive':>12} {'ejections':>10}",
    ]
    for algorithm in ALGORITHMS:
        row = rows[algorithm]
        lines.append(
            f"{algorithm:<16} {row['optimal']:>7.1f}% {row['failures']:>5} "
            f"{row['ii_ratio']:>7.3f} {row['pressure']:>12} {row['ejections']:>10}"
        )
    publish("related_schedulers", "\n".join(lines) + f"\n(corpus size {corpus_size()})")

    slack = rows["slack"]
    # Slack dominates or ties every baseline on the headline metrics.
    for other in ("unidirectional", "cydrome", "height", "warp"):
        assert slack["optimal"] >= rows[other]["optimal"] - 0.5, other
        assert slack["ii_ratio"] <= rows[other]["ii_ratio"] + 1e-9, other
    assert slack["pressure"] <= min(
        rows["unidirectional"]["pressure"],
        rows["cydrome"]["pressure"],
        rows["height"]["pressure"],
    )
