"""Footnote-1 extension: trading II for registers without spill code.

The paper assumes an infinite register supply because "no one as yet
has a good strategy for spilling registers in a software pipeline."
The dual strategy needs no spills at all: when MaxLive exceeds the
register budget, raise II until the pressure fits.  This benchmark
sweeps RR budgets over pressure-heavy kernels and reports the
II-versus-registers curve — the knee shows how cheaply pressure can be
bought once the schedule is allowed to stretch.
"""

from repro.bounds import rr_max_live
from repro.core import SchedulerOptions, modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.workloads.livermore import kernel7_state, kernel9_integrate
from repro.workloads.spec import stencil5

from _shared import machine, publish


def _sweep(program):
    loop = compile_loop(program)
    ddg = build_ddg(loop, machine())
    free = modulo_schedule(loop, machine(), ddg=ddg)
    free_pressure = rr_max_live(loop, ddg, free.schedule.times, free.ii)
    rows = [("inf", free.ii, free_pressure)]
    for budget in range(free_pressure - 1, 3, -2):
        limited = modulo_schedule(
            loop, machine(), ddg=ddg,
            options=SchedulerOptions(max_rr_pressure=budget, max_attempts=60),
        )
        if not limited.success:
            rows.append((str(budget), None, None))
            break
        pressure = rr_max_live(loop, ddg, limited.schedule.times, limited.ii)
        rows.append((str(budget), limited.ii, pressure))
    return program.name, free.mii, rows


def test_extension_pressure_limit(benchmark):
    programs = [kernel7_state(), kernel9_integrate(), stencil5()]
    sweeps = benchmark.pedantic(
        lambda: [_sweep(p) for p in programs], rounds=1, iterations=1
    )
    lines = ["Extension: pressure-limited scheduling (trade II for registers)"]
    for name, mii, rows in sweeps:
        lines.append(f"\n{name} (MII {mii})")
        lines.append(f"{'RR budget':>10} {'II':>5} {'MaxLive':>8}")
        for budget, ii, pressure in rows:
            if ii is None:
                lines.append(f"{budget:>10} {'fail':>5} {'-':>8}")
            else:
                lines.append(f"{budget:>10} {ii:>5} {pressure:>8}")
    publish("extension_pressure_limit", "\n".join(lines))

    for name, mii, rows in sweeps:
        _, free_ii, free_pressure = rows[0]
        successes = [(ii, p) for _, ii, p in rows[1:] if ii is not None]
        assert successes, f"{name}: no budget was satisfiable"
        # Every satisfied budget was honored, monotonically paying II.
        for (budget, ii, pressure) in rows[1:]:
            if ii is not None:
                assert pressure <= int(budget)
                assert ii >= free_ii
