"""Figure 8: ICR predicate usage.

Paper reference: ICR pressure is of no real concern — only one loop of
1,525 uses more than 32 predicates (both schedulers generate similar
ICR pressure).  Reproduce: a distribution overwhelmingly below 32.
"""

from repro.experiments import cumulative_at, figure8, run_corpus

from _shared import corpus, corpus_size, machine, publish


def test_figure8(benchmark):
    new = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack"),
        rounds=1,
        iterations=1,
    )
    publish("figure8", figure8(new) + f"\n(corpus size {corpus_size()})")

    icr = [m.icr for m in new if m.success]
    over = sum(1 for v in icr if v > 32)
    assert over <= max(1, len(icr) // 100)  # paper: 1 loop of 1,525
