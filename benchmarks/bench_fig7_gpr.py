"""Figure 7: GPR pressure and combined GPRs + MaxLive.

Paper reference: 97% of loops use <= 16 GPRs (only 3 exceed 32); 82% of
loops keep RRs + GPRs <= 32 and only 16 exceed 64 combined.  Reproduce:
small invariant counts and a combined distribution dominated by its
low bins.
"""

from repro.experiments import cumulative_at, figure7, run_corpus

from _shared import corpus, corpus_size, machine, measured, publish


def test_figure7(benchmark):
    new = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack"),
        rounds=1,
        iterations=1,
    )
    old = measured("cydrome")
    publish("figure7", figure7(new, old) + f"\n(corpus size {corpus_size()})")

    gprs = [m.gprs for m in new]
    combined = [m.gprs + m.max_live for m in new if m.success]
    assert cumulative_at(gprs, 16) >= 90.0  # paper: 97% <= 16 GPRs
    assert cumulative_at(combined, 32) >= 70.0  # paper: 82% <= 32 combined
