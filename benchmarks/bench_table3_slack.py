"""Table 3: slack-scheduling performance by loop class.

Paper reference (1,525 loops): the slack scheduler achieves II = MII for
96% of loops (1,463/1,525); total II / total MII = 18,517/17,754 =
1.01x minimum execution time; the II > MII tail is small (median
II - MII = 1).  The qualitative claims to reproduce: near-universal
optimality, recurrence-and-conditional loops being the hard class, and
a tiny aggregate II inflation.
"""

from repro.experiments import run_corpus, table3

from _shared import corpus, corpus_size, machine, publish


def test_table3(benchmark):
    metrics = benchmark.pedantic(
        lambda: run_corpus(corpus(), machine(), algorithm="slack"),
        rounds=1,
        iterations=1,
    )
    publish("table3", table3(metrics) + f"\n(corpus size {corpus_size()})")

    optimal = sum(1 for m in metrics if m.optimal)
    ratio = sum(m.ii for m in metrics) / max(1, sum(m.mii for m in metrics))
    # Shape assertions mirroring the paper's headline numbers.
    assert optimal / len(metrics) >= 0.90  # paper: 96%
    assert ratio <= 1.05  # paper: 1.01x
    assert all(m.success for m in metrics)  # slack never failed to pipeline
