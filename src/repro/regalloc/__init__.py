"""Rotating register allocation (RR/ICR) and GPR assignment."""

from repro.regalloc.files import RegisterAssignment, allocate_registers
from repro.regalloc.rotating import (
    FIT_STRATEGIES,
    ORDERINGS,
    Allocation,
    allocate_rotating,
)

__all__ = [
    "RegisterAssignment",
    "allocate_registers",
    "FIT_STRATEGIES",
    "ORDERINGS",
    "Allocation",
    "allocate_rotating",
]
