"""Whole-loop register assignment across the three register files.

Combines the rotating allocator (RR for data variants, ICR for
predicates) with trivial sequential assignment of loop invariants to the
GPR file, producing everything code generation and the register-level
simulator need.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.bounds.lifetimes import icr_values, rr_values, schedule_lifetimes
from repro.ir.ddg import DDG, build_ddg
from repro.ir.loop import LoopBody
from repro.core.schedule import Schedule
from repro.regalloc.rotating import Allocation, allocate_rotating


@dataclasses.dataclass
class RegisterAssignment:
    """Complete register assignment for one scheduled loop."""

    rr: Allocation  # rotating data registers
    icr: Allocation  # rotating predicates
    gpr: Dict[int, int]  # invariant vid -> GPR index

    @property
    def rr_registers(self) -> int:
        return self.rr.registers

    @property
    def icr_registers(self) -> int:
        return self.icr.registers

    @property
    def gpr_registers(self) -> int:
        return len(self.gpr)


def _extend_live_ins(lifetimes, loop: LoopBody, ii: int):
    """Extend loop-carried values' lifetimes for kernel-only live-ins.

    A value consumed ``back`` iterations later has pre-loop instances
    that the preheader loads into rotating registers *before* cycle 0.
    Those registers must survive untouched from before the loop until
    consumed, which in the circular-arc model means the value's
    canonical arc extends backward to cycle II - 1 (instance -1's
    protection window then covers cycle -1, the preheader write; deeper
    instances' windows are subsets).  Without this, a legal steady-state
    allocation can clobber a preloaded live-in during the pipeline fill
    — the classic live-in extension of Rau et al.
    """
    carried = set()
    for op in loop.ops:
        for operand in op.inputs():
            if operand.back > 0 and operand.value.is_variant:
                carried.add(operand.value.vid)
    horizon = max(0, ii - 1)
    extended = []
    for lifetime in lifetimes:
        if lifetime.value.vid in carried and lifetime.start > horizon:
            extended.append(
                type(lifetime)(value=lifetime.value, start=horizon, end=lifetime.end)
            )
        else:
            extended.append(lifetime)
    return extended


def allocate_registers(
    schedule: Schedule,
    ddg: Optional[DDG] = None,
    fit: str = "end_fit",
    ordering: str = "adjacency",
) -> RegisterAssignment:
    """Allocate RR, ICR and GPR registers for a scheduled loop."""
    loop = schedule.loop
    if ddg is None:
        ddg = build_ddg(loop, schedule.machine)
    times, ii = schedule.times, schedule.ii

    rr_lifetimes = _extend_live_ins(
        schedule_lifetimes(loop, ddg, times, ii, rr_values(loop)), loop, ii
    )
    rr = allocate_rotating(rr_lifetimes, ii, fit=fit, ordering=ordering)

    icr_lifetimes = _extend_live_ins(
        schedule_lifetimes(loop, ddg, times, ii, icr_values(loop)), loop, ii
    )
    icr = allocate_rotating(icr_lifetimes, ii, fit=fit, ordering=ordering)

    gpr: Dict[int, int] = {}
    for value in loop.values:
        if value.is_invariant:
            gpr[value.vid] = len(gpr)
    return RegisterAssignment(rr=rr, icr=icr, gpr=gpr)
