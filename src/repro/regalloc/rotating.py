"""Rotating-register allocation (the Rau et al. PLDI'92 substrate, §3.2).

In a rotating file of R registers that rotates once per II cycles, give
each value v a *specifier* ``s_v``; instance k of v then lives in
physical register ``(s_v - k) mod R`` for ``[start_v + k*II,
end_v + k*II)``.  Two values collide on some physical register at some
time iff their arcs

    arc(v) = [start_v - s_v * II,  start_v - s_v * II + lifetime_v)

overlap modulo ``R * II``.  Allocation therefore reduces to packing
circular arcs of fixed length whose positions slide only in steps of II
(the phase ``start_v mod II`` is fixed by the schedule) — the "wand"
model.  MaxLive is an absolute lower bound on R; the paper leans on the
empirical result that greedy packing almost always achieves MaxLive (or
overshoots by a register or two), which justifies approximating register
pressure by MaxLive throughout the evaluation.

Strategies reproduced from that paper:

* fits: ``first_fit`` (smallest specifier shift), ``best_fit``
  (tightest surviving gap), ``end_fit`` (butt the arc against an
  existing arc's end);
* orderings: ``start`` (by definition time), ``length`` (longest
  lifetime first), ``adjacency`` (start time, chained so values that
  begin where another ends come next).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bounds.lifetimes import Lifetime, max_live

FIT_STRATEGIES = ("first_fit", "best_fit", "end_fit")
ORDERINGS = ("start", "length", "adjacency")


@dataclasses.dataclass
class Allocation:
    """Result of rotating allocation for one register file."""

    registers: int  # file size R actually used
    ii: int
    specifiers: Dict[int, int]  # value vid -> specifier s_v
    max_live: int

    @property
    def overshoot(self) -> int:
        """Registers used beyond the MaxLive lower bound."""
        return self.registers - self.max_live


class _CircularOccupancy:
    """Occupied arcs on a circle of circumference R * II."""

    def __init__(self, circumference: int):
        self.circumference = circumference
        self.arcs: List[Tuple[int, int]] = []  # (start, length), start in [0, C)

    def fits(self, start: int, length: int) -> bool:
        if length > self.circumference:
            return False
        start %= self.circumference
        for other in self.arcs:
            if _arcs_overlap(self.circumference, start, length, other[0], other[1]):
                return False
        return True

    def place(self, start: int, length: int) -> None:
        self.arcs.append((start % self.circumference, length))

    def ends(self) -> List[int]:
        return [(start + length) % self.circumference for start, length in self.arcs]


def _arcs_overlap(c: int, a_start: int, a_len: int, b_start: int, b_len: int) -> bool:
    """Do circular arcs [a, a+a_len) and [b, b+b_len) intersect mod c?"""
    if a_len <= 0 or b_len <= 0:
        return False
    delta = (b_start - a_start) % c
    return delta < a_len or (c - delta) < b_len


def allocate_rotating(
    lifetimes: Sequence[Lifetime],
    ii: int,
    fit: str = "end_fit",
    ordering: str = "adjacency",
    max_overshoot: int = 64,
) -> Allocation:
    """Allocate lifetimes to a rotating file of minimal size.

    Grows R from the MaxLive lower bound until greedy packing succeeds;
    raises RuntimeError past ``max_overshoot`` extra registers (never
    observed in practice — the test suite asserts small overshoots).
    """
    if fit not in FIT_STRATEGIES:
        raise ValueError(f"unknown fit {fit!r}; pick from {FIT_STRATEGIES}")
    if ordering not in ORDERINGS:
        raise ValueError(f"unknown ordering {ordering!r}; pick from {ORDERINGS}")
    live = [lt for lt in lifetimes if lt.length > 0]
    lower_bound = max_live(live, ii)
    if not live:
        return Allocation(registers=0, ii=ii, specifiers={}, max_live=0)
    ordered = _order(live, ordering)
    floor_r = max(1, lower_bound, *(-(-lt.length // ii) for lt in live))
    for registers in range(floor_r, floor_r + max_overshoot + 1):
        specifiers = _try_pack(ordered, ii, registers, fit)
        if specifiers is not None:
            return Allocation(
                registers=registers,
                ii=ii,
                specifiers=specifiers,
                max_live=lower_bound,
            )
    raise RuntimeError(
        f"could not pack {len(live)} lifetimes within MaxLive + {max_overshoot}"
    )


def _order(lifetimes: Sequence[Lifetime], ordering: str) -> List[Lifetime]:
    if ordering == "start":
        return sorted(lifetimes, key=lambda lt: (lt.start, -lt.length))
    if ordering == "length":
        return sorted(lifetimes, key=lambda lt: (-lt.length, lt.start))
    # Adjacency: start-time order, but whenever some remaining value
    # begins exactly where the previously placed one ended, take it next
    # (it can butt against the same gap).
    remaining = sorted(lifetimes, key=lambda lt: (lt.start, -lt.length))
    chained: List[Lifetime] = []
    while remaining:
        if chained:
            previous_end = chained[-1].end
            adjacent = next((lt for lt in remaining if lt.start == previous_end), None)
            if adjacent is not None:
                chained.append(adjacent)
                remaining.remove(adjacent)
                continue
        chained.append(remaining.pop(0))
    return chained


def _try_pack(
    ordered: Sequence[Lifetime], ii: int, registers: int, fit: str
) -> Optional[Dict[int, int]]:
    circumference = registers * ii
    occupancy = _CircularOccupancy(circumference)
    specifiers: Dict[int, int] = {}
    for lifetime in ordered:
        specifier = _find_slot(occupancy, lifetime, ii, registers, fit)
        if specifier is None:
            return None
        position = (lifetime.start - specifier * ii) % circumference
        occupancy.place(position, lifetime.length)
        specifiers[lifetime.value.vid] = specifier
    return specifiers


def _find_slot(
    occupancy: _CircularOccupancy, lifetime: Lifetime, ii: int, registers: int, fit: str
) -> Optional[int]:
    circumference = registers * ii
    candidates = []
    for specifier in range(registers):
        position = (lifetime.start - specifier * ii) % circumference
        if occupancy.fits(position, lifetime.length):
            candidates.append((specifier, position))
    if not candidates:
        return None
    if fit == "first_fit":
        return candidates[0][0]
    if fit == "end_fit":
        # Prefer positions butting against an existing arc's end.
        ends = set(occupancy.ends())
        for specifier, position in candidates:
            if position in ends:
                return specifier
        return candidates[0][0]
    # best_fit: choose the position leaving the smallest gap to the next
    # occupied arc (tightest packing of the leftover hole).
    best_specifier, best_gap = None, None
    for specifier, position in candidates:
        gap = _gap_after(occupancy, position, lifetime.length)
        if best_gap is None or gap < best_gap:
            best_specifier, best_gap = specifier, gap
    return best_specifier


def _gap_after(occupancy: _CircularOccupancy, position: int, length: int) -> int:
    """Distance from the arc's end to the next occupied arc start."""
    c = occupancy.circumference
    end = (position + length) % c
    if not occupancy.arcs:
        return c - length
    best = c
    for other_start, _ in occupancy.arcs:
        distance = (other_start - end) % c
        best = min(best, distance)
    return best
