"""Straight-line (acyclic) scheduling: slack scheduling vs IPS (§8).

The paper closes its related work with: "Prior efforts at
lifetime-sensitive scheduling have been in the context of straight-line
code for conventional RISC processors [8, 3].  This work has advocated
Integrated Prepass Scheduling (IPS) within a list-scheduling framework.
IPS switches between a heuristic for avoiding pipeline interlock and a
heuristic for reducing register pressure, based on how close the
partial schedule is to a register pressure limit.  Yet the heuristic
for avoiding interlock ... can squander registers just as freely as
previous schedulers.  In contrast, the bidirectional slack-scheduling
framework, which can be applied to straight-line code as well as loops,
attempts to integrate lifetime sensitivity into the placement of each
operation.  Future experimentation may assess how well slack-scheduling
would work in the context where IPS has been studied."

This module runs that future experiment.  A basic block is a loop body
with its loop-carried arcs dropped (one iteration in isolation).  Three
schedulers compete:

* :func:`schedule_list` — classic cycle-driven list scheduling,
  priority = critical path (the pre-IPS baseline);
* :func:`schedule_ips` — Goodman/Hsu-style integrated prepass
  scheduling: critical-path mode (CSP) while live values sit below the
  register limit, pressure-reduction mode (CSR — prefer operations that
  free more registers than they allocate) once the limit is reached;
* :func:`schedule_slack` — the paper's bidirectional slack framework
  applied to straight-line code (an II large enough that the modulo
  constraint and all loop-carried arcs are inert).

All three return the block's makespan and its register pressure (peak
simultaneously-live values), measured identically.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.ddg import DDG, build_ddg
from repro.ir.loop import LoopBody
from repro.ir.types import DType
from repro.machine.machine import Machine, UnitInstance
from repro.core.slack import SlackAttempt


@dataclasses.dataclass
class BlockSchedule:
    """Outcome of scheduling one basic block."""

    scheduler: str
    times: Dict[int, int]
    length: int  # makespan (Stop's issue cycle)
    pressure: int  # peak simultaneously-live RR values


def acyclic_ddg(loop: LoopBody, machine: Machine) -> DDG:
    """The block's dependence graph: loop-carried arcs dropped."""
    full = build_ddg(loop, machine)
    arcs = [arc for arc in full.arcs if arc.omega == 0]
    return DDG(loop, arcs)


def block_pressure(loop: LoopBody, ddg: DDG, times: Dict[int, int]) -> int:
    """Peak live count over the block's time axis.

    A value is live from its definition's issue to its last same-block
    use; a value with no in-block uses (live-out of the block) stays
    live through the end of the schedule, charged identically to every
    scheduler.
    """
    if not times:
        return 0
    horizon = max(times.values()) + 1
    events: List[Tuple[int, int]] = []
    for value in loop.values:
        if not value.is_variant or value.dtype is DType.PRED:
            continue
        defop = value.defop
        if defop is None or defop.oid not in times:
            continue
        start = times[defop.oid]
        end = start
        used = False
        for arc in ddg.flow_outputs(defop):
            if arc.value is value and arc.dst in times:
                used = True
                end = max(end, times[arc.dst])
        if not used:
            end = horizon
        if end > start:
            events.append((start, +1))
            events.append((end, -1))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


# ----------------------------------------------------------------------
# Cycle-driven list scheduling (with the IPS mode switch)
# ----------------------------------------------------------------------
class _ListScheduler:
    def __init__(self, loop: LoopBody, machine: Machine, ddg: DDG,
                 pressure_limit: Optional[int]):
        self.loop = loop
        self.machine = machine
        self.ddg = ddg
        self.pressure_limit = pressure_limit
        self.binding = machine.bind_units(loop)
        self._priority = self._critical_paths()

    def _critical_paths(self) -> Dict[int, int]:
        """Longest latency path to Stop (the list-scheduling priority)."""
        order = self._topological()
        distance = {op.oid: 0 for op in self.loop.ops}
        for oid in reversed(order):
            for arc in self.ddg.succs[oid]:
                distance[oid] = max(
                    distance[oid], arc.latency + distance[arc.dst]
                )
        return distance

    def _topological(self) -> List[int]:
        indegree = {op.oid: 0 for op in self.loop.ops}
        for arc in self.ddg.arcs:
            indegree[arc.dst] += 1
        ready = sorted(oid for oid, count in indegree.items() if count == 0)
        order: List[int] = []
        while ready:
            oid = ready.pop(0)
            order.append(oid)
            for arc in sorted(self.ddg.succs[oid], key=lambda a: a.dst):
                indegree[arc.dst] -= 1
                if indegree[arc.dst] == 0:
                    ready.append(arc.dst)
        ready.sort()
        return order

    def run(self) -> Dict[int, int]:
        loop, machine = self.loop, self.machine
        times: Dict[int, int] = {loop.start.oid: 0}
        unplaced: Set[int] = {op.oid for op in loop.ops} - {loop.start.oid}
        reservations: Dict[Tuple[UnitInstance, int], int] = {}
        uses_left: Dict[int, int] = {}  # vid -> remaining in-block uses
        for op in loop.ops:
            for operand in op.operands:
                if operand.value.is_variant and operand.back == 0:
                    uses_left[operand.value.vid] = uses_left.get(operand.value.vid, 0) + 1
        live: Set[int] = set()

        cycle = 0
        guard = 0
        while unplaced:
            guard += 1
            if guard > 10_000 + 100 * len(loop.ops):
                raise RuntimeError("list scheduler failed to make progress")
            ready = [
                oid
                for oid in unplaced
                if all(
                    arc.src in times for arc in self.ddg.preds[oid]
                )
                and self._data_ready(oid, times) <= cycle
            ]
            ready.sort(key=lambda oid: self._choose_key(oid, live, uses_left))
            for oid in ready:
                op = loop.ops[oid]
                if not self._fits(op, cycle, reservations):
                    continue
                self._reserve(op, cycle, reservations)
                times[oid] = cycle
                unplaced.discard(oid)
                # Liveness bookkeeping (scheduler-visible estimate).
                if op.dest is not None and op.dest.vid in uses_left:
                    live.add(op.dest.vid)
                for operand in op.operands:
                    vid = operand.value.vid
                    if operand.back == 0 and vid in uses_left:
                        uses_left[vid] -= 1
                        if uses_left[vid] <= 0:
                            live.discard(vid)
            cycle += 1
        return times

    def _data_ready(self, oid: int, times: Dict[int, int]) -> int:
        ready = 0
        for arc in self.ddg.preds[oid]:
            ready = max(ready, times[arc.src] + arc.latency)
        return ready

    def _choose_key(self, oid: int, live: Set[int], uses_left: Dict[int, int]):
        op = self.loop.ops[oid]
        csp_key = (-self._priority[oid], oid)
        if self.pressure_limit is None or len(live) < self.pressure_limit:
            return (0,) + csp_key
        # CSR mode: net register delta = +1 for a new def, -1 for each
        # operand this op kills (last remaining use).
        delta = 0
        if op.dest is not None and op.dest.vid in uses_left:
            delta += 1
        killed = set()
        for operand in op.operands:
            vid = operand.value.vid
            if operand.back == 0 and uses_left.get(vid, 0) == 1 and vid not in killed:
                delta -= 1
                killed.add(vid)
        return (1, delta) + csp_key

    def _fits(self, op, cycle, reservations) -> bool:
        unit = self.binding.get(op.oid)
        if unit is None:
            return True
        busy = self.machine.busy_cycles(op)
        return all((unit, cycle + extra) not in reservations for extra in range(busy))

    def _reserve(self, op, cycle, reservations) -> None:
        unit = self.binding.get(op.oid)
        if unit is None:
            return
        for extra in range(self.machine.busy_cycles(op)):
            reservations[(unit, cycle + extra)] = op.oid


def schedule_list(loop: LoopBody, machine: Machine, ddg: Optional[DDG] = None) -> BlockSchedule:
    """Classic critical-path list scheduling of a basic block."""
    ddg = ddg or acyclic_ddg(loop, machine)
    times = _ListScheduler(loop, machine, ddg, pressure_limit=None).run()
    return _result("list", loop, ddg, times)


def schedule_ips(
    loop: LoopBody,
    machine: Machine,
    ddg: Optional[DDG] = None,
    pressure_limit: int = 16,
) -> BlockSchedule:
    """Goodman/Hsu-style IPS: CSP until the live count hits the limit,
    then CSR (free-registers-first) until pressure recedes."""
    ddg = ddg or acyclic_ddg(loop, machine)
    times = _ListScheduler(loop, machine, ddg, pressure_limit=pressure_limit).run()
    return _result("ips", loop, ddg, times)


def schedule_slack(loop: LoopBody, machine: Machine, ddg: Optional[DDG] = None) -> BlockSchedule:
    """The bidirectional slack framework on straight-line code.

    Uses an II beyond any possible makespan, making the modulo resource
    constraint and the (already dropped) loop-carried arcs inert; the
    §4/§5 machinery — dynamic slack priority, bidirectional placement —
    operates unchanged.  Where the loop driver escalates II on a failed
    attempt, the straight-line driver escalates the *target makespan*
    (Lstart(Stop)): start at max(critical path, resource bound) and
    relax by ~15% per failed attempt.
    """
    from repro.bounds.resmii import unit_requirements
    from repro.core.framework import AttemptFailed

    ddg = ddg or acyclic_ddg(loop, machine)
    horizon = 2 + sum(max(1, machine.latency(op)) for op in loop.real_ops)
    binding = machine.bind_units(loop)
    resource_floor = 0
    for class_index, busy in unit_requirements(loop, machine).items():
        count = machine.unit_classes[class_index].count
        resource_floor = max(resource_floor, -(-busy // count))
    target: Optional[int] = None
    for _ in range(12):
        attempt = SlackAttempt(
            loop, machine, ddg, ii=max(horizon, 2), binding=binding, tight_cap=True
        )
        if target is None:
            target = max(attempt.lstart_cap, resource_floor)
        attempt.lstart_cap = max(attempt.lstart_cap, target)
        attempt._bounds_dirty = True
        try:
            times = attempt.run()
            return _result("slack", loop, ddg, times)
        except AttemptFailed:
            target = int(target * 1.15) + 4
    raise RuntimeError(f"straight-line slack scheduling failed on {loop.name}")


def _result(name: str, loop: LoopBody, ddg: DDG, times: Dict[int, int]) -> BlockSchedule:
    return BlockSchedule(
        scheduler=name,
        times=times,
        length=times[loop.stop.oid],
        pressure=block_pressure(loop, ddg, times),
    )
