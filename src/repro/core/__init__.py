"""Bidirectional slack modulo scheduling — the paper's core contribution."""

from repro.core.acyclic import (
    BlockSchedule,
    acyclic_ddg,
    block_pressure,
    schedule_ips,
    schedule_list,
    schedule_slack,
)
from repro.core.baseline import CydromeAttempt, HeightAttempt, UnidirectionalAttempt
from repro.core.driver import ALGORITHMS, SchedulerOptions, modulo_schedule
from repro.core.framework import AttemptFailed, SchedulingAttempt, run_attempt
from repro.core.schedule import Schedule, ScheduleResult, SchedulerStats
from repro.core.slack import SlackAttempt
from repro.core.validate import validate_schedule
from repro.core.warp import WarpScheduler, run_warp_attempt

__all__ = [
    "BlockSchedule",
    "acyclic_ddg",
    "block_pressure",
    "schedule_ips",
    "schedule_list",
    "schedule_slack",
    "CydromeAttempt",
    "HeightAttempt",
    "UnidirectionalAttempt",
    "ALGORITHMS",
    "SchedulerOptions",
    "modulo_schedule",
    "AttemptFailed",
    "SchedulingAttempt",
    "run_attempt",
    "Schedule",
    "ScheduleResult",
    "SchedulerStats",
    "SlackAttempt",
    "validate_schedule",
    "WarpScheduler",
    "run_warp_attempt",
]
