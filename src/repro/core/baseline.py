"""Baseline schedulers the paper compares against (§8, Table 4).

* :class:`CydromeAttempt` — a rebuild of Cydrome's production scheduler
  from its published description: the same operation-driven backtracking
  framework, but a *static* priority favoring minimal initial slack, all
  operations on recurrence circuits placed before any others, and every
  operation placed as early as possible.  Because the priority is
  static, the scheduler cannot detect when a recurrence circuit becomes
  "fixed" by a placement, which is why it backtracks several times more
  and occasionally fails to pipeline a loop.

* :class:`UnidirectionalAttempt` — the full dynamic-priority slack
  framework with the bidirectional lifetime heuristic disabled (always
  scan early-to-late).  This is the §7 ablation: with it, register
  pressure lands close to Cydrome's, demonstrating that the §5.2
  heuristics are what deliver the pressure reductions.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bounds.recmii import recurrence_ops
from repro.ir.ddg import DDG
from repro.ir.loop import LoopBody
from repro.ir.operations import Operation
from repro.machine.machine import Machine, UnitInstance
from repro.core.framework import SchedulingAttempt
from repro.core.slack import SlackAttempt


class CydromeAttempt(SchedulingAttempt):
    """Static-priority, recurrence-first, earliest-placement baseline."""

    def __init__(
        self,
        loop: LoopBody,
        machine: Machine,
        ddg: DDG,
        ii: int,
        binding: Dict[int, UnitInstance],
        budget_ratio: float = 16.0,
        tracer=None,
        metrics=None,
        profiler=None,
    ):
        super().__init__(
            loop, machine, ddg, ii, binding, budget_ratio,
            tracer=tracer, metrics=metrics, profiler=profiler,
        )
        self.recurrence = recurrence_ops(ddg)
        #: Initial slack, frozen before any placement (the static priority).
        self.initial_slack = {
            op.oid: int(self.lstart[op.oid]) - int(self.estart[op.oid])
            for op in loop.ops
        }
        self.initial_lstart = {op.oid: int(self.lstart[op.oid]) for op in loop.ops}

    def choose_operation(self) -> Operation:
        best_oid = min(
            self.unplaced,
            key=lambda oid: (
                oid not in self.recurrence,  # all recurrence ops first
                self.initial_slack[oid],
                self.initial_lstart[oid],
                oid,
            ),
        )
        return self.loop.ops[best_oid]

    def choose_issue_cycle(self, op: Operation, lo: int, hi: int) -> Optional[int]:
        return self.scan_window(op, lo, hi, early=True)


class UnidirectionalAttempt(SlackAttempt):
    """Slack scheduling without the bidirectional heuristic (ablation)."""

    def __init__(self, *args, **kwargs):
        kwargs["bidirectional"] = False
        super().__init__(*args, **kwargs)


class HeightAttempt(SchedulingAttempt):
    """An IMS-style baseline: static height priority, earliest placement.

    The classic iterative-modulo-scheduling recipe that followed the
    paper: operations ordered by *height* (longest latency path to
    Stop, a static quantity), each placed at its earliest conflict-free
    cycle, with the same forced-placement/eviction backtracking as the
    other operation-driven schedulers.  Unlike slack scheduling it
    neither tracks converging windows (dynamic priority) nor considers
    lifetimes (bidirectional placement), so it serves as a second
    related-work reference point alongside the Cydrome baseline.
    """

    def __init__(
        self,
        loop: LoopBody,
        machine: Machine,
        ddg: DDG,
        ii: int,
        binding: Dict[int, UnitInstance],
        budget_ratio: float = 16.0,
        tracer=None,
        metrics=None,
        profiler=None,
    ):
        super().__init__(
            loop, machine, ddg, ii, binding, budget_ratio,
            tracer=tracer, metrics=metrics, profiler=profiler,
        )
        stop = loop.stop.oid
        self.height = {}
        for op in loop.ops:
            distance = self.mindist.dist(op.oid, stop)
            self.height[op.oid] = distance if distance is not None else 0

    def choose_operation(self) -> Operation:
        best_oid = min(
            self.unplaced,
            key=lambda oid: (-self.height[oid], int(self.estart[oid]), oid),
        )
        return self.loop.ops[best_oid]

    def choose_issue_cycle(self, op: Operation, lo: int, hi: int) -> Optional[int]:
        return self.scan_window(op, lo, hi, early=True)
