"""The operation-driven slack-scheduling framework (paper §4).

One :class:`SchedulingAttempt` tries to place every operation at a fixed
II.  The central loop (§4.2) repeatedly:

1. chooses an operation (subclass hook — dynamic slack priority for the
   paper's scheduler, static priority for the Cydrome baseline);
2. searches for a conflict-free issue cycle inside the operation's
   [Estart, Lstart] window (subclass hook — bidirectional for the
   paper's scheduler, always-earliest for the baselines);
3. failing that, *forces* the operation into
   ``max(Estart(x), 1 + last placement of x)`` and ejects every placed
   operation that conflicts with it in resources or (transitively, via
   MinDist) dependences — except the loop-closing ``brtop`` (§4.4);
4. places the operation, updates the modulo resource table, and updates
   the Estart/Lstart bounds of all unplaced operations (§4.1);
5. gives up once the placement budget is exhausted, at which point the
   driver increments II and starts over (§4.2 step 6).

Bounds bookkeeping is vectorized with numpy: incremental updates after a
plain placement, full recomputation (O(p*n)) after ejections — the same
asymptotics the paper reports.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Set

import numpy as np

from repro.bounds.mindist import MinDist, path_mask
from repro.bounds.resmii import resmii
from repro.ir.ddg import DDG
from repro.ir.loop import LoopBody
from repro.ir.operations import Operation
from repro.machine.machine import Machine, UnitInstance
from repro.machine.mrt import ModuloResourceTable
from repro.core.schedule import Schedule, SchedulerStats
from repro.obs import trace as tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import Profiler

#: Bound value meaning "unconstrained" in intermediate numpy math.
_HUGE = 2**40

#: Added to a placed op's choose_operation key; any unplaced op's key
#: (bounded by ~4 * Lstart^2 << 2**62) always compares below it.
PLACED_PENALTY = 2**62


class AttemptFailed(Exception):
    """The placement budget was exhausted at this II."""


def placement_budget(loop: LoopBody, budget_ratio: float) -> int:
    """The §4.2 step-6 placement budget for one attempt (shared with the
    driver so AttemptStart events can report it before construction)."""
    return max(100, int(budget_ratio * max(1, len(loop.real_ops))))


class SchedulingAttempt:
    """Scheduling state for one (loop, machine, II) attempt.

    Subclasses implement the two heuristic hooks:

    * :meth:`choose_operation` — pick the next unplaced op (step 1);
    * :meth:`choose_issue_cycle` — pick a conflict-free cycle inside the
      op's window, or None (step 2).
    """

    def __init__(
        self,
        loop: LoopBody,
        machine: Machine,
        ddg: DDG,
        ii: int,
        binding: Dict[int, UnitInstance],
        budget_ratio: float = 16.0,
        tight_cap: bool = False,
        tracer: Optional[tracing.Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
    ):
        #: Normalized trace sink: None unless an *enabled* tracer was
        #: given, so the hot-path cost of the NullTracer default is one
        #: attribute test per decision (see obs.trace).
        self.trace = tracer if (tracer is not None and tracer.enabled) else None
        self.metrics = metrics
        #: Normalized profiler, same pattern (see obs.prof).
        self.prof = profiler if (profiler is not None and profiler.enabled) else None
        self._eject_counts: Optional[Dict[int, int]] = {} if metrics is not None else None
        self.loop = loop
        self.machine = machine
        self.ddg = ddg
        self.ii = ii
        self.binding = binding
        #: Straight-line mode: keep Lstart(Stop) at the critical path
        #: instead of rounding up to a multiple of II (§4.2's extra
        #: slack only makes sense when II bounds the schedule's period).
        self.tight_cap = tight_cap
        mindist_started = time.perf_counter()
        self.mindist = MinDist(ddg, ii, profiler=self.prof)
        #: Wall time of the MinDist build alone, so the driver can
        #: attribute it to phase.mindist and the rest of construction to
        #: phase.attempt_setup (they used to be conflated).
        self.mindist_build_seconds = time.perf_counter() - mindist_started
        if not self.mindist.feasible:
            raise ValueError(f"II={ii} is below RecMII for {loop.name}")
        self.matrix = self.mindist.matrix
        self.n = loop.n_ops
        self.start_oid = loop.start.oid
        self.stop_oid = loop.stop.oid
        brtop = loop.brtop()
        self.brtop_oid = brtop.oid if brtop is not None else None
        # The driver (and the corpus runner) stash their ResMII on the
        # DDG; every attempt at every escalated II would otherwise
        # recompute the identical bound.
        cached_resmii = getattr(ddg, "_resmii", None)
        if cached_resmii is None:
            cached_resmii = resmii(loop, machine)
            ddg._resmii = cached_resmii
        self.contention = cached_resmii > 1

        self.mrt = ModuloResourceTable(machine, ii, binding)
        self.times: Dict[int, int] = {self.start_oid: 0}
        self.last_place: Dict[int, int] = {}
        self.unplaced: Set[int] = {op.oid for op in loop.ops} - {self.start_oid}
        #: Boolean twin of ``unplaced`` kept in lockstep by _place/_eject
        #: so choose_operation can vectorize over candidate oids.
        self.unplaced_mask = np.ones(self.n, dtype=bool)
        self.unplaced_mask[self.start_oid] = False
        #: Additive placed-op penalty for vectorized operation choice:
        #: 0 while unplaced, a huge constant once placed, so a single
        #: argmin over (key + penalty) only ever selects unplaced ops.
        self.placed_penalty = np.zeros(self.n, dtype=np.int64)
        self.placed_penalty[self.start_oid] = PLACED_PENALTY
        self.budget = placement_budget(loop, budget_ratio)
        self.stats = SchedulerStats()
        self.stats.mindist_seconds += self.mindist_build_seconds

        self.estart = np.zeros(self.n, dtype=np.int64)
        self.lstart = np.zeros(self.n, dtype=np.int64)
        self.lstart_cap = 0
        self._bounds_dirty = True
        self._init_cap()
        self._refresh_bounds()

    # ------------------------------------------------------------------
    # Estart / Lstart bookkeeping (§4.1)
    # ------------------------------------------------------------------
    def _quantize_cap(self, estart_stop: int) -> int:
        """Lstart(Stop) policy: the critical path if there is no resource
        contention, else the critical path rounded up to a multiple of II
        (the extra slack lessens backtracking, §4.2)."""
        if self.tight_cap or not self.contention or estart_stop == 0:
            return estart_stop
        return math.ceil(estart_stop / self.ii) * self.ii

    def _init_cap(self) -> None:
        critical_path = int(self.matrix[self.start_oid, self.stop_oid])
        self.lstart_cap = self._quantize_cap(max(0, critical_path))

    def _recompute_bounds(self) -> None:
        """Full O(p*n) recomputation from the placed set (after ejections)."""
        if self.prof is not None:
            with self.prof.span("bounds.recompute"):
                self._recompute_bounds_inner()
            self.prof.count("bounds.recomputes")
            return
        self._recompute_bounds_inner()

    def _recompute_bounds_inner(self) -> None:
        placed = np.fromiter(self.times.keys(), dtype=np.int64)
        placed_times = np.fromiter(self.times.values(), dtype=np.int64)
        # Estart(x) = max over placed p of t_p + MinDist(p, x).
        from_placed = placed_times[:, None] + self.matrix[placed, :]
        self.estart = from_placed.max(axis=0)
        np.maximum(self.estart, 0, out=self.estart)
        # Lstart(x) = min(cap - MinDist(x, Stop), t_p - MinDist(x, p)).
        to_placed = placed_times[None, :] - self.matrix[:, placed]
        self.lstart = to_placed.min(axis=1)
        cap_bound = self.lstart_cap - self.matrix[:, self.stop_oid]
        np.minimum(self.lstart, cap_bound, out=self.lstart)
        np.minimum(self.lstart, _HUGE, out=self.lstart)
        self._bounds_dirty = False
        if self.trace is not None:
            self.trace.emit(tracing.BoundsRecompute(n_placed=len(self.times)))

    def _update_bounds_for_placement(self, oid: int, cycle: int) -> None:
        """Incremental §4.1 update after placing ``oid`` at ``cycle``."""
        np.maximum(self.estart, cycle + self.matrix[oid, :], out=self.estart)
        np.minimum(self.lstart, cycle - self.matrix[:, oid], out=self.lstart)

    def _refresh_bounds(self) -> None:
        """Make bounds valid, growing Lstart(Stop) and ejecting Stop when
        Estart(Stop) is pushed beyond it (§4.2)."""
        while True:
            if self._bounds_dirty:
                self._recompute_bounds()
            estart_stop = int(self.estart[self.stop_oid])
            if self.stop_oid in self.times and estart_stop > self.times[self.stop_oid]:
                self._eject(self.stop_oid, cause="cap")
                continue
            if estart_stop > self.lstart_cap:
                old_cap = self.lstart_cap
                self.lstart_cap = self._quantize_cap(estart_stop)
                self._bounds_dirty = True
                if self.trace is not None:
                    self.trace.emit(
                        tracing.CapGrow(old_cap=old_cap, new_cap=self.lstart_cap)
                    )
                continue
            break

    # ------------------------------------------------------------------
    # Placement / ejection (§4.4)
    # ------------------------------------------------------------------
    def _eject(self, oid: int, cause: str = "force") -> None:
        op = self.loop.ops[oid]
        cycle = self.times.pop(oid)
        self.mrt.remove(op, cycle)
        self.unplaced.add(oid)
        self.unplaced_mask[oid] = True
        self.placed_penalty[oid] = 0
        self.stats.ejections += 1
        self._bounds_dirty = True
        if self.trace is not None:
            self.trace.emit(tracing.Eject(oid=oid, cycle=cycle, cause=cause))
        if self._eject_counts is not None:
            self._eject_counts[oid] = self._eject_counts.get(oid, 0) + 1
        if self.prof is not None:
            self.prof.count("framework.ejections")

    def _dependence_conflicts(self, oid: int, cycle: int) -> List[int]:
        """Placed ops whose times are inconsistent with ``oid @ cycle``.

        MinDist reflects the transitive closure, so this ejects the full
        set of (possibly indirect) violators, which the paper found
        reduces overall backtracking.  Evaluated as one vectorized pass
        over the placed set; path-ness goes through the shared
        :func:`~repro.bounds.mindist.path_mask` predicate so this and
        MinDist.dist/has_path agree on the no-path boundary.
        """
        count = len(self.times)
        placed = np.fromiter(self.times.keys(), dtype=np.int64, count=count)
        placed_times = np.fromiter(self.times.values(), dtype=np.int64, count=count)
        forward = self.matrix[oid, placed]
        backward = self.matrix[placed, oid]
        violates = (path_mask(forward) & (placed_times < cycle + forward)) | (
            path_mask(backward) & (cycle < placed_times + backward)
        )
        violates &= (placed != oid) & (placed != self.start_oid)
        return placed[violates].tolist()

    def _force_place(self, op: Operation) -> int:
        """Step 3: make room for ``op`` by ejecting its blockers."""
        self.stats.forced += 1
        if self.prof is not None:
            self.prof.count("framework.force_places")
        cycle = max(int(self.estart[op.oid]), self.last_place.get(op.oid, -1) + 1)
        # brtop can never be ejected; search past any conflict with it.
        while True:
            blockers = self.mrt.conflicts(op, cycle)
            dep_blockers = self._dependence_conflicts(op.oid, cycle)
            if -1 in blockers:
                self._fail(f"{op!r} cannot fit at II={self.ii} at all")
            protected = self.brtop_oid is not None and (
                self.brtop_oid in blockers or self.brtop_oid in dep_blockers
            )
            if protected and op.oid != self.brtop_oid:
                cycle += 1
                continue
            ejected = sorted(set(blockers) | set(dep_blockers))
            for blocker in ejected:
                self._eject(blocker)
            if self.trace is not None:
                self.trace.emit(
                    tracing.ForcePlace(oid=op.oid, cycle=cycle, ejected=ejected)
                )
            return cycle

    def _place(self, op: Operation, cycle: int, forced: bool = False) -> None:
        self.mrt.place(op, cycle)
        self.times[op.oid] = cycle
        self.last_place[op.oid] = cycle
        self.unplaced.discard(op.oid)
        self.unplaced_mask[op.oid] = False
        self.placed_penalty[op.oid] = PLACED_PENALTY
        self.stats.placements += 1
        if self.prof is not None:
            self.prof.count("framework.placements")
        if self.trace is not None:
            self.trace.emit(tracing.Place(oid=op.oid, cycle=cycle, forced=forced))
        if not self._bounds_dirty:
            self._update_bounds_for_placement(op.oid, cycle)

    def _fail(self, reason: str) -> None:
        """Emit the AttemptFail event and raise :class:`AttemptFailed`."""
        if self.trace is not None:
            self.trace.emit(tracing.AttemptFail(ii=self.ii, reason=reason))
        raise AttemptFailed(reason)

    # ------------------------------------------------------------------
    # Heuristic hooks
    # ------------------------------------------------------------------
    def choose_operation(self) -> Operation:
        raise NotImplementedError

    def choose_issue_cycle(self, op: Operation, lo: int, hi: int) -> Optional[int]:
        """Return a conflict-free cycle in [lo, hi], or None."""
        raise NotImplementedError

    def scan_window(self, op: Operation, lo: int, hi: int, early: bool) -> Optional[int]:
        """First conflict-free cycle in [lo, hi], or None (§5.2).

        At most II consecutive cycles need checking (the modulo
        constraint makes further cycles repeats); the caller already
        clamps the window accordingly.  The whole window is answered by
        one vectorized MRT pass; ``scanned`` preserves the linear-scan
        accounting (cycles up to and including the hit) the metrics
        always reported.
        """
        found, scanned = self.mrt.first_fit(op, lo, hi, early)
        if self.metrics is not None:
            self.metrics.histogram("scheduler.scan_window_length").record(scanned)
        if self.prof is not None:
            self.prof.count("framework.scan_cycles", scanned)
        return found

    # ------------------------------------------------------------------
    # Central loop (§4.2)
    # ------------------------------------------------------------------
    def run(self) -> Dict[int, int]:
        """Place every operation or raise :class:`AttemptFailed`."""
        if self.trace is not None:
            # Start's implicit placement, so a replayed Place/Eject
            # stream reconstructs the complete times dict.
            self.trace.emit(tracing.Place(oid=self.start_oid, cycle=0))
        try:
            while True:
                self._refresh_bounds()
                if not self.unplaced:
                    break
                if self.stats.placements >= self.budget:
                    self._fail(
                        f"budget of {self.budget} placements exhausted at II={self.ii}"
                    )
                op = self.choose_operation()
                lo = int(self.estart[op.oid])
                hi = min(int(self.lstart[op.oid]), lo + self.ii - 1)
                cycle = self.choose_issue_cycle(op, lo, hi) if lo <= hi else None
                if cycle is None:
                    self._place(op, self._force_place(op), forced=True)
                else:
                    self._place(op, cycle)
            return dict(self.times)
        finally:
            if self._eject_counts:
                histogram = self.metrics.histogram("scheduler.ejections_per_op")
                for count in self._eject_counts.values():
                    histogram.record(count)


def run_attempt(attempt: SchedulingAttempt) -> Optional[Schedule]:
    """Run one attempt; None if the budget was exhausted."""
    try:
        times = attempt.run()
    except AttemptFailed:
        return None
    return Schedule(
        loop=attempt.loop,
        machine=attempt.machine,
        ii=attempt.ii,
        times=times,
        binding=attempt.binding,
    )
