"""The bidirectional slack scheduler — the paper's contribution (§4.3, §5).

Operation choice (§4.3): dynamic priority = current slack
(``Lstart - Estart``), halved for operations using a critical resource
(one kept busy >= 0.90*II by each iteration) and halved again for
divider operations, whose non-pipelined reservation patterns leave few
issue slots.  Ties break toward the smallest Lstart (a top-down bias
that interacts well with the backtracking policy).

Issue-cycle choice (§5.2): a *bidirectional* decision.  The scheduler
counts the operation's stretchable input and output lifetimes and scans
its window early-to-late or late-to-early accordingly:

* no stretchable inputs or outputs: place early (minimizes schedule
  length — e.g. an accumulator read only after the loop);
* more stretchable inputs than outputs: place early (placing late would
  stretch each input's lifetime);
* fewer: place late (placing early would stretch its output);
* tie: place near whichever of its immediate predecessors/successors
  has the larger fraction already placed (they are less likely to be
  ejected); on a further tie, place early iff no neighbor is placed.

An input lifetime ``v`` (defined by ``d``, used by this op ``u`` at
distance ``omega``) is *not* stretchable when
``Estart(d) + MinLT(v) >= omega*II + Lstart(u)``: even the latest legal
placement of ``u`` cannot extend ``v`` past its lower-bound lifetime.
Loop invariants (GPR-resident), duplicate inputs and self-recurrences
are ignored throughout, as are ICR predicates (this heuristic minimizes
RR pressure).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.bounds.lifetimes import min_lifetime
from repro.bounds.resmii import critical_unit_instances
from repro.ir.ddg import DDG, ArcKind
from repro.ir.loop import LoopBody
from repro.ir.operations import Operation
from repro.ir.types import DType
from repro.machine.machine import Machine, UnitInstance
from repro.core.framework import SchedulingAttempt


def _is_rr_flow_value(value) -> bool:
    return value is not None and value.is_variant and value.dtype is not DType.PRED


class SlackAttempt(SchedulingAttempt):
    """One fixed-II attempt of the bidirectional slack scheduler."""

    def __init__(
        self,
        loop: LoopBody,
        machine: Machine,
        ddg: DDG,
        ii: int,
        binding: Dict[int, UnitInstance],
        budget_ratio: float = 16.0,
        bidirectional: bool = True,
        critical_threshold: float = 0.90,
        tight_cap: bool = False,
        dynamic_priority: bool = True,
        tracer=None,
        metrics=None,
        profiler=None,
    ):
        super().__init__(
            loop, machine, ddg, ii, binding, budget_ratio,
            tight_cap=tight_cap, tracer=tracer, metrics=metrics,
            profiler=profiler,
        )
        self.bidirectional = bidirectional
        #: §8 ablation: with dynamic_priority off, the operation choice
        #: freezes each op's *initial* slack (as Cydrome's scheduler
        #: did), so the scheduler cannot detect a recurrence circuit
        #: becoming "fixed" by a placement.
        self.dynamic_priority = dynamic_priority
        critical_units = critical_unit_instances(
            loop, machine, binding, ii, threshold=critical_threshold
        )
        #: Critical ops are marked just before attempting each new II.
        self.critical_ops = {
            oid for oid, unit in binding.items() if unit in critical_units
        }
        #: §4.3 priority scale per op in quarter units (4 = full slack,
        #: 2 = halved for critical-resource ops, 1 = halved again for
        #: divider ops; both only under contention).  Integer quarters
        #: make the scaled priority exact, so the vectorized comparison
        #: is bit-identical to the scalar successive-halving formula.
        self._scale4 = np.full(self.n, 4, dtype=np.int64)
        if self.contention:
            for oid in self.critical_ops:
                self._scale4[oid] //= 2
            for op in loop.ops:
                if op.uses_divider:
                    self._scale4[op.oid] //= 2
        #: Frozen initial-priority vector (quarter units) for the
        #: ablation, snapshotted for *every* op right here — after
        #: __init__'s _refresh_bounds(), before any placement can
        #: tighten a bound.  (It used to be captured lazily at each
        #: op's first choose_operation visit, so a placement could leak
        #: into a later op's "initial" slack.)
        self._initial_priority4: Optional[np.ndarray] = None
        if not self.dynamic_priority:
            self._initial_priority4 = (self.lstart - self.estart) * self._scale4
        #: Reusable scratch vector for choose_operation's composite key.
        self._key_buf = np.empty(self.n, dtype=np.int64)
        #: MinLT per value id (§5.1) and the §5.2 per-op stretch tables
        #: derived from it.  Both are pure functions of (ddg, ii), so
        #: they are memoized on the DDG: attempts re-run against a
        #: prebuilt graph (service cache paths, benches) share them
        #: read-only instead of re-scanning every arc.
        memo = getattr(ddg, "_slack_tables", None)
        if memo is None:
            memo = ddg._slack_tables = {}
        tables = memo.get(ii)
        if tables is None:
            if self.prof is not None:
                with self.prof.span("slack.minlt"):
                    self.minlt = self._compute_minlt()
            else:
                self.minlt = self._compute_minlt()
            self._build_stretch_tables()
            memo[ii] = (self.minlt, self._input_stretch, self._output_stretch)
        else:
            self.minlt, self._input_stretch, self._output_stretch = tables
        #: Immediate pred/succ oid sets per op, II-independent, likewise
        #: shared via the DDG.
        cache = getattr(ddg, "_neighbor_cache", None)
        if cache is None:
            cache = ddg._neighbor_cache = {}
        self._neighbor_cache: Dict[int, tuple] = cache

    def _compute_minlt(self) -> Dict[int, int]:
        return {
            value.vid: min_lifetime(value, self.ddg, self.mindist, self.ii)
            for value in self.loop.values
            if value.is_variant and value.defop is not None
        }

    # ------------------------------------------------------------------
    # §4.3: dynamic priority
    # ------------------------------------------------------------------
    def priority(self, op: Operation) -> float:
        """Estimated number of issue slots available to ``op``."""
        if self._initial_priority4 is not None:
            return float(int(self._initial_priority4[op.oid])) / 4.0
        return self._current_slack(op)

    def _current_slack(self, op: Operation) -> float:
        slack = float(int(self.lstart[op.oid]) - int(self.estart[op.oid]))
        if self.contention:
            if op.oid in self.critical_ops:
                slack /= 2.0
            if op.uses_divider:
                slack /= 2.0
        return slack

    def choose_operation(self) -> Operation:
        """Min over unplaced ops of (priority, Lstart, oid), vectorized.

        One argmin over an exact integer composite key, built in-place
        in a scratch buffer.  Priorities live in quarter units (see
        ``_scale4``), so equal float priorities are equal integers; the
        Lstart multiplier is sized to the current bounds, keeping the
        packed key lexicographic and far from int64 overflow; argmin's
        first-minimum rule is exactly the ascending-oid tiebreak; and
        the additive placed penalty (framework) masks placed ops.
        """
        if self.prof is not None:
            self.prof.count("slack.choose_operation")
        lstart = self.lstart
        buf = self._key_buf
        weight = int(lstart.max()) + 1
        if self._initial_priority4 is not None:
            np.multiply(self._initial_priority4, weight, out=buf)
        else:
            np.subtract(lstart, self.estart, out=buf)
            buf *= self._scale4
            buf *= weight
        buf += lstart
        buf += self.placed_penalty
        return self.loop.ops[int(buf.argmin())]

    # ------------------------------------------------------------------
    # §5.2: bidirectional issue-cycle choice
    # ------------------------------------------------------------------
    def _build_stretch_tables(self) -> None:
        """Precompute the per-op lifetime-stretch facts (§5.2).

        Which input values an op can stretch depends on the current
        bounds, but the *candidate set* (distinct RR flow inputs, first
        arc per value, self-recurrences excluded) and each candidate's
        ``MinLT(v) - omega*II`` constant are fixed for the attempt, as
        is whether the op's output is consumed.  prefers_early runs on
        every placement, so the arc scans move here, once.
        """
        input_stretch = []
        output_stretch = []
        preds = self.ddg.preds
        minlt = self.minlt
        for op in self.loop.ops:
            seen = set()
            entries = []
            oid = op.oid
            for arc in preds[oid]:
                if arc.kind is not ArcKind.FLOW:
                    continue
                value = arc.value
                if not _is_rr_flow_value(value) or value.vid in seen:
                    continue
                if arc.src == oid:
                    continue  # self-recurrence: length fixed at omega*II
                seen.add(value.vid)
                entries.append((arc.src, minlt.get(value.vid, 0) - arc.omega * self.ii))
            input_stretch.append(entries)
            output_stretch.append(self._scan_stretchable_output(op))
        self._input_stretch = input_stretch
        self._output_stretch = output_stretch

    def _stretchable_inputs(self, op: Operation) -> int:
        """Distinct input values a placement of ``op`` could stretch: an
        input ``v`` (defined by ``d``) is pinned when
        ``Estart(d) + MinLT(v) >= omega*II + Lstart(op)``."""
        entries = self._input_stretch[op.oid]
        if not entries:
            return 0
        estart = self.estart
        limit = int(self.lstart[op.oid])
        return sum(1 for src, slack_const in entries if int(estart[src]) + slack_const < limit)

    def _stretchable_outputs(self, op: Operation) -> int:
        return self._output_stretch[op.oid]

    def _scan_stretchable_output(self, op: Operation) -> int:
        """In SSA, placing an op early stretches its output; the output
        counts whenever some other operation consumes the value."""
        value = op.dest
        if not _is_rr_flow_value(value):
            return 0
        for arc in self.ddg.flow_outputs(op):
            if arc.value is value and arc.dst != op.oid:
                return 1
        return 0

    def prefers_early(self, op: Operation) -> bool:
        """The §5.2 decision: True to scan Estart->Lstart."""
        inputs = self._stretchable_inputs(op)
        outputs = self._stretchable_outputs(op)
        if inputs == 0 and outputs == 0:
            return True
        if inputs != outputs:
            return inputs > outputs
        # Tie: place near the group less likely to be ejected.
        cached = self._neighbor_cache.get(op.oid)
        if cached is None:
            cached = self._neighbor_cache[op.oid] = self.ddg.neighbors(op)
        preds, succs = cached
        pred_frac = _placed_fraction(preds, self.times)
        succ_frac = _placed_fraction(succs, self.times)
        if pred_frac != succ_frac:
            return pred_frac > succ_frac
        any_placed = any(oid in self.times for oid in preds) or any(
            oid in self.times for oid in succs
        )
        return not any_placed

    def choose_issue_cycle(self, op: Operation, lo: int, hi: int) -> Optional[int]:
        early = self.prefers_early(op) if self.bidirectional else True
        return self.scan_window(op, lo, hi, early=early)


def _placed_fraction(oids, times) -> float:
    if not oids:
        return 0.0
    placed = sum(1 for oid in oids if oid in times)
    return placed / len(oids)
