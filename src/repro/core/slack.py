"""The bidirectional slack scheduler — the paper's contribution (§4.3, §5).

Operation choice (§4.3): dynamic priority = current slack
(``Lstart - Estart``), halved for operations using a critical resource
(one kept busy >= 0.90*II by each iteration) and halved again for
divider operations, whose non-pipelined reservation patterns leave few
issue slots.  Ties break toward the smallest Lstart (a top-down bias
that interacts well with the backtracking policy).

Issue-cycle choice (§5.2): a *bidirectional* decision.  The scheduler
counts the operation's stretchable input and output lifetimes and scans
its window early-to-late or late-to-early accordingly:

* no stretchable inputs or outputs: place early (minimizes schedule
  length — e.g. an accumulator read only after the loop);
* more stretchable inputs than outputs: place early (placing late would
  stretch each input's lifetime);
* fewer: place late (placing early would stretch its output);
* tie: place near whichever of its immediate predecessors/successors
  has the larger fraction already placed (they are less likely to be
  ejected); on a further tie, place early iff no neighbor is placed.

An input lifetime ``v`` (defined by ``d``, used by this op ``u`` at
distance ``omega``) is *not* stretchable when
``Estart(d) + MinLT(v) >= omega*II + Lstart(u)``: even the latest legal
placement of ``u`` cannot extend ``v`` past its lower-bound lifetime.
Loop invariants (GPR-resident), duplicate inputs and self-recurrences
are ignored throughout, as are ICR predicates (this heuristic minimizes
RR pressure).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bounds.lifetimes import min_lifetime
from repro.bounds.resmii import critical_unit_instances
from repro.ir.ddg import DDG
from repro.ir.loop import LoopBody
from repro.ir.operations import Operation
from repro.ir.types import DType
from repro.machine.machine import Machine, UnitInstance
from repro.core.framework import SchedulingAttempt


def _is_rr_flow_value(value) -> bool:
    return value is not None and value.is_variant and value.dtype is not DType.PRED


class SlackAttempt(SchedulingAttempt):
    """One fixed-II attempt of the bidirectional slack scheduler."""

    def __init__(
        self,
        loop: LoopBody,
        machine: Machine,
        ddg: DDG,
        ii: int,
        binding: Dict[int, UnitInstance],
        budget_ratio: float = 16.0,
        bidirectional: bool = True,
        critical_threshold: float = 0.90,
        tight_cap: bool = False,
        dynamic_priority: bool = True,
        tracer=None,
        metrics=None,
        profiler=None,
    ):
        super().__init__(
            loop, machine, ddg, ii, binding, budget_ratio,
            tight_cap=tight_cap, tracer=tracer, metrics=metrics,
            profiler=profiler,
        )
        self.bidirectional = bidirectional
        #: §8 ablation: with dynamic_priority off, the operation choice
        #: freezes each op's *initial* slack (as Cydrome's scheduler
        #: did), so the scheduler cannot detect a recurrence circuit
        #: becoming "fixed" by a placement.
        self.dynamic_priority = dynamic_priority
        self._initial_slack: Optional[Dict[int, float]] = None
        critical_units = critical_unit_instances(
            loop, machine, binding, ii, threshold=critical_threshold
        )
        #: Critical ops are marked just before attempting each new II.
        self.critical_ops = {
            oid for oid, unit in binding.items() if unit in critical_units
        }
        #: MinLT per value id, fixed for this II (§5.1).
        if self.prof is not None:
            with self.prof.span("slack.minlt"):
                self.minlt = self._compute_minlt()
        else:
            self.minlt = self._compute_minlt()

    def _compute_minlt(self) -> Dict[int, int]:
        return {
            value.vid: min_lifetime(value, self.ddg, self.mindist, self.ii)
            for value in self.loop.values
            if value.is_variant and value.defop is not None
        }

    # ------------------------------------------------------------------
    # §4.3: dynamic priority
    # ------------------------------------------------------------------
    def priority(self, op: Operation) -> float:
        """Estimated number of issue slots available to ``op``."""
        if not self.dynamic_priority:
            if self._initial_slack is None:
                self._initial_slack = {}
            if op.oid not in self._initial_slack:
                self._initial_slack[op.oid] = self._current_slack(op)
            return self._initial_slack[op.oid]
        return self._current_slack(op)

    def _current_slack(self, op: Operation) -> float:
        slack = float(int(self.lstart[op.oid]) - int(self.estart[op.oid]))
        if self.contention:
            if op.oid in self.critical_ops:
                slack /= 2.0
            if op.uses_divider:
                slack /= 2.0
        return slack

    def choose_operation(self) -> Operation:
        if self.prof is not None:
            self.prof.count("slack.choose_operation")
        best_oid = min(
            self.unplaced,
            key=lambda oid: (
                self.priority(self.loop.ops[oid]),
                int(self.lstart[oid]),
                oid,
            ),
        )
        return self.loop.ops[best_oid]

    # ------------------------------------------------------------------
    # §5.2: bidirectional issue-cycle choice
    # ------------------------------------------------------------------
    def _stretchable_inputs(self, op: Operation) -> int:
        seen = set()
        count = 0
        for arc in self.ddg.flow_inputs(op):
            value = arc.value
            if not _is_rr_flow_value(value) or value.vid in seen:
                continue
            if arc.src == op.oid:
                continue  # self-recurrence: length fixed at omega*II
            seen.add(value.vid)
            pinned = (
                int(self.estart[arc.src]) + self.minlt.get(value.vid, 0)
                >= arc.omega * self.ii + int(self.lstart[op.oid])
            )
            if not pinned:
                count += 1
        return count

    def _stretchable_outputs(self, op: Operation) -> int:
        """In SSA, placing an op early stretches its output; the output
        counts whenever some other operation consumes the value."""
        value = op.dest
        if not _is_rr_flow_value(value):
            return 0
        for arc in self.ddg.flow_outputs(op):
            if arc.value is value and arc.dst != op.oid:
                return 1
        return 0

    def prefers_early(self, op: Operation) -> bool:
        """The §5.2 decision: True to scan Estart->Lstart."""
        inputs = self._stretchable_inputs(op)
        outputs = self._stretchable_outputs(op)
        if inputs == 0 and outputs == 0:
            return True
        if inputs != outputs:
            return inputs > outputs
        # Tie: place near the group less likely to be ejected.
        preds, succs = self.ddg.neighbors(op)
        pred_frac = _placed_fraction(preds, self.times)
        succ_frac = _placed_fraction(succs, self.times)
        if pred_frac != succ_frac:
            return pred_frac > succ_frac
        any_placed = any(oid in self.times for oid in preds) or any(
            oid in self.times for oid in succs
        )
        return not any_placed

    def choose_issue_cycle(self, op: Operation, lo: int, hi: int) -> Optional[int]:
        early = self.prefers_early(op) if self.bidirectional else True
        return self.scan_window(op, lo, hi, early=early)


def _placed_fraction(oids, times) -> float:
    if not oids:
        return 0.0
    placed = sum(1 for oid in oids if oid in times)
    return placed / len(oids)
