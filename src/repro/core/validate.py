"""Static schedule validation.

A modulo schedule is feasible iff

1. every operation (including Start at cycle 0 and Stop) has a time;
2. every dependence arc satisfies
   ``time(dst) >= time(src) + latency - omega * II``;
3. replaying all placements into a fresh modulo resource table produces
   no double-booking (the modulo constraint).

:func:`validate_schedule` returns a list of human-readable violations —
empty means the schedule is provably legal.  The test suite and the
simulator both lean on this as the ground-truth feasibility oracle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.ddg import DDG, build_ddg
from repro.machine.mrt import ModuloResourceTable
from repro.core.schedule import Schedule


def validate_schedule(schedule: Schedule, ddg: Optional[DDG] = None) -> List[str]:
    """Check a schedule against the modulo-scheduling feasibility rules."""
    loop, machine, ii = schedule.loop, schedule.machine, schedule.ii
    if ddg is None:
        ddg = build_ddg(loop, machine)
    violations: List[str] = []

    for op in loop.ops:
        if op.oid not in schedule.times:
            violations.append(f"unplaced operation: {op!r}")
    if violations:
        return violations
    if schedule.times[loop.start.oid] != 0:
        violations.append(
            f"Start must issue at cycle 0, found {schedule.times[loop.start.oid]}"
        )

    for arc in ddg.arcs:
        src_time = schedule.times[arc.src]
        dst_time = schedule.times[arc.dst]
        required = src_time + arc.latency - arc.omega * ii
        if dst_time < required:
            violations.append(
                f"dependence violated: {arc!r} needs t({arc.dst}) >= {required}, "
                f"got {dst_time} (t({arc.src}) = {src_time})"
            )

    mrt = ModuloResourceTable(machine, ii, schedule.binding)
    for op in loop.real_ops:
        cycle = schedule.times[op.oid]
        blockers = mrt.conflicts(op, cycle)
        if blockers:
            violations.append(
                f"resource conflict: {op!r} at cycle {cycle} blocked by oids {blockers}"
            )
        else:
            mrt.place(op, cycle)
    return violations
