"""Top-level scheduling driver: the escalating-II loop (§4.2 step 6).

``modulo_schedule(loop, machine)`` computes MII = max(ResMII, RecMII),
attempts the chosen scheduler at MII, and on failure increments II by
``max(floor(0.04 * II), 1)`` — the paper's compromise that trades a
little II for far less compile time on large complex loops (footnote 6;
the +1 policy is available for the ablation bench).

Observability: pass a :class:`~repro.obs.trace.Tracer` to record every
scheduler decision (attempt starts, placements, ejections, II
escalations, outcomes) and/or a
:class:`~repro.obs.metrics.MetricsRegistry` for aggregates (per-phase
wall time, window-scan lengths, MRT occupancy).  Both default to off
and cost nothing when absent.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
import time
from typing import Optional, Type

from repro.bounds.recmii import recmii
from repro.bounds.resmii import resmii
from repro.ir.ddg import DDG, build_ddg
from repro.ir.loop import LoopBody
from repro.machine.machine import Machine
from repro.core.baseline import CydromeAttempt, HeightAttempt, UnidirectionalAttempt
from repro.core.framework import (
    SchedulingAttempt,
    placement_budget,
    run_attempt,
)
from repro.core.schedule import ScheduleResult, SchedulerStats
from repro.core.slack import SlackAttempt
from repro.core.warp import run_warp_attempt
from repro.obs import trace as tracing
from repro.obs.metrics import MetricsRegistry, record_mrt_occupancy
from repro.obs.prof import Profiler

logger = logging.getLogger(__name__)

#: Registry of scheduler algorithms selectable by name.  "warp" is the
#: §8 hierarchical list scheduler, which does not use the
#: operation-driven backtracking framework.
ALGORITHMS = {
    "slack": SlackAttempt,
    "cydrome": CydromeAttempt,
    "unidirectional": UnidirectionalAttempt,
    "height": HeightAttempt,
    "warp": None,
}


@dataclasses.dataclass
class SchedulerOptions:
    """Tunable knobs of the scheduling driver.

    Attributes:
        budget_ratio: Placement budget per attempt, as a multiple of the
            loop's operation count (step 6's "ejected too many times").
        max_attempts: How many IIs to try before declaring failure (the
            paper's Cydrome runs failed to pipeline 14 loops).
        ii_step_percent: II escalation rate; 0.04 is the paper's choice,
            0.0 degenerates to the +1 policy of footnote 6.
        bidirectional: Disable for the §7 ablation (slack algorithm only).
        dynamic_priority: Disable to freeze each operation's *initial*
            slack as its priority (the Cydrome-style static scheme the
            §8 discussion contrasts with; slack algorithm only).
        critical_threshold: Fraction of II at which a resource counts as
            critical (0.90 in §4.3).
        max_rr_pressure: Optional rotating-register budget.  The paper
            assumes infinite registers (footnote 1: "no one as yet has a
            good strategy for spilling registers in a software
            pipeline"); this extension instead *slows the pipeline down*
            — a schedule whose MaxLive exceeds the budget is rejected
            and II escalates, trading throughput for registers without
            spill code.
    """

    budget_ratio: float = 16.0
    max_attempts: int = 15
    ii_step_percent: float = 0.04
    bidirectional: bool = True
    dynamic_priority: bool = True
    critical_threshold: float = 0.90
    max_rr_pressure: Optional[int] = None

    def next_ii(self, ii: int) -> int:
        return ii + max(int(self.ii_step_percent * ii), 1)


def modulo_schedule(
    loop: LoopBody,
    machine: Machine,
    algorithm: str = "slack",
    options: Optional[SchedulerOptions] = None,
    ddg: Optional[DDG] = None,
    tracer: Optional[tracing.Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
) -> ScheduleResult:
    """Modulo schedule ``loop`` for ``machine``.

    Args:
        loop: A finalized loop body.
        machine: Target machine description.
        algorithm: "slack" (the paper), "cydrome" (the Table 4
            baseline), or "unidirectional" (the §7 ablation).
        options: Driver knobs; defaults reproduce the paper's settings.
        ddg: Pre-built dependence graph (rebuilt when omitted).
        tracer: Optional decision-level trace sink (see repro.obs).
        metrics: Optional aggregate-metrics registry (see repro.obs).
        profiler: Optional span profiler (see repro.obs.prof); records
            where driver/bounds/scheduler wall time goes.

    Returns:
        A :class:`ScheduleResult`; ``result.success`` is False when every
        attempted II exhausted its budget.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; pick from {sorted(ALGORITHMS)}")
    attempt_cls: Type[SchedulingAttempt] = ALGORITHMS[algorithm]
    options = options or SchedulerOptions()
    prof = profiler if (profiler is not None and profiler.enabled) else None
    if ddg is None:
        if prof is None:
            ddg = build_ddg(loop, machine)
        else:
            with prof.span("driver.build_ddg"):
                ddg = build_ddg(loop, machine)
    trace = tracer if (tracer is not None and tracer.enabled) else None

    # Both II lower bounds are stashed on the DDG: re-scheduling a
    # prebuilt graph (service cache hits, benches, escalation studies)
    # skips the circuit enumeration and unit-pressure scans entirely.
    res_mii = getattr(ddg, "_resmii", None)
    if prof is None:
        if res_mii is None:
            res_mii = ddg._resmii = resmii(loop, machine)
        rec_mii = recmii(ddg)
    else:
        if res_mii is None:
            with prof.span("bounds.resmii"):
                res_mii = ddg._resmii = resmii(loop, machine)
        with prof.span("bounds.recmii"):
            rec_mii = recmii(ddg)
    mii = max(res_mii, rec_mii)
    # The unit-binding prepass is a pure function of (loop, machine) —
    # exactly what the DDG was built from — so it is stashed alongside
    # the other bounds.
    binding = getattr(ddg, "_binding", None)
    if binding is None:
        binding = ddg._binding = machine.bind_units(loop)

    stats = SchedulerStats()
    ii = mii
    last_ii = mii
    schedule = None
    for _ in range(options.max_attempts):
        attempt_stats = SchedulerStats()
        attempt_stats.attempts = 1
        if trace is not None:
            budget = 0 if algorithm == "warp" else placement_budget(loop, options.budget_ratio)
            trace.emit(
                tracing.AttemptStart(
                    algorithm=algorithm,
                    ii=ii,
                    n_ops=len(loop.real_ops),
                    budget=budget,
                )
            )
        span = prof.span("driver.attempt") if prof is not None else contextlib.nullcontext()
        with span:
            if prof is not None:
                prof.count("driver.attempts")
            if algorithm == "warp":
                schedule, warp_stats = run_warp_attempt(
                    loop, machine, ddg, ii, binding, tracer=trace
                )
                attempt_stats.merge(warp_stats)
            else:
                kwargs = {"budget_ratio": options.budget_ratio}
                if attempt_cls is SlackAttempt:
                    kwargs["bidirectional"] = options.bidirectional
                    kwargs["dynamic_priority"] = options.dynamic_priority
                    kwargs["critical_threshold"] = options.critical_threshold
                started = time.perf_counter()
                attempt = attempt_cls(
                    loop, machine, ddg, ii, binding,
                    tracer=trace, metrics=metrics, profiler=prof, **kwargs
                )
                # The attempt already charged the MinDist build to
                # stats.mindist_seconds (matching the profiler's
                # bounds.mindist span); the rest of construction — unit
                # binding tables, MinLT, critical-unit detection — is
                # attempt setup, not MinDist, and is timed separately so
                # span-level regression attribution stops blaming the
                # wrong phase.
                construction = time.perf_counter() - started
                attempt.stats.setup_seconds += max(
                    0.0, construction - attempt.stats.mindist_seconds
                )

                started = time.perf_counter()
                schedule = run_attempt(attempt)
                attempt.stats.scheduling_seconds += time.perf_counter() - started
                attempt_stats.merge(attempt.stats)
        stats.merge(attempt_stats)
        if metrics is not None:
            metrics.counter("scheduler.attempts").inc()
            metrics.timer("phase.mindist").add(attempt_stats.mindist_seconds)
            metrics.timer("phase.attempt_setup").add(attempt_stats.setup_seconds)
            metrics.timer("phase.scheduling").add(attempt_stats.scheduling_seconds)
        last_ii = ii
        if schedule is not None and options.max_rr_pressure is not None:
            from repro.bounds.lifetimes import rr_max_live

            pressure = rr_max_live(loop, ddg, schedule.times, ii)
            if pressure > options.max_rr_pressure:
                schedule = None  # over budget: slow the pipeline down
                if trace is not None:
                    trace.emit(
                        tracing.AttemptFail(
                            ii=ii,
                            reason=(
                                f"MaxLive {pressure} exceeds register budget "
                                f"{options.max_rr_pressure}"
                            ),
                        )
                    )
        if schedule is not None:
            break
        next_ii = options.next_ii(ii)
        logger.info(
            "%s: attempt at II=%d failed (%d ejections so far); escalating to II=%d",
            loop.name, ii, stats.ejections, next_ii,
        )
        if trace is not None:
            trace.emit(
                tracing.IIEscalate(
                    old_ii=ii,
                    new_ii=next_ii,
                    reason=f"attempt {stats.attempts} failed at II={ii}",
                )
            )
        ii = next_ii

    if schedule is not None:
        logger.info(
            "%s: scheduled at II=%d (MII=%d) after %d attempt(s), %d ejections",
            loop.name, schedule.ii, mii, stats.attempts, stats.ejections,
        )
        if trace is not None:
            trace.emit(
                tracing.ScheduleFound(
                    ii=schedule.ii, span=schedule.span, stages=schedule.stages
                )
            )
        record_mrt_occupancy(metrics, schedule)

    return ScheduleResult(
        loop=loop,
        machine=machine,
        schedule=schedule,
        mii=mii,
        res_mii=res_mii,
        rec_mii=rec_mii,
        stats=stats,
        last_attempted_ii=last_ii,
    )
