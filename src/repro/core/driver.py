"""Top-level scheduling driver: the escalating-II loop (§4.2 step 6).

``modulo_schedule(loop, machine)`` computes MII = max(ResMII, RecMII),
attempts the chosen scheduler at MII, and on failure increments II by
``max(floor(0.04 * II), 1)`` — the paper's compromise that trades a
little II for far less compile time on large complex loops (footnote 6;
the +1 policy is available for the ablation bench).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional, Type

from repro.bounds.recmii import recmii
from repro.bounds.resmii import resmii
from repro.ir.ddg import DDG, build_ddg
from repro.ir.loop import LoopBody
from repro.machine.machine import Machine
from repro.core.baseline import CydromeAttempt, HeightAttempt, UnidirectionalAttempt
from repro.core.framework import SchedulingAttempt, run_attempt
from repro.core.schedule import ScheduleResult, SchedulerStats
from repro.core.slack import SlackAttempt
from repro.core.warp import run_warp_attempt

#: Registry of scheduler algorithms selectable by name.  "warp" is the
#: §8 hierarchical list scheduler, which does not use the
#: operation-driven backtracking framework.
ALGORITHMS = {
    "slack": SlackAttempt,
    "cydrome": CydromeAttempt,
    "unidirectional": UnidirectionalAttempt,
    "height": HeightAttempt,
    "warp": None,
}


@dataclasses.dataclass
class SchedulerOptions:
    """Tunable knobs of the scheduling driver.

    Attributes:
        budget_ratio: Placement budget per attempt, as a multiple of the
            loop's operation count (step 6's "ejected too many times").
        max_attempts: How many IIs to try before declaring failure (the
            paper's Cydrome runs failed to pipeline 14 loops).
        ii_step_percent: II escalation rate; 0.04 is the paper's choice,
            0.0 degenerates to the +1 policy of footnote 6.
        bidirectional: Disable for the §7 ablation (slack algorithm only).
        dynamic_priority: Disable to freeze each operation's *initial*
            slack as its priority (the Cydrome-style static scheme the
            §8 discussion contrasts with; slack algorithm only).
        critical_threshold: Fraction of II at which a resource counts as
            critical (0.90 in §4.3).
        max_rr_pressure: Optional rotating-register budget.  The paper
            assumes infinite registers (footnote 1: "no one as yet has a
            good strategy for spilling registers in a software
            pipeline"); this extension instead *slows the pipeline down*
            — a schedule whose MaxLive exceeds the budget is rejected
            and II escalates, trading throughput for registers without
            spill code.
    """

    budget_ratio: float = 16.0
    max_attempts: int = 15
    ii_step_percent: float = 0.04
    bidirectional: bool = True
    dynamic_priority: bool = True
    critical_threshold: float = 0.90
    max_rr_pressure: Optional[int] = None

    def next_ii(self, ii: int) -> int:
        return ii + max(int(self.ii_step_percent * ii), 1)


def modulo_schedule(
    loop: LoopBody,
    machine: Machine,
    algorithm: str = "slack",
    options: Optional[SchedulerOptions] = None,
    ddg: Optional[DDG] = None,
) -> ScheduleResult:
    """Modulo schedule ``loop`` for ``machine``.

    Args:
        loop: A finalized loop body.
        machine: Target machine description.
        algorithm: "slack" (the paper), "cydrome" (the Table 4
            baseline), or "unidirectional" (the §7 ablation).
        options: Driver knobs; defaults reproduce the paper's settings.
        ddg: Pre-built dependence graph (rebuilt when omitted).

    Returns:
        A :class:`ScheduleResult`; ``result.success`` is False when every
        attempted II exhausted its budget.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; pick from {sorted(ALGORITHMS)}")
    attempt_cls: Type[SchedulingAttempt] = ALGORITHMS[algorithm]
    options = options or SchedulerOptions()
    if ddg is None:
        ddg = build_ddg(loop, machine)

    res_mii = resmii(loop, machine)
    rec_mii = recmii(ddg)
    mii = max(res_mii, rec_mii)
    binding = machine.bind_units(loop)

    stats = SchedulerStats()
    ii = mii
    last_ii = mii
    schedule = None
    for _ in range(options.max_attempts):
        if algorithm == "warp":
            started = time.perf_counter()
            schedule, attempt_stats = run_warp_attempt(loop, machine, ddg, ii, binding)
            stats.scheduling_seconds += time.perf_counter() - started
            stats.attempts += 1
            stats.placements += attempt_stats.placements
            stats.forced += attempt_stats.forced
        else:
            kwargs = {"budget_ratio": options.budget_ratio}
            if attempt_cls is SlackAttempt:
                kwargs["bidirectional"] = options.bidirectional
                kwargs["dynamic_priority"] = options.dynamic_priority
                kwargs["critical_threshold"] = options.critical_threshold
            started = time.perf_counter()
            attempt = attempt_cls(loop, machine, ddg, ii, binding, **kwargs)
            stats.mindist_seconds += time.perf_counter() - started

            started = time.perf_counter()
            schedule = run_attempt(attempt)
            stats.scheduling_seconds += time.perf_counter() - started
            stats.attempts += 1
            stats.placements += attempt.stats.placements
            stats.forced += attempt.stats.forced
            stats.ejections += attempt.stats.ejections
        last_ii = ii
        if schedule is not None and options.max_rr_pressure is not None:
            from repro.bounds.lifetimes import rr_max_live

            if rr_max_live(loop, ddg, schedule.times, ii) > options.max_rr_pressure:
                schedule = None  # over budget: slow the pipeline down
        if schedule is not None:
            break
        ii = options.next_ii(ii)

    return ScheduleResult(
        loop=loop,
        machine=machine,
        schedule=schedule,
        mii=mii,
        res_mii=res_mii,
        rec_mii=rec_mii,
        stats=stats,
        last_attempted_ii=last_ii,
    )
