"""Warp-style hierarchical scheduling (the §8 list-scheduling baseline).

From the paper's related work: "In order to dispense with backtracking
altogether, the Warp compiler special-cases recurrence circuits within
a list-scheduling framework.  In essence, the compiler fixes the
relative timing of the operations on a recurrence circuit before
scheduling the overall loop body.  By thus reducing each recurrence
circuit to a complex pseudo-operation, only acyclic dependencies
remain, which are easily dealt with."

Reproduced here:

1. every non-trivial SCC of the dependence graph becomes a *macro node*
   whose members get fixed relative offsets (each member as early as
   possible relative to an anchor, i.e. longest internal paths at the
   target II);
2. the SCC condensation — a DAG — is list scheduled in topological
   order, each node placed at the earliest cycle satisfying its placed
   predecessors, scanning at most II cycles for a conflict-free slot in
   the modulo resource table (all members of a macro node must fit
   simultaneously);
3. there is no backtracking: if any node cannot be placed, the attempt
   fails and the driver escalates II.

The paper's criticism — "the early placement of all operations from a
recurrence circuit can be an unnecessary constraint on the scheduler" —
is exactly what the Table 3-style comparison benchmark shows: the
hierarchical scheduler misses MII more often than slack scheduling and
stretches lifetimes besides.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from repro.bounds.mindist import MinDist
from repro.bounds.recmii import strongly_connected_components
from repro.ir.ddg import DDG, ArcKind
from repro.ir.loop import LoopBody
from repro.machine.machine import Machine, UnitInstance
from repro.machine.mrt import ModuloResourceTable
from repro.core.schedule import Schedule, SchedulerStats
from repro.obs import trace as tracing


@dataclasses.dataclass
class _MacroNode:
    """One schedulable unit: a singleton op or a condensed recurrence."""

    index: int
    members: List[int]  # oids
    offsets: Dict[int, int]  # oid -> fixed relative cycle

    @property
    def is_macro(self) -> bool:
        return len(self.members) > 1


class WarpScheduler:
    """One fixed-II attempt of the hierarchical list scheduler."""

    def __init__(
        self,
        loop: LoopBody,
        machine: Machine,
        ddg: DDG,
        ii: int,
        binding: Dict[int, UnitInstance],
        tracer: Optional[tracing.Tracer] = None,
    ):
        self.trace = tracer if (tracer is not None and tracer.enabled) else None
        self.loop = loop
        self.machine = machine
        self.ddg = ddg
        self.ii = ii
        self.binding = binding
        mindist_started = time.perf_counter()
        self.mindist = MinDist(ddg, ii)
        self.mindist_build_seconds = time.perf_counter() - mindist_started
        if not self.mindist.feasible:
            raise ValueError(f"II={ii} is below RecMII for {loop.name}")
        self.mrt = ModuloResourceTable(machine, ii, binding)
        self.stats = SchedulerStats()
        self.infeasible_node = False
        self.nodes = self._build_nodes()

    # ------------------------------------------------------------------
    def _build_nodes(self) -> List[_MacroNode]:
        succs: List[set] = [set() for _ in range(self.ddg.n)]
        for arc in self.ddg.arcs:
            if arc.kind is not ArcKind.SEQ and arc.src != arc.dst:
                succs[arc.src].add(arc.dst)
        components = strongly_connected_components(
            self.ddg.n, [sorted(s) for s in succs]
        )
        nodes = []
        for members in components:
            members = sorted(members)
            offsets = self._fix_relative_timing(members)
            if offsets is None:
                # The circuit itself cannot be packed at this II (e.g.
                # two same-unit members forced onto one modulo row).
                self.infeasible_node = True
                offsets = {oid: 0 for oid in members}
            nodes.append(_MacroNode(index=len(nodes), members=members, offsets=offsets))
        return nodes

    def _fix_relative_timing(self, members: List[int]) -> Optional[Dict[int, int]]:
        """Pre-schedule the circuit: fixed relative offsets for members.

        A greedy local list-schedule: members in longest-path order from
        the anchor, each placed at the earliest offset satisfying the
        (global, hence conservative) MinDist constraints against already
        placed members *and* a private modulo reservation of the unit
        instances the members share.  This is the Warp compiler's
        reduction of each recurrence circuit to one complex
        pseudo-operation with a fixed internal schedule.  Returns None
        when no conflict-free internal packing exists at this II.
        """
        if len(members) == 1:
            return {members[0]: 0}
        anchor = members[0]

        def anchor_distance(oid: int) -> int:
            distance = self.mindist.dist(anchor, oid)
            return distance if distance is not None else 0

        ordered = sorted(members, key=lambda oid: (anchor_distance(oid), oid))
        offsets: Dict[int, int] = {}
        local_reservations: Dict[Tuple[UnitInstance, int], int] = {}

        def local_fits(oid: int, offset: int) -> bool:
            unit = self.binding.get(oid)
            if unit is None:
                return True
            busy = self.machine.busy_cycles(self.loop.ops[oid])
            if busy > self.ii:
                return False
            return all(
                (unit, (offset + extra) % self.ii) not in local_reservations
                for extra in range(busy)
            )

        def reserve(oid: int, offset: int) -> None:
            unit = self.binding.get(oid)
            if unit is None:
                return
            busy = self.machine.busy_cycles(self.loop.ops[oid])
            for extra in range(busy):
                local_reservations[(unit, (offset + extra) % self.ii)] = oid

        for oid in ordered:
            lower = 0
            upper: Optional[int] = None
            for placed, placed_offset in offsets.items():
                forward = self.mindist.dist(placed, oid)
                if forward is not None:
                    lower = max(lower, placed_offset + forward)
                backward = self.mindist.dist(oid, placed)
                if backward is not None:
                    ceiling = placed_offset - backward
                    upper = ceiling if upper is None else min(upper, ceiling)
            chosen = None
            for offset in range(lower, lower + self.ii):
                if upper is not None and offset > upper:
                    break
                if local_fits(oid, offset):
                    chosen = offset
                    break
            if chosen is None:
                return None
            offsets[oid] = chosen
            reserve(oid, chosen)
        floor = min(offsets.values())
        return {oid: offset - floor for oid, offset in offsets.items()}

    # ------------------------------------------------------------------
    def run(self) -> Optional[Dict[int, int]]:
        """List schedule the condensation; None if any node fails."""
        if self.infeasible_node:
            if self.trace is not None:
                self.trace.emit(
                    tracing.AttemptFail(
                        ii=self.ii,
                        reason="a recurrence circuit cannot be packed at this II",
                    )
                )
            return None
        loop = self.loop
        node_of: Dict[int, _MacroNode] = {}
        for node in self.nodes:
            for oid in node.members:
                node_of[oid] = node

        # Topological order of the condensation by earliest start.
        order = self._topological_order(node_of)
        times: Dict[int, int] = {loop.start.oid: 0}
        if self.trace is not None:
            self.trace.emit(tracing.Place(oid=loop.start.oid, cycle=0))

        for node in order:
            if node.members == [loop.start.oid]:
                continue
            earliest = self._earliest_start(node, times)
            placed_at = self._place_node(node, earliest)
            if placed_at is None:
                if self.trace is not None:
                    self.trace.emit(
                        tracing.AttemptFail(
                            ii=self.ii,
                            reason=(
                                f"no conflict-free slot for node {node.members} "
                                f"at II={self.ii} (no backtracking)"
                            ),
                        )
                    )
                return None
            for oid in node.members:
                times[oid] = placed_at + node.offsets[oid]
                self.stats.placements += 1
                if self.trace is not None:
                    self.trace.emit(tracing.Place(oid=oid, cycle=times[oid]))
        return times

    def _topological_order(self, node_of) -> List[_MacroNode]:
        indegree = {node.index: 0 for node in self.nodes}
        edges: Dict[int, set] = {node.index: set() for node in self.nodes}
        for arc in self.ddg.arcs:
            src_node = node_of[arc.src]
            dst_node = node_of[arc.dst]
            if src_node.index == dst_node.index:
                continue
            if dst_node.index not in edges[src_node.index]:
                edges[src_node.index].add(dst_node.index)
                indegree[dst_node.index] += 1
        ready = [node for node in self.nodes if indegree[node.index] == 0]
        order: List[_MacroNode] = []
        by_index = {node.index: node for node in self.nodes}
        while ready:
            # Deterministic: lowest smallest-member first.
            ready.sort(key=lambda node: node.members[0])
            node = ready.pop(0)
            order.append(node)
            for successor in sorted(edges[node.index]):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(by_index[successor])
        if len(order) != len(self.nodes):
            raise RuntimeError("condensation is not acyclic — SCCs are broken")
        return order

    def _earliest_start(self, node: _MacroNode, times: Dict[int, int]) -> int:
        earliest = 0
        for oid in node.members:
            member_offset = node.offsets[oid]
            for arc in self.ddg.preds[oid]:
                if arc.src in node.offsets and arc.src in node.members:
                    continue
                src_time = times.get(arc.src)
                if src_time is None:
                    continue
                needed = src_time + arc.latency - arc.omega * self.ii - member_offset
                earliest = max(earliest, needed)
        return earliest

    def _place_node(self, node: _MacroNode, earliest: int) -> Optional[int]:
        """Earliest base cycle >= earliest where every member fits.

        The node's joint resource footprint depends only on
        ``base mod II``, so II consecutive candidates are exhaustive: if
        none fits, no later cycle will either and the attempt fails
        (there is no backtracking in this framework).
        """
        for base in range(earliest, earliest + self.ii):
            if self._fits(node, base):
                for oid in node.members:
                    self.mrt.place(self.loop.ops[oid], base + node.offsets[oid])
                return base
            self.stats.forced += 1  # counted as wasted scan work
        return None

    def _fits(self, node: _MacroNode, base: int) -> bool:
        placed: List[Tuple[int, int]] = []
        for oid in node.members:
            op = self.loop.ops[oid]
            cycle = base + node.offsets[oid]
            if not self.mrt.fits(op, cycle):
                for done_oid, done_cycle in placed:
                    self.mrt.remove(self.loop.ops[done_oid], done_cycle)
                return False
            # Tentatively reserve so same-unit members see each other.
            self.mrt.place(op, cycle)
            placed.append((oid, cycle))
        for done_oid, done_cycle in placed:
            self.mrt.remove(self.loop.ops[done_oid], done_cycle)
        return True


def run_warp_attempt(
    loop: LoopBody,
    machine: Machine,
    ddg: DDG,
    ii: int,
    binding: Dict[int, UnitInstance],
    tracer: Optional[tracing.Tracer] = None,
) -> Tuple[Optional[Schedule], SchedulerStats]:
    """One Warp-style attempt; (schedule or None, work stats).

    The MinDist solve is accounted to ``mindist_seconds``, the rest of
    construction (SCC macro-nodes, relative-timing fixups) to
    ``setup_seconds``, and the list scheduling itself to
    ``scheduling_seconds``, mirroring the backtracking framework's
    split so Table-4-style effort comparisons stay apples-to-apples.
    """
    started = time.perf_counter()
    scheduler = WarpScheduler(loop, machine, ddg, ii, binding, tracer=tracer)
    construction = time.perf_counter() - started
    scheduler.stats.mindist_seconds += scheduler.mindist_build_seconds
    scheduler.stats.setup_seconds += max(
        0.0, construction - scheduler.mindist_build_seconds
    )
    started = time.perf_counter()
    times = scheduler.run()
    scheduler.stats.scheduling_seconds += time.perf_counter() - started
    if times is None:
        return None, scheduler.stats
    schedule = Schedule(loop=loop, machine=machine, ii=ii, times=times, binding=binding)
    return schedule, scheduler.stats
