"""Schedule objects and scheduler statistics."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from repro.ir.loop import LoopBody
from repro.machine.machine import Machine, UnitInstance


@dataclasses.dataclass
class SchedulerStats:
    """Work counters for one scheduling run (paper §6's effort metrics)."""

    attempts: int = 0  # IIs tried (step-6 restarts = attempts - 1)
    placements: int = 0  # central-loop iterations (ops placed, incl. re-placements)
    forced: int = 0  # step-3 invocations (no conflict-free slot existed)
    ejections: int = 0  # operations ejected from the partial schedule
    mindist_seconds: float = 0.0  # the MinDist closure build alone
    setup_seconds: float = 0.0  # rest of attempt construction (binding, MinLT, ...)
    scheduling_seconds: float = 0.0

    @property
    def backtracked(self) -> bool:
        return self.ejections > 0

    def merge(self, other: "SchedulerStats") -> None:
        self.attempts += other.attempts
        self.placements += other.placements
        self.forced += other.forced
        self.ejections += other.ejections
        self.mindist_seconds += other.mindist_seconds
        self.setup_seconds += other.setup_seconds
        self.scheduling_seconds += other.scheduling_seconds


@dataclasses.dataclass
class Schedule:
    """A complete modulo schedule: issue cycle for every operation."""

    loop: LoopBody
    machine: Machine
    ii: int
    times: Dict[int, int]
    binding: Dict[int, UnitInstance]

    @property
    def span(self) -> int:
        """Schedule length of one iteration (Stop's issue cycle)."""
        return self.times[self.loop.stop.oid]

    @property
    def stages(self) -> int:
        """Number of pipeline stages (kernel copies in flight)."""
        return max(1, math.ceil(self.span / self.ii))

    def time_of(self, oid: int) -> int:
        return self.times[oid]

    def kernel_rows(self) -> List[List[int]]:
        """Oids of real operations grouped by issue row (cycle mod II)."""
        rows: List[List[int]] = [[] for _ in range(self.ii)]
        for op in self.loop.real_ops:
            rows[self.times[op.oid] % self.ii].append(op.oid)
        for row in rows:
            row.sort(key=lambda oid: self.times[oid])
        return rows

    def render(self) -> str:
        """Readable listing: one line per op, sorted by issue cycle."""
        lines = [f"schedule {self.loop.name}: II={self.ii}, span={self.span}, stages={self.stages}"]
        for op in sorted(self.loop.ops, key=lambda op: (self.times[op.oid], op.oid)):
            lines.append(f"  t={self.times[op.oid]:4d}  row={self.times[op.oid] % self.ii:3d}  {op!r}")
        return "\n".join(lines)

    def render_resource_table(self) -> str:
        """ASCII Gantt of the modulo resource table: one line per unit
        instance, one column per II row, cells showing the issuing op's
        oid ('=' marks a non-pipelined op's trailing busy cycles)."""
        machine = self.machine
        cells: Dict[tuple, List[str]] = {}
        for class_index, unit_class in enumerate(machine.unit_classes):
            for instance in range(unit_class.count):
                cells[(class_index, instance)] = ["."] * self.ii
        for op in self.loop.real_ops:
            unit = self.binding.get(op.oid)
            if unit is None:
                continue
            row = self.times[op.oid] % self.ii
            busy = machine.busy_cycles(op)
            lane = cells[unit]
            lane[row] = str(op.oid)
            for extra in range(1, busy):
                lane[(row + extra) % self.ii] = "="
        width = max(2, max((len(c) for lane in cells.values() for c in lane), default=2))
        lines = [f"modulo resource table (II={self.ii}):"]
        header = " " * 18 + " ".join(f"{c:>{width}}" for c in range(self.ii))
        lines.append(header)
        for (class_index, instance), lane in sorted(cells.items()):
            name = machine.unit_classes[class_index].name
            body = " ".join(f"{cell:>{width}}" for cell in lane)
            lines.append(f"{name + '[' + str(instance) + ']':<18}{body}")
        return "\n".join(lines)


@dataclasses.dataclass
class ScheduleResult:
    """Outcome of driving a scheduler over escalating IIs."""

    loop: LoopBody
    machine: Machine
    schedule: Optional[Schedule]
    mii: int
    res_mii: int
    rec_mii: int
    stats: SchedulerStats
    last_attempted_ii: int

    @property
    def success(self) -> bool:
        return self.schedule is not None

    @property
    def ii(self) -> int:
        """Achieved II on success; last attempted II on failure (the
        paper reports Cydrome's 14 failures this way in Table 4)."""
        if self.schedule is not None:
            return self.schedule.ii
        return self.last_attempted_ii

    @property
    def optimal(self) -> bool:
        return self.success and self.schedule.ii == self.mii
