"""Modulo resource table (MRT).

The MRT has II rows; placing an operation at cycle ``t`` reserves its
bound unit instance at rows ``(t + k) mod II`` for every cycle ``k`` of
its busy pattern (1 cycle for pipelined units, the whole latency for the
non-pipelined divider).  No resource may be reserved twice in the same
row — the modulo constraint (paper §1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.operations import Operation
from repro.machine.machine import Machine, UnitInstance


class ModuloResourceTable:
    """Tracks unit-instance reservations modulo II.

    Each cell holds the oid of the operation occupying that (row, unit
    instance), or None.  Operations are identified by oid so ejection
    can release exactly the right reservations.
    """

    def __init__(self, machine: Machine, ii: int, binding: Dict[int, UnitInstance]):
        if ii < 1:
            raise ValueError(f"II must be positive, got {ii}")
        self.machine = machine
        self.ii = ii
        self.binding = binding
        #: (unit_class, instance) -> list of II cells, each None or an oid.
        self._rows: Dict[UnitInstance, List[Optional[int]]] = {}
        for class_index, unit_class in enumerate(machine.unit_classes):
            for instance in range(unit_class.count):
                self._rows[(class_index, instance)] = [None] * ii

    # ------------------------------------------------------------------
    def _footprint(self, op: Operation, cycle: int) -> Tuple[UnitInstance, List[int]]:
        unit = self.binding[op.oid]
        busy = self.machine.busy_cycles(op)
        rows = [(cycle + k) % self.ii for k in range(busy)]
        return unit, rows

    def conflicts(self, op: Operation, cycle: int) -> List[int]:
        """Oids of placed operations that block ``op`` at ``cycle``.

        A busy pattern longer than II necessarily collides with itself;
        that is reported as a conflict with oid -1 (unresolvable at this
        II).
        """
        if op.oid not in self.binding:
            return []
        unit, rows = self._footprint(op, cycle)
        if self.machine.busy_cycles(op) > self.ii:
            return [-1]
        cells = self._rows[unit]
        blockers: List[int] = []
        for row in rows:
            occupant = cells[row]
            if occupant is not None and occupant != op.oid and occupant not in blockers:
                blockers.append(occupant)
        return blockers

    def fits(self, op: Operation, cycle: int) -> bool:
        """True if ``op`` can be placed at ``cycle`` without conflicts."""
        return not self.conflicts(op, cycle)

    def place(self, op: Operation, cycle: int) -> None:
        """Reserve ``op``'s footprint; raises if any cell is occupied."""
        if op.oid not in self.binding:
            return  # pseudo op: no resources
        blockers = self.conflicts(op, cycle)
        if blockers:
            raise ValueError(f"resource conflict placing {op!r} at {cycle}: {blockers}")
        unit, rows = self._footprint(op, cycle)
        cells = self._rows[unit]
        for row in rows:
            cells[row] = op.oid

    def remove(self, op: Operation, cycle: int) -> None:
        """Release the reservations ``op`` made at ``cycle``."""
        if op.oid not in self.binding:
            return
        unit, rows = self._footprint(op, cycle)
        cells = self._rows[unit]
        for row in rows:
            if cells[row] == op.oid:
                cells[row] = None

    def occupancy(self) -> int:
        """Total number of reserved cells (for tests and stats)."""
        return sum(
            1 for cells in self._rows.values() for cell in cells if cell is not None
        )

    def render(self) -> str:
        """ASCII dump of the table, one line per unit instance."""
        lines = []
        for (class_index, instance), cells in sorted(self._rows.items()):
            name = self.machine.unit_classes[class_index].name
            body = " ".join("." if cell is None else str(cell) for cell in cells)
            lines.append(f"{name}[{instance}]: {body}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ModuloResourceTable(ii={self.ii}, occupied={self.occupancy()})"
