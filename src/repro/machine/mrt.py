"""Modulo resource table (MRT).

The MRT has II rows; placing an operation at cycle ``t`` reserves its
bound unit instance at rows ``(t + k) mod II`` for every cycle ``k`` of
its busy pattern (1 cycle for pipelined units, the whole latency for the
non-pipelined divider).  No resource may be reserved twice in the same
row — the modulo constraint (paper §1).

Occupancy is kept per unit instance in a *doubled* numpy int64 array of
``2*II`` cells (the second half mirrors the first), so any window of up
to II consecutive cycles is one contiguous slice — no index arithmetic,
no wraparound gather.  Cells hold the occupying oid (``-1`` = free),
which keeps the oid-per-cell map ejection and :meth:`render` need.
:meth:`first_fit` answers a whole ``[lo, hi]`` scan-window question in
one vectorized pass instead of per-cycle Python conflict checks, and
:meth:`place` re-verifies the footprint with a cheap occupancy test
instead of rebuilding the blocker list.  Per-op footprints (bound unit,
busy length, residue offsets) are computed once and cached.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.operations import Operation
from repro.machine.machine import Machine, UnitInstance


class ModuloResourceTable:
    """Tracks unit-instance reservations modulo II.

    Each cell holds the oid of the operation occupying that (row, unit
    instance), or -1.  Operations are identified by oid so ejection can
    release exactly the right reservations.
    """

    def __init__(self, machine: Machine, ii: int, binding: Dict[int, UnitInstance]):
        if ii < 1:
            raise ValueError(f"II must be positive, got {ii}")
        self.machine = machine
        self.ii = ii
        self.binding = binding
        #: (unit_class, instance) -> int64 array of 2*II cells (second
        #: half mirrors the first), -1 = free.
        self._cells2: Dict[UnitInstance, np.ndarray] = {}
        #: First-half views of the same arrays (one cell per II row).
        self._cells: Dict[UnitInstance, np.ndarray] = {}
        #: Python-list mirror of the doubled arrays: scalar reads on the
        #: short windows that dominate real scans beat numpy's per-call
        #: overhead, while the arrays serve the long/vectorized paths.
        self._list2: Dict[UnitInstance, list] = {}
        for class_index, unit_class in enumerate(machine.unit_classes):
            for instance in range(unit_class.count):
                doubled = np.full(2 * ii, -1, dtype=np.int64)
                self._cells2[(class_index, instance)] = doubled
                self._cells[(class_index, instance)] = doubled[:ii]
                self._list2[(class_index, instance)] = [-1] * (2 * ii)
        #: oid -> (unit instance, busy cycles, residue offsets 0..busy-1),
        #: a dense list (oids are small and dense) filled lazily.
        size = (max(binding) + 1) if binding else 0
        self._footprints: List[Optional[Tuple[UnitInstance, int, np.ndarray]]] = (
            [None] * size
        )

    # ------------------------------------------------------------------
    def _footprint(self, op: Operation) -> Tuple[UnitInstance, int, np.ndarray]:
        entry = self._footprints[op.oid]
        if entry is None:
            unit = self.binding[op.oid]
            busy = self.machine.busy_cycles(op)
            entry = (unit, busy, np.arange(busy, dtype=np.int64))
            self._footprints[op.oid] = entry
        return entry

    def conflicts(self, op: Operation, cycle: int) -> List[int]:
        """Oids of placed operations that block ``op`` at ``cycle``.

        A busy pattern longer than II necessarily collides with itself;
        that is reported as a conflict with oid -1 (unresolvable at this
        II).
        """
        if op.oid not in self.binding:
            return []
        unit, busy, offsets = self._footprint(op)
        if busy > self.ii:
            return [-1]
        if busy == 1:
            occupant = self._list2[unit][cycle % self.ii]
            return [occupant] if occupant != -1 and occupant != op.oid else []
        occupants = self._cells2[unit][cycle % self.ii :][:busy]
        blocked = occupants[(occupants != -1) & (occupants != op.oid)]
        # Dedup preserving footprint (row) order, as the scan always did.
        return list(dict.fromkeys(blocked.tolist()))

    def fits(self, op: Operation, cycle: int) -> bool:
        """True if ``op`` can be placed at ``cycle`` without conflicts."""
        if op.oid not in self.binding:
            return True
        unit, busy, offsets = self._footprint(op)
        if busy > self.ii:
            return False
        if busy == 1:
            occupant = self._list2[unit][cycle % self.ii]
            return occupant == -1 or occupant == op.oid
        occupants = self._cells2[unit][cycle % self.ii :][:busy]
        return not bool(np.any((occupants != -1) & (occupants != op.oid)))

    def first_fit(
        self, op: Operation, lo: int, hi: int, early: bool
    ) -> Tuple[Optional[int], int]:
        """First conflict-free cycle in ``[lo, hi]``, scanning in the
        requested direction, as ``(cycle or None, cycles scanned)``.

        One vectorized occupancy pass over the whole window; ``scanned``
        reproduces the per-cycle linear-scan count exactly (cycles
        tested up to and including the hit, or the full window length on
        a miss) so scan-length metrics are unchanged.  Only
        ``min(width, II)`` candidates are ever examined — occupancy is
        periodic in II, so a window that long with no free slot has none
        anywhere.
        """
        if lo > hi:
            return None, 0
        if op.oid not in self.binding:
            return (lo if early else hi), 1
        width = hi - lo + 1
        unit, busy, offsets = self._footprint(op)
        ii = self.ii
        if busy > ii:
            return None, width
        span = width if width < ii else ii
        if busy == 1:
            oid = op.oid
            if span <= 32:
                # Scalar scan of the doubled list mirror: for the short
                # windows that dominate, this beats numpy's fixed
                # per-call cost.
                cells = self._list2[unit]
                if early:
                    base = lo % ii
                    for index in range(span):
                        occupant = cells[base + index]
                        if occupant == -1 or occupant == oid:
                            return lo + index, index + 1
                    return None, width
                base = hi % ii + ii
                for back in range(span):
                    occupant = cells[base - back]
                    if occupant == -1 or occupant == oid:
                        return hi - back, back + 1
                return None, width
            # Long window: contiguous slice of the doubled occupancy
            # array — the distinct candidates in scan order, no modulo
            # gather.
            if early:
                window = self._cells2[unit][lo % ii :][:span]
                free = (window == -1) | (window == oid)
                index = int(free.argmax())
                if not free[index]:
                    return None, width
                return lo + index, index + 1
            window = self._cells2[unit][(hi - span + 1) % ii :][:span]
            free = (window == -1) | (window == oid)
            back = int(free[::-1].argmax())
            if not free[span - 1 - back]:
                return None, width
            return hi - back, back + 1
        # Non-pipelined footprint (the divider): gather the candidate
        # rows for the clamped window in one shot.
        if early:
            cycles = np.arange(lo, lo + span, dtype=np.int64)
        else:
            cycles = np.arange(hi, hi - span, -1, dtype=np.int64)
        occupants = self._cells2[unit][
            (cycles[:, None] % ii) + offsets[None, :]
        ]
        free = ~np.any((occupants != -1) & (occupants != op.oid), axis=1)
        index = int(free.argmax())
        if not free[index]:
            return None, width
        cycle = int(cycles[index])
        return cycle, (cycle - lo + 1) if early else (hi - cycle + 1)

    def place(self, op: Operation, cycle: int) -> None:
        """Reserve ``op``'s footprint; raises if any cell is occupied.

        The safety check is a cheap occupancy re-scan of the footprint
        (callers normally just proved the cycle free via :meth:`fits` or
        :meth:`first_fit`); the full blocker list is only rebuilt for
        the error message when the check actually fails.
        """
        if op.oid not in self.binding:
            return  # pseudo op: no resources
        unit, busy, offsets = self._footprint(op)
        if busy > self.ii:
            raise ValueError(
                f"resource conflict placing {op!r} at {cycle}: "
                f"{self.conflicts(op, cycle)}"
            )
        doubled = self._cells2[unit]
        mirror = self._list2[unit]
        if busy == 1:
            row = cycle % self.ii
            occupant = mirror[row]
            if occupant != -1 and occupant != op.oid:
                raise ValueError(
                    f"resource conflict placing {op!r} at {cycle}: "
                    f"{self.conflicts(op, cycle)}"
                )
            doubled[row] = op.oid
            doubled[row + self.ii] = op.oid
            mirror[row] = op.oid
            mirror[row + self.ii] = op.oid
            return
        rows = (cycle + offsets) % self.ii
        occupants = doubled[rows]
        if bool(np.any((occupants != -1) & (occupants != op.oid))):
            raise ValueError(
                f"resource conflict placing {op!r} at {cycle}: "
                f"{self.conflicts(op, cycle)}"
            )
        doubled[rows] = op.oid
        doubled[rows + self.ii] = op.oid
        for row in rows.tolist():
            mirror[row] = op.oid
            mirror[row + self.ii] = op.oid

    def remove(self, op: Operation, cycle: int) -> None:
        """Release the reservations ``op`` made at ``cycle``."""
        if op.oid not in self.binding:
            return
        unit, busy, offsets = self._footprint(op)
        doubled = self._cells2[unit]
        mirror = self._list2[unit]
        if busy == 1:
            row = cycle % self.ii
            if mirror[row] == op.oid:
                doubled[row] = -1
                doubled[row + self.ii] = -1
                mirror[row] = -1
                mirror[row + self.ii] = -1
            return
        rows = (cycle + offsets) % self.ii
        mine = rows[doubled[rows] == op.oid]
        doubled[mine] = -1
        doubled[mine + self.ii] = -1
        for row in mine.tolist():
            mirror[row] = -1
            mirror[row + self.ii] = -1

    def occupancy(self) -> int:
        """Total number of reserved cells (for tests and stats)."""
        return int(sum((cells != -1).sum() for cells in self._cells.values()))

    def render(self) -> str:
        """ASCII dump of the table, one line per unit instance."""
        lines = []
        for (class_index, instance), cells in sorted(self._cells.items()):
            name = self.machine.unit_classes[class_index].name
            body = " ".join("." if cell == -1 else str(cell) for cell in cells.tolist())
            lines.append(f"{name}[{instance}]: {body}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ModuloResourceTable(ii={self.ii}, occupied={self.occupancy()})"
