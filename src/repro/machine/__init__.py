"""Cydra-5-like VLIW machine model: units, reservations, register files."""

from repro.machine.machine import Machine, UnitInstance, cydra5
from repro.machine.mrt import ModuloResourceTable
from repro.machine.registers import RotatingFile, StaticFile
from repro.machine.units import UnitClass, table1_units

__all__ = [
    "Machine",
    "UnitInstance",
    "cydra5",
    "ModuloResourceTable",
    "RotatingFile",
    "StaticFile",
    "UnitClass",
    "table1_units",
]
