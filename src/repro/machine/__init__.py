"""VLIW machine models: units, reservations, register files, registry.

The default target is the paper's Cydra-5-like VLIW (:func:`cydra5`);
:mod:`repro.machine.registry` generalizes it into a declarative zoo of
named, parameterized machine descriptions shared by the CLI, the batch
service, the wire protocol and the bench harness.
"""

from repro.machine.machine import Machine, UnitInstance, cydra5
from repro.machine.mrt import ModuloResourceTable
from repro.machine.registers import RotatingFile, StaticFile
from repro.machine.registry import (
    MachineError,
    MachineFamily,
    MachineParam,
    MachineParamError,
    MachineSpec,
    UnitSpec,
    UnknownMachineError,
    build_machine,
    default_machines,
    default_specs,
    get_family,
    machine_from_cli,
    machine_names,
    machine_spec,
    parse_machine_arg,
    register_family,
)
from repro.machine.units import UnitClass, table1_units

__all__ = [
    "Machine",
    "MachineError",
    "MachineFamily",
    "MachineParam",
    "MachineParamError",
    "MachineSpec",
    "UnitInstance",
    "UnitSpec",
    "UnknownMachineError",
    "build_machine",
    "cydra5",
    "default_machines",
    "default_specs",
    "get_family",
    "machine_from_cli",
    "machine_names",
    "machine_spec",
    "parse_machine_arg",
    "register_family",
    "ModuloResourceTable",
    "RotatingFile",
    "StaticFile",
    "UnitClass",
    "table1_units",
]
