"""Register files: rotating (RR, ICR) and static (GPR).

A rotating register file is a circular queue addressed relative to the
iteration control pointer (ICP): specifier ``s`` names physical register
``(ICP + s) mod size``.  ``brtop`` decrements the ICP every II cycles,
so a value written to specifier ``s`` in one iteration is read as
``s + 1`` one iteration later — the concatenated-shifters picture of the
paper's Figure 2.
"""

from __future__ import annotations

from typing import List, Optional


class RotatingFile:
    """A rotating register file with an iteration control pointer."""

    def __init__(self, name: str, size: int):
        if size < 1:
            raise ValueError("rotating file needs at least one register")
        self.name = name
        self.size = size
        self.icp = 0
        self._cells: List[Optional[float]] = [None] * size

    def _physical(self, specifier: int) -> int:
        return (self.icp + specifier) % self.size

    def read(self, specifier: int) -> Optional[float]:
        """Read the register named ``ICP + specifier``."""
        return self._cells[self._physical(specifier)]

    def write(self, specifier: int, value: float) -> None:
        """Write the register named ``ICP + specifier``."""
        self._cells[self._physical(specifier)] = value

    def read_physical(self, index: int) -> Optional[float]:
        return self._cells[index % self.size]

    def write_physical(self, index: int, value: float) -> None:
        self._cells[index % self.size] = value

    def rotate(self) -> None:
        """Decrement the ICP (performed by ``brtop`` once per II)."""
        self.icp = (self.icp - 1) % self.size

    def reset(self) -> None:
        self.icp = 0
        self._cells = [None] * self.size

    def __repr__(self) -> str:
        return f"RotatingFile({self.name!r}, size={self.size}, icp={self.icp})"


class StaticFile:
    """A conventional register file (the GPR file for loop invariants)."""

    def __init__(self, name: str, size: int):
        if size < 1:
            raise ValueError("register file needs at least one register")
        self.name = name
        self.size = size
        self._cells: List[Optional[float]] = [None] * size

    def read(self, index: int) -> Optional[float]:
        return self._cells[index]

    def write(self, index: int, value: float) -> None:
        self._cells[index] = value

    def reset(self) -> None:
        self._cells = [None] * self.size

    def __repr__(self) -> str:
        return f"StaticFile({self.name!r}, size={self.size})"
