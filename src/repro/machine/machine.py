"""Machine description: unit lookup, latencies, and unit binding.

The paper's compiler "assigns operations to functional units before
scheduling commences, thereby restricting an operation to one issue slot
per cycle" (§4.3).  :meth:`Machine.bind_units` reproduces that prepass:
each real operation is bound to one unit *instance* (a
``(unit_class_index, instance_index)`` pair) with simple load balancing
inside the class.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.loop import LoopBody
from repro.ir.operations import Opcode, Operation
from repro.machine.units import UnitClass, table1_units

#: A bound unit instance: (index of the unit class, instance within it).
UnitInstance = Tuple[int, int]


class Machine:
    """A VLIW machine built from a tuple of :class:`UnitClass` es.

    ``spec`` is the declarative :class:`repro.machine.registry
    .MachineSpec` the machine was materialized from, when it came
    through the registry; cache keying prefers it (the spec payload is
    the canonical description) but hand-built machines without one keep
    working everywhere.
    """

    def __init__(
        self, name: str, unit_classes: Sequence[UnitClass], spec=None
    ):
        self.name = name
        self.spec = spec
        self.unit_classes: Tuple[UnitClass, ...] = tuple(unit_classes)
        self._class_of_opcode: Dict[Opcode, int] = {}
        self._latency_of_opcode: Dict[Opcode, int] = {}
        self._busy_of_opcode: Dict[Opcode, int] = {}
        for index, unit_class in enumerate(self.unit_classes):
            for opcode in unit_class.opcodes():
                if opcode in self._class_of_opcode:
                    raise ValueError(f"{opcode} claimed by two unit classes")
                self._class_of_opcode[opcode] = index
                self._latency_of_opcode[opcode] = unit_class.latency(opcode)
                self._busy_of_opcode[opcode] = unit_class.busy_cycles(opcode)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def unit_class_index(self, opcode: Opcode) -> Optional[int]:
        """Unit class executing ``opcode``; None for pseudo ops."""
        if opcode in (Opcode.START, Opcode.STOP):
            return None
        try:
            return self._class_of_opcode[opcode]
        except KeyError:
            raise KeyError(f"{self.name} has no unit for {opcode}") from None

    def unit_class(self, opcode: Opcode) -> Optional[UnitClass]:
        index = self.unit_class_index(opcode)
        return None if index is None else self.unit_classes[index]

    def latency(self, op: Operation) -> int:
        """Latency of ``op``; pseudo ops take 0 cycles."""
        # Flat per-opcode table: the UnitClass scan is a linear search
        # and this sits on the scheduler's placement hot path.
        latency = self._latency_of_opcode.get(op.opcode)
        if latency is None:
            if op.opcode in (Opcode.START, Opcode.STOP):
                return 0
            self.unit_class(op.opcode)  # raises the canonical KeyError
            return 0
        return latency

    def busy_cycles(self, op: Operation) -> int:
        """Cycles ``op`` occupies its unit instance (1 if pipelined)."""
        busy = self._busy_of_opcode.get(op.opcode)
        if busy is None:
            if op.opcode in (Opcode.START, Opcode.STOP):
                return 0
            self.unit_class(op.opcode)  # raises the canonical KeyError
            return 0
        return busy

    def total_instances(self) -> int:
        return sum(unit_class.count for unit_class in self.unit_classes)

    # ------------------------------------------------------------------
    # Unit binding (prepass)
    # ------------------------------------------------------------------
    def bind_units(self, loop: LoopBody) -> Dict[int, UnitInstance]:
        """Bind every real op to a unit instance, balancing busy cycles.

        Returns a map ``oid -> (unit_class_index, instance_index)``.
        Within each class, ops are assigned to the currently
        least-loaded instance (ties to the lowest index), which
        reproduces a sensible prepass binding and keeps ResMII
        achievable whenever the class's aggregate capacity allows it.
        """
        binding: Dict[int, UnitInstance] = {}
        loads: Dict[int, List[int]] = {
            index: [0] * unit_class.count
            for index, unit_class in enumerate(self.unit_classes)
        }
        for op in loop.ops:
            class_index = self.unit_class_index(op.opcode)
            if class_index is None:
                continue
            instance_loads = loads[class_index]
            instance = min(range(len(instance_loads)), key=instance_loads.__getitem__)
            instance_loads[instance] += self.busy_cycles(op)
            binding[op.oid] = (class_index, instance)
        return binding


def cydra5(load_latency: int = 13) -> Machine:
    """The paper's hypothetical Cydra-5-like VLIW target (Table 1).

    Resolved through the machine registry (`repro.machine.registry`),
    which materializes the identical name and unit classes the old
    hardwired constructor produced — cache keys are unchanged.
    """
    from repro.machine.registry import build_machine

    return build_machine("cydra5", load_latency=load_latency)
