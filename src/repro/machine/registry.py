"""Declarative machine descriptions and the named-target registry.

The paper evaluates against one hypothetical Cydra-5-like VLIW
(Table 1).  This module generalizes that single hardwired constructor
into a *machine zoo*: every target is a :class:`MachineFamily` — a name,
a set of integer parameters with defaults and ranges, and a declarative
unit-class builder — registered under a stable name.  Resolving a
family with concrete parameters yields a :class:`MachineSpec`, a frozen,
canonical-JSON-round-trippable description that builds the runtime
:class:`~repro.machine.machine.Machine`.

Three invariants matter:

- **Digest stability.**  ``MachineSpec.canonical()`` is byte-for-byte
  the payload :func:`repro.service.keys.canonical_machine` has always
  produced, so cache keys and ``machine_digest`` values for the
  ``cydra5`` default are identical to the pre-registry era and a spec
  that round-trips through JSON keeps its digest.
- **One namespace.**  The CLI (``--machine NAME[:k=v,...]``), the wire
  protocol (``{"machine": {"name": ..., param: ...}}``) and the bench
  zoo all resolve through :func:`get_family`, so registering a family
  here makes it immediately schedulable, servable and benchable.
- **Strict parameters.**  Unknown names and out-of-range parameters
  raise typed errors (:class:`UnknownMachineError`,
  :class:`MachineParamError`) whose messages list what *is* known, so
  every layer can surface them verbatim.

Registered targets:

``cydra5``
    The paper's Table 1 machine, parameterized by load latency.
``vliw-wide``
    An ``issue``-times wider clone of cydra5 (every unit class
    duplicated), probing schedules when resources stop binding.
``clustered``
    A clustered-register-file variant: integer and float ALU work live
    on separate clusters and cross-cluster results pay ``xfer_latency``
    extra cycles, in the style of multicluster VLIWs.
``simd``
    A SIMD-pipeline target after Arslan et al.: ``lanes`` deeply
    pipelined vector units whose latencies scale with pipeline
    ``depth``.
``gpu``
    An occupancy-constrained GPU-like target after Chen: ``occupancy``
    scales how many operations the SM-style core can keep in flight per
    cycle, against a long default memory latency.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from repro.ir.operations import Opcode
from repro.machine.machine import Machine
from repro.machine.units import UnitClass, table1_units

#: Bump when the *serialized* spec structure changes incompatibly.
#: (The digest payload is versioned separately by
#: repro.service.keys.KEY_SCHEMA_VERSION; this guards to_json round
#: trips shipped between processes.)
SPEC_VERSION = 1


class MachineError(ValueError):
    """Any machine-registry failure a caller may want to surface."""


class UnknownMachineError(MachineError):
    """A machine name no registered family answers to."""


class MachineParamError(MachineError):
    """A parameter a family rejects (unknown, wrong type, out of range)."""


# ----------------------------------------------------------------------
# MachineSpec: the declarative, serializable description
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class UnitSpec:
    """One unit class, reduced to plain JSON-safe data."""

    name: str
    count: int
    pipelined: bool
    ops: Tuple[Tuple[str, int], ...]  # (opcode value, latency)

    @classmethod
    def from_unit_class(cls, unit_class: UnitClass) -> "UnitSpec":
        return cls(
            name=unit_class.name,
            count=int(unit_class.count),
            pipelined=bool(unit_class.pipelined),
            ops=tuple(
                (opcode.value, int(latency))
                for opcode, latency in unit_class.op_latencies
            ),
        )

    def to_unit_class(self) -> UnitClass:
        try:
            op_latencies = tuple(
                (Opcode(value), int(latency)) for value, latency in self.ops
            )
        except ValueError as error:
            raise MachineError(f"unit {self.name!r}: {error}") from error
        return UnitClass(
            name=self.name,
            count=self.count,
            pipelined=self.pipelined,
            op_latencies=op_latencies,
        )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "pipelined": self.pipelined,
            "ops": [[value, latency] for value, latency in self.ops],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "UnitSpec":
        try:
            return cls(
                name=str(payload["name"]),
                count=int(payload["count"]),
                pipelined=bool(payload["pipelined"]),
                ops=tuple(
                    (str(value), int(latency)) for value, latency in payload["ops"]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise MachineError(f"bad unit spec: {error}") from error


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """A fully resolved machine description.

    ``family`` and ``params`` record how the spec was derived (so it can
    be re-requested over the wire); ``name`` and ``units`` are the
    materialized description the scheduler — and the cache key — see.
    """

    family: str
    name: str
    params: Tuple[Tuple[str, int], ...]  # sorted (name, value) pairs
    units: Tuple[UnitSpec, ...]

    def param_dict(self) -> Dict[str, int]:
        return dict(self.params)

    def canonical(self) -> dict:
        """The digest payload — exactly what
        :func:`repro.service.keys.canonical_machine` has always produced
        for a structurally identical machine, so registry machines key
        byte-identically to hand-built ones."""
        return {
            "name": self.name,
            "units": [
                {
                    "name": unit.name,
                    "count": unit.count,
                    "pipelined": unit.pipelined,
                    "ops": sorted(
                        [value, int(latency)] for value, latency in unit.ops
                    ),
                }
                for unit in self.units
            ],
        }

    def digest(self) -> str:
        """Stable SHA-256 of the digest payload (= keys.machine_digest)."""
        from repro.canonical import canonical_digest

        return canonical_digest(self.canonical())

    def to_json(self) -> dict:
        """Full serialization: derivation + materialized units."""
        return {
            "spec_version": SPEC_VERSION,
            "family": self.family,
            "name": self.name,
            "params": {name: value for name, value in self.params},
            "units": [unit.to_json() for unit in self.units],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "MachineSpec":
        if not isinstance(payload, dict):
            raise MachineError("machine spec must be a JSON object")
        version = payload.get("spec_version")
        if version != SPEC_VERSION:
            raise MachineError(
                f"unsupported machine spec_version {version!r} "
                f"(supported: {SPEC_VERSION})"
            )
        try:
            params = payload.get("params", {})
            return cls(
                family=str(payload["family"]),
                name=str(payload["name"]),
                params=tuple(sorted((str(k), int(v)) for k, v in params.items())),
                units=tuple(UnitSpec.from_json(u) for u in payload["units"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise MachineError(f"bad machine spec: {error}") from error

    def wire(self) -> dict:
        """The ``{"machine": ...}`` object that re-requests this spec
        over the wire protocol (name + explicit parameters)."""
        return {"name": self.family, **{k: v for k, v in self.params}}

    def build(self) -> Machine:
        """Materialize the runtime Machine (spec attached for keying)."""
        units = tuple(unit.to_unit_class() for unit in self.units)
        return Machine(self.name, units, spec=self)


# ----------------------------------------------------------------------
# Families: parameters + declarative builders
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class MachineParam:
    """One integer knob of a family, with its default and legal range."""

    name: str
    default: int
    minimum: int
    maximum: int

    def validate(self, value: object) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise MachineParamError(f"{self.name} must be an integer")
        if not self.minimum <= value <= self.maximum:
            raise MachineParamError(
                f"{self.name} must be in {self.minimum}..{self.maximum}"
            )
        return value


@dataclasses.dataclass(frozen=True)
class MachineFamily:
    """A named, parameterized machine description in the registry."""

    name: str
    description: str
    params: Tuple[MachineParam, ...]
    units_builder: Callable[..., Tuple[UnitClass, ...]]
    name_builder: Callable[..., str]

    def param_names(self) -> Tuple[str, ...]:
        return tuple(param.name for param in self.params)

    def resolve_params(self, overrides: Dict[str, object]) -> Dict[str, int]:
        """Fill defaults, reject unknowns, range-check everything."""
        known = {param.name: param for param in self.params}
        unknown = sorted(set(overrides) - set(known))
        if unknown:
            raise MachineParamError(
                f"unknown parameter(s) {', '.join(unknown)} for machine "
                f"{self.name!r}; known: {', '.join(known) or '(none)'}"
            )
        resolved: Dict[str, int] = {}
        for param in self.params:
            value = overrides.get(param.name, param.default)
            resolved[param.name] = param.validate(value)
        return resolved

    def spec(self, **overrides) -> MachineSpec:
        params = self.resolve_params(overrides)
        units = tuple(
            UnitSpec.from_unit_class(unit_class)
            for unit_class in self.units_builder(**params)
        )
        return MachineSpec(
            family=self.name,
            name=self.name_builder(**params),
            params=tuple(sorted(params.items())),
            units=units,
        )

    def build(self, **overrides) -> Machine:
        return self.spec(**overrides).build()


# ----------------------------------------------------------------------
# Registered target definitions
# ----------------------------------------------------------------------
_INT_ALU_OPS = (
    Opcode.ADD_I,
    Opcode.SUB_I,
    Opcode.AND_B,
    Opcode.OR_B,
    Opcode.XOR_B,
    Opcode.NOT_B,
    Opcode.SELECT,
    Opcode.CMP_LT,
    Opcode.CMP_LE,
    Opcode.CMP_GT,
    Opcode.CMP_GE,
    Opcode.CMP_EQ,
    Opcode.CMP_NE,
)

_FLOAT_ALU_OPS = (
    Opcode.ADD_F,
    Opcode.SUB_F,
    Opcode.ABS_F,
    Opcode.NEG_F,
    Opcode.MIN_F,
    Opcode.MAX_F,
)

_ADD_CLASS_OPS = _INT_ALU_OPS + _FLOAT_ALU_OPS


def _lat(opcodes, latency: int) -> Tuple[Tuple[Opcode, int], ...]:
    return tuple((opcode, latency) for opcode in opcodes)


def _vliw_wide_units(load_latency: int, issue: int) -> Tuple[UnitClass, ...]:
    """cydra5 with every unit class ``issue`` times as many instances."""
    return tuple(
        dataclasses.replace(unit_class, count=unit_class.count * issue)
        for unit_class in table1_units(load_latency)
    )


def _clustered_units(load_latency: int, xfer_latency: int) -> Tuple[UnitClass, ...]:
    """Two clusters with partitioned register files.

    Integer/logical/predicate work lives on cluster 0, float work on
    cluster 1; a float consumer of a cluster-0 producer (and vice
    versa) pays ``xfer_latency`` extra cycles, modeled by folding the
    transfer into the cluster-1 latencies.
    """
    x = xfer_latency
    return (
        UnitClass(
            name="Memory Port",
            count=2,
            pipelined=True,
            op_latencies=((Opcode.LOAD, load_latency), (Opcode.STORE, 1)),
        ),
        UnitClass(
            name="Address ALU",
            count=2,
            pipelined=True,
            op_latencies=(
                (Opcode.ADDR_ADD, 1),
                (Opcode.ADDR_SUB, 1),
                (Opcode.ADDR_MUL, 1),
            ),
        ),
        UnitClass(
            name="Cluster-0 Integer ALU",
            count=1,
            pipelined=True,
            op_latencies=_lat(_INT_ALU_OPS, 1),
        ),
        UnitClass(
            name="Cluster-1 Float ALU",
            count=1,
            pipelined=True,
            op_latencies=_lat(_FLOAT_ALU_OPS, 1 + x),
        ),
        UnitClass(
            name="Cluster-1 Multiplier",
            count=1,
            pipelined=True,
            op_latencies=((Opcode.MUL_I, 2 + x), (Opcode.MUL_F, 2 + x)),
        ),
        UnitClass(
            name="Cluster-1 Divider",
            count=1,
            pipelined=False,
            op_latencies=(
                (Opcode.DIV_I, 17 + x),
                (Opcode.DIV_F, 17 + x),
                (Opcode.MOD_I, 17 + x),
                (Opcode.SQRT_F, 21 + x),
            ),
        ),
        UnitClass(
            name="Branch Unit",
            count=1,
            pipelined=True,
            op_latencies=((Opcode.BRTOP, 2),),
        ),
    )


def _simd_units(depth: int, lanes: int, load_latency: int) -> Tuple[UnitClass, ...]:
    """Deeply pipelined SIMD lanes (Arslan et al.-style pipelines).

    ``depth`` scales every arithmetic latency (the pipeline is deeper
    but stays fully pipelined, so ResMII is untouched while RecMII and
    lifetimes stretch); ``lanes`` scales vector-unit counts.
    """
    d = depth
    return (
        UnitClass(
            name="Vector Memory Port",
            count=1,
            pipelined=True,
            op_latencies=((Opcode.LOAD, load_latency), (Opcode.STORE, d)),
        ),
        UnitClass(
            name="Address ALU",
            count=2,
            pipelined=True,
            op_latencies=(
                (Opcode.ADDR_ADD, 1),
                (Opcode.ADDR_SUB, 1),
                (Opcode.ADDR_MUL, 1),
            ),
        ),
        UnitClass(
            name="Vector ALU",
            count=lanes,
            pipelined=True,
            op_latencies=_lat(_ADD_CLASS_OPS, d),
        ),
        UnitClass(
            name="Vector Multiplier",
            count=lanes,
            pipelined=True,
            op_latencies=((Opcode.MUL_I, 2 * d), (Opcode.MUL_F, 2 * d)),
        ),
        UnitClass(
            name="Vector Divider",
            count=1,
            pipelined=False,
            op_latencies=(
                (Opcode.DIV_I, 8 * d),
                (Opcode.DIV_F, 8 * d),
                (Opcode.MOD_I, 8 * d),
                (Opcode.SQRT_F, 10 * d),
            ),
        ),
        UnitClass(
            name="Branch Unit",
            count=1,
            pipelined=True,
            op_latencies=((Opcode.BRTOP, 2),),
        ),
    )


def _gpu_units(occupancy: int, load_latency: int) -> Tuple[UnitClass, ...]:
    """Occupancy-constrained GPU-like SM (Chen-style).

    ``occupancy`` models how many warps the core keeps resident: it
    scales the operations the SM can issue per cycle (unit counts), so
    low occupancy makes the long memory latency visible to the
    scheduler as resource pressure instead of hidden parallelism.
    """
    return (
        UnitClass(
            name="Load/Store Unit",
            count=max(1, occupancy // 2),
            pipelined=True,
            op_latencies=((Opcode.LOAD, load_latency), (Opcode.STORE, 2)),
        ),
        UnitClass(
            name="Address ALU",
            count=max(1, occupancy // 2),
            pipelined=True,
            op_latencies=(
                (Opcode.ADDR_ADD, 1),
                (Opcode.ADDR_SUB, 1),
                (Opcode.ADDR_MUL, 1),
            ),
        ),
        UnitClass(
            name="CUDA Core",
            count=occupancy,
            pipelined=True,
            op_latencies=_lat(_ADD_CLASS_OPS, 4),
        ),
        UnitClass(
            name="FMA Unit",
            count=max(1, occupancy // 2),
            pipelined=True,
            op_latencies=((Opcode.MUL_I, 4), (Opcode.MUL_F, 4)),
        ),
        UnitClass(
            name="SFU",
            count=1,
            pipelined=False,
            op_latencies=(
                (Opcode.DIV_I, 32),
                (Opcode.DIV_F, 32),
                (Opcode.MOD_I, 32),
                (Opcode.SQRT_F, 32),
            ),
        ),
        UnitClass(
            name="Branch Unit",
            count=1,
            pipelined=True,
            op_latencies=((Opcode.BRTOP, 2),),
        ),
    )


_LOAD_LATENCY = MachineParam("load_latency", default=13, minimum=1, maximum=1024)

_FAMILIES: "Dict[str, MachineFamily]" = {}


def register_family(family: MachineFamily) -> MachineFamily:
    if family.name in _FAMILIES:
        raise ValueError(f"machine family {family.name!r} already registered")
    _FAMILIES[family.name] = family
    return family


register_family(
    MachineFamily(
        name="cydra5",
        description="the paper's Cydra-5-like VLIW (Table 1)",
        params=(_LOAD_LATENCY,),
        units_builder=lambda load_latency: table1_units(load_latency),
        name_builder=lambda load_latency: f"cydra5-load{load_latency}",
    )
)

register_family(
    MachineFamily(
        name="vliw-wide",
        description="an issue-times wider cydra5 clone (2x by default)",
        params=(
            _LOAD_LATENCY,
            MachineParam("issue", default=2, minimum=1, maximum=8),
        ),
        units_builder=_vliw_wide_units,
        name_builder=lambda load_latency, issue: (
            f"vliw-wide-x{issue}-load{load_latency}"
        ),
    )
)

register_family(
    MachineFamily(
        name="clustered",
        description="two-cluster VLIW; cross-cluster results pay "
        "xfer_latency extra cycles",
        params=(
            _LOAD_LATENCY,
            MachineParam("xfer_latency", default=1, minimum=0, maximum=64),
        ),
        units_builder=_clustered_units,
        name_builder=lambda load_latency, xfer_latency: (
            f"clustered-x{xfer_latency}-load{load_latency}"
        ),
    )
)

register_family(
    MachineFamily(
        name="simd",
        description="deeply pipelined SIMD lanes (Arslan et al.); depth "
        "scales latencies, lanes scales vector-unit counts",
        params=(
            MachineParam("depth", default=2, minimum=1, maximum=8),
            MachineParam("lanes", default=2, minimum=1, maximum=16),
            MachineParam("load_latency", default=12, minimum=1, maximum=1024),
        ),
        units_builder=_simd_units,
        name_builder=lambda depth, lanes, load_latency: (
            f"simd-d{depth}-l{lanes}-load{load_latency}"
        ),
    )
)

register_family(
    MachineFamily(
        name="gpu",
        description="occupancy-constrained GPU-like SM (Chen); occupancy "
        "scales issue width against a long memory latency",
        params=(
            MachineParam("occupancy", default=4, minimum=1, maximum=32),
            MachineParam("load_latency", default=64, minimum=1, maximum=1024),
        ),
        units_builder=_gpu_units,
        name_builder=lambda occupancy, load_latency: (
            f"gpu-o{occupancy}-load{load_latency}"
        ),
    )
)


# ----------------------------------------------------------------------
# Lookup + resolution surface
# ----------------------------------------------------------------------
def machine_names() -> Tuple[str, ...]:
    """Every registered family name, in registration order."""
    return tuple(_FAMILIES)


def families() -> Tuple[MachineFamily, ...]:
    """Every registered family, in registration order."""
    return tuple(_FAMILIES.values())


def get_family(name: str) -> MachineFamily:
    try:
        return _FAMILIES[name]
    except KeyError:
        raise UnknownMachineError(
            f"unknown machine {name!r}; known: {', '.join(_FAMILIES)}"
        ) from None


def machine_spec(name: str, **params) -> MachineSpec:
    return get_family(name).spec(**params)


def build_machine(name: str, **params) -> Machine:
    return get_family(name).build(**params)


def default_specs() -> List[MachineSpec]:
    """One default-parameter spec per registered family."""
    return [family.spec() for family in _FAMILIES.values()]


def default_machines() -> List[Machine]:
    """One default-parameter Machine per registered family."""
    return [spec.build() for spec in default_specs()]


def parse_machine_arg(text: str) -> Tuple[str, Dict[str, int]]:
    """Split a CLI ``NAME[:k=v,...]`` argument into name + overrides.

    The name is validated against the registry (so the error message
    lists what exists); parameter *names* are validated later by
    :meth:`MachineFamily.resolve_params` so unknown-parameter errors
    name the family's actual knobs.
    """
    name, _, param_text = text.partition(":")
    name = name.strip()
    get_family(name)  # raises UnknownMachineError with the known list
    overrides: Dict[str, int] = {}
    if param_text:
        for item in param_text.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise MachineParamError(
                    f"bad machine parameter {item!r} (expected k=v) in {text!r}"
                )
            try:
                overrides[key] = int(value.strip())
            except ValueError:
                raise MachineParamError(
                    f"machine parameter {key} must be an integer, got "
                    f"{value.strip()!r}"
                ) from None
    return name, overrides


def machine_from_cli(
    text: str, load_latency: "int | None" = None
) -> Machine:
    """Resolve a CLI ``--machine`` argument, folding in ``--load-latency``.

    An explicit ``--load-latency`` applies when the family has that knob
    and the spec text did not already set it, so
    ``--machine cydra5 --load-latency 7`` keeps meaning what the
    pre-registry flag meant.
    """
    name, overrides = parse_machine_arg(text)
    family = get_family(name)
    if (
        load_latency is not None
        and "load_latency" in family.param_names()
        and "load_latency" not in overrides
    ):
        overrides["load_latency"] = load_latency
    return family.build(**overrides)
