"""Functional-unit classes and the paper's Table 1 latencies.

All units are fully pipelined except the divider, which is not pipelined
at all: a divider operation reserves its unit for its entire latency.
The compiler honors latencies statically (no interlocks except the
memory-latency freeze, which we do not need because the simulated memory
always hits within the scheduled latency).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.ir.operations import Opcode


@dataclasses.dataclass(frozen=True)
class UnitClass:
    """A class of identical functional units.

    Attributes:
        name: Display name ("Memory Port", "Adder", ...).
        count: Number of identical unit instances.
        pipelined: If False, an operation reserves its unit instance for
            ``latency`` consecutive cycles instead of just its issue
            cycle.
        op_latencies: Opcode -> latency for every opcode this class
            executes.
    """

    name: str
    count: int
    pipelined: bool
    op_latencies: Tuple[Tuple[Opcode, int], ...]

    def latency(self, opcode: Opcode) -> int:
        for candidate, latency in self.op_latencies:
            if candidate is opcode:
                return latency
        raise KeyError(f"{self.name} does not execute {opcode}")

    def opcodes(self) -> Tuple[Opcode, ...]:
        return tuple(opcode for opcode, _ in self.op_latencies)

    def busy_cycles(self, opcode: Opcode) -> int:
        """Cycles an op of this class occupies one unit instance."""
        return 1 if self.pipelined else self.latency(opcode)

    def __repr__(self) -> str:
        return f"UnitClass({self.name!r}, count={self.count})"


def table1_units(load_latency: int = 13) -> Tuple[UnitClass, ...]:
    """The functional units of the paper's Table 1.

    ``load_latency`` models the memory latency register (§2.1): the
    compiler chooses the load latency it schedules for; 13 is the
    paper's bypass-L1-hit-L2 figure.
    """
    return (
        UnitClass(
            name="Memory Port",
            count=2,
            pipelined=True,
            op_latencies=(
                (Opcode.LOAD, load_latency),
                (Opcode.STORE, 1),
            ),
        ),
        UnitClass(
            name="Address ALU",
            count=2,
            pipelined=True,
            op_latencies=(
                (Opcode.ADDR_ADD, 1),
                (Opcode.ADDR_SUB, 1),
                (Opcode.ADDR_MUL, 1),
            ),
        ),
        UnitClass(
            name="Adder",
            count=1,
            pipelined=True,
            op_latencies=(
                (Opcode.ADD_I, 1),
                (Opcode.SUB_I, 1),
                (Opcode.AND_B, 1),
                (Opcode.OR_B, 1),
                (Opcode.XOR_B, 1),
                (Opcode.NOT_B, 1),
                (Opcode.ADD_F, 1),
                (Opcode.SUB_F, 1),
                (Opcode.ABS_F, 1),
                (Opcode.NEG_F, 1),
                (Opcode.MIN_F, 1),
                (Opcode.MAX_F, 1),
                (Opcode.SELECT, 1),
                (Opcode.CMP_LT, 1),
                (Opcode.CMP_LE, 1),
                (Opcode.CMP_GT, 1),
                (Opcode.CMP_GE, 1),
                (Opcode.CMP_EQ, 1),
                (Opcode.CMP_NE, 1),
            ),
        ),
        UnitClass(
            name="Multiplier",
            count=1,
            pipelined=True,
            op_latencies=(
                (Opcode.MUL_I, 2),
                (Opcode.MUL_F, 2),
            ),
        ),
        UnitClass(
            name="Divider",
            count=1,
            pipelined=False,
            op_latencies=(
                (Opcode.DIV_I, 17),
                (Opcode.DIV_F, 17),
                (Opcode.MOD_I, 17),
                (Opcode.SQRT_F, 21),
            ),
        ),
        UnitClass(
            name="Branch Unit",
            count=1,
            pipelined=True,
            op_latencies=((Opcode.BRTOP, 2),),
        ),
    )
