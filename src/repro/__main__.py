"""Module entry point: ``python -m repro``."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pager/head closed the pipe; die quietly like cat does.
    sys.stderr.close()
    sys.exit(141)
