"""Batch front end: corpus/file scheduling with cache + worker pool.

API::

    from repro.service import run_batch
    report = run_batch(programs, jobs=4, cache_dir=".repro-cache")
    report.loop_metrics          # ordered exactly like the serial path

CLI::

    python -m repro batch --corpus 60 --jobs 4
    python -m repro batch examples/loops --jobs 2 --timeout 30
    python -m repro batch a.loop b.loop --cache-dir .repro-cache --out m.json

The cache is consulted before the pool: hits come back as ``cached``
results without touching a worker, misses are scheduled and written
back.  Because the scheduler is deterministic and the cache key covers
every input (see :mod:`repro.service.keys`), a warm rerun returns
byte-identical metrics — including the original run's timing fields —
at cache-read speed.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.cache import CacheStats, ResultCache
from repro.service.jobs import (
    JOB_CACHED,
    JOB_OK,
    JobResult,
    ScheduleJob,
    make_jobs,
    order_results,
)
from repro.service.keys import cache_key
from repro.service.pool import PoolStats, run_jobs

#: Default on-disk cache location for the CLI (API default is no cache).
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclasses.dataclass
class BatchReport:
    """Everything one batch run produced."""

    results: List[JobResult]  # in submission order
    pool: PoolStats
    cache: Optional[CacheStats]  # None when caching was disabled
    wall_seconds: float

    @property
    def loop_metrics(self) -> list:
        """Ordered LoopMetrics of every job that produced one."""
        return [r.metrics for r in self.results if r.metrics is not None]

    @property
    def ok(self) -> bool:
        """True when every job produced metrics (ok or cached)."""
        return all(result.ok for result in self.results)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for result in self.results:
            tally[result.status] = tally.get(result.status, 0) + 1
        return tally

    def summary(self) -> str:
        """The CLI's multi-line summary block."""
        counts = self.counts()
        parts = " ".join(
            f"{status}={counts[status]}"
            for status in ("ok", "cached", "failed", "timeout", "crashed")
            if counts.get(status)
        )
        n = len(self.results)
        unscheduled = sum(
            1
            for r in self.results
            if r.metrics is not None and not r.metrics.success
        )
        rate = n / self.wall_seconds if self.wall_seconds > 0 else 0.0
        lines = [
            f"batch: {n} loops  {parts or '(empty)'}"
            + (f"  [{unscheduled} failed to pipeline]" if unscheduled else "")
        ]
        if self.cache is not None:
            lines.append(
                f"cache: {self.cache.hits} hits, {self.cache.misses} misses, "
                f"{self.cache.corrupt} corrupt, {self.cache.writes} writes"
            )
        pool = self.pool
        mode = "serial" if pool.fallback_serial else f"{pool.workers} workers"
        lines.append(
            f"pool: {mode}  utilization={pool.utilization:.0%}  "
            f"retries={pool.retries}  rebuilds={pool.rebuilds}  "
            f"wall={self.wall_seconds:.2f}s ({rate:.1f} loops/s)"
        )
        for result in self.results:
            if not result.ok:
                lines.append(
                    f"  {result.status.upper()} {result.name}: {result.error}"
                )
        return "\n".join(lines)


def _record_metrics(registry, report: BatchReport) -> None:
    """Mirror a batch's outcome into a repro.obs MetricsRegistry."""
    if registry is None:
        return
    for status, count in report.counts().items():
        registry.counter(f"service.jobs.{status}").inc(count)
    if report.cache is not None:
        registry.counter("service.cache.hits").inc(report.cache.hits)
        registry.counter("service.cache.misses").inc(report.cache.misses)
        registry.counter("service.cache.corrupt").inc(report.cache.corrupt)
        registry.counter("service.cache.writes").inc(report.cache.writes)
    registry.counter("service.pool.retries").inc(report.pool.retries)
    registry.counter("service.pool.rebuilds").inc(report.pool.rebuilds)
    registry.gauge("service.pool.utilization").set(report.pool.utilization)
    registry.timer("service.batch.wall").add(report.wall_seconds)


def run_batch(
    programs: Sequence[object],
    machine=None,
    algorithm: str = "slack",
    options=None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    metrics=None,
    max_retries: int = 2,
    faults: Optional[Dict[int, str]] = None,
) -> BatchReport:
    """Schedule a batch of programs (DoLoop or LoopBody) as a service.

    Args:
        programs: What to schedule; results keep this order.
        jobs: Worker processes; 1 (the default) runs serially in-process.
        timeout: Per-job wall-clock budget in seconds (None = unlimited).
        cache_dir: Root of the content-addressed result cache; None
            disables caching entirely.
        use_cache: Set False to bypass reads *and* writes even when
            ``cache_dir`` is set.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; receives
            ``service.*`` counters/gauges/timers.
        max_retries: Crash-recovery resubmissions per job.
        faults: Optional ``{job index: fault}`` injection map (see
            :class:`repro.service.jobs.ScheduleJob`).
    """
    from repro.machine import cydra5

    machine = machine or cydra5()
    started = time.perf_counter()
    all_jobs = make_jobs(programs, algorithm=algorithm, options=options, faults=faults)

    cache: Optional[ResultCache] = None
    cached_results: List[JobResult] = []
    pending: List[ScheduleJob] = all_jobs
    if cache_dir is not None and use_cache:
        cache = ResultCache(cache_dir)
        pending = []
        for job in all_jobs:
            job.key = cache_key(job.program, machine, job.algorithm, job.options)
            hit = cache.get(job.key)
            if hit is not None and job.fault is None:
                cached_results.append(
                    JobResult(
                        index=job.index,
                        name=job.name,
                        status=JOB_CACHED,
                        metrics=hit,
                    )
                )
            else:
                pending.append(job)

    computed, pool_stats = run_jobs(
        pending,
        machine,
        workers=jobs,
        timeout=timeout,
        max_retries=max_retries,
    )
    if cache is not None:
        for result in computed:
            job = all_jobs[result.index]
            if result.status == JOB_OK and result.metrics is not None and job.key:
                cache.put(job.key, result.metrics)

    report = BatchReport(
        results=order_results(cached_results + list(computed)),
        pool=pool_stats,
        cache=cache.stats if cache is not None else None,
        wall_seconds=time.perf_counter() - started,
    )
    _record_metrics(metrics, report)
    return report


# ----------------------------------------------------------------------
# Source loading (files / directories / generated corpus)
# ----------------------------------------------------------------------
class BatchSourceError(Exception):
    """A source file could not be read or parsed (CLI exits 2)."""


def load_sources(paths: Sequence[str]) -> list:
    """Parse loop-language files (or directories of ``*.loop`` files).

    Raises :class:`BatchSourceError` with a one-line message naming the
    offending file on any read or parse problem.
    """
    from repro.frontend.parser import ParseError, parse_loop

    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            entries = sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if name.endswith(".loop")
            )
            if not entries:
                raise BatchSourceError(f"{path}: directory contains no .loop files")
            files.extend(entries)
        else:
            files.append(path)
    programs = []
    for path in files:
        try:
            with open(path) as handle:
                source = handle.read()
        except OSError as error:
            raise BatchSourceError(f"{path}: {error.strerror or error}") from error
        try:
            programs.append(parse_loop(source))
        except (ParseError, ValueError) as error:
            raise BatchSourceError(f"{path}: {error}") from error
    return programs


def _parse_faults(specs: Optional[Sequence[str]]) -> Optional[Dict[int, str]]:
    if not specs:
        return None
    faults: Dict[int, str] = {}
    for spec in specs:
        index, _, fault = spec.partition(":")
        faults[int(index)] = fault
    return faults


# ----------------------------------------------------------------------
# CLI (python -m repro batch ...)
# ----------------------------------------------------------------------
def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Schedule a corpus or loop files in parallel, with a "
        "content-addressed result cache.",
    )
    parser.add_argument(
        "sources",
        nargs="*",
        help="loop-language files or directories of *.loop files",
    )
    parser.add_argument(
        "--corpus",
        type=int,
        metavar="N",
        help="schedule the paper's generated N-loop corpus instead of files",
    )
    parser.add_argument(
        "--seed", type=int, default=1993, help="corpus seed (default 1993)"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default 1 = serial in-process)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-job wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"content-addressed result cache root (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache (no reads, no writes)",
    )
    parser.add_argument(
        "--algorithm",
        default="slack",
        help="scheduler algorithm (default slack)",
    )
    parser.add_argument(
        "--load-latency",
        type=int,
        default=13,
        help="memory latency register (default 13)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the per-loop LoopMetrics as a JSON array to PATH",
    )
    parser.add_argument(
        "--inject",
        action="append",
        metavar="INDEX:FAULT",
        help=argparse.SUPPRESS,  # fault injection: crash | raise | hang:N
    )
    return parser


def batch_main(argv: Optional[List[str]] = None) -> int:
    args = build_batch_parser().parse_args(argv)
    from repro.core import ALGORITHMS
    from repro.machine import cydra5

    if args.algorithm not in ALGORITHMS:
        print(
            f"error: unknown algorithm {args.algorithm!r}; "
            f"pick from {', '.join(sorted(ALGORITHMS))}",
            file=sys.stderr,
        )
        return 2
    if args.corpus is not None and args.sources:
        print("error: pass either --corpus N or source files, not both", file=sys.stderr)
        return 2
    if args.corpus is not None:
        if args.corpus < 1:
            print("error: --corpus must be positive", file=sys.stderr)
            return 2
        from repro.workloads import paper_corpus

        programs = paper_corpus(args.corpus, seed=args.seed)
    elif args.sources:
        try:
            programs = load_sources(args.sources)
        except BatchSourceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        print("error: provide source files or --corpus N", file=sys.stderr)
        return 2

    report = run_batch(
        programs,
        machine=cydra5(load_latency=args.load_latency),
        algorithm=args.algorithm,
        jobs=args.jobs,
        timeout=args.timeout,
        cache_dir=None if args.no_cache else args.cache_dir,
        faults=_parse_faults(args.inject),
    )
    print(report.summary())
    if args.out:
        from repro.experiments.export import write_json

        try:
            write_json(report.loop_metrics, args.out)
        except OSError as exc:
            print(f"error: cannot write metrics to {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"metrics: {len(report.loop_metrics)} records -> {args.out}")
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Bench scenario (BENCH_batch.json)
# ----------------------------------------------------------------------
def run_batch_bench(
    scenario,
    corpus_size: int = 60,
    repeats: int = 3,
    warmup: int = 1,
    profile: bool = True,
    memory: bool = False,
    machine=None,
    jobs: Optional[int] = None,
) -> dict:
    """Benchmark the service: parallel speedup + warm/cold cache time.

    Matches :func:`repro.obs.bench.run_scenario`'s signature so the
    bench CLI can drive it like any other scenario.  Wall-clock entries
    are ``kind="time"`` (reported, not gated by default); cache-hit
    counts and the schedule-quality aggregates are deterministic and
    gate ``--fail-on-regress``.
    """
    import shutil
    import tempfile

    from repro.machine import cydra5
    from repro.obs.bench import (
        BENCH_SCHEMA,
        corpus_aggregates,
        metric,
        sample_stats,
        wrap_payload,
    )
    from repro.workloads import paper_corpus

    machine = machine or cydra5()
    jobs = jobs or min(4, os.cpu_count() or 1)
    programs = paper_corpus(corpus_size)

    serial_samples: List[float] = []
    parallel_samples: List[float] = []
    loop_metrics = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        serial_report = run_batch(programs, machine, jobs=1, cache_dir=None)
        serial_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        report = run_batch(programs, machine, jobs=jobs, cache_dir=None)
        parallel_samples.append(time.perf_counter() - started)
        loop_metrics = report.loop_metrics

    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        started = time.perf_counter()
        cold = run_batch(programs, machine, jobs=jobs, cache_dir=cache_root)
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_batch(programs, machine, jobs=jobs, cache_dir=cache_root)
        warm_seconds = time.perf_counter() - started
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    serial_stats = sample_stats(serial_samples)
    parallel_stats = sample_stats(parallel_samples)
    serial_wall = serial_stats["median"]
    parallel_wall = parallel_stats["median"]
    metrics = {
        "serial_wall_s": metric(
            serial_wall, "s", direction="lower", kind="time",
            iqr=serial_stats["iqr"],
        ),
        "parallel_wall_s": metric(
            parallel_wall, "s", direction="lower", kind="time",
            iqr=parallel_stats["iqr"],
        ),
        "parallel_speedup": metric(
            serial_wall / parallel_wall if parallel_wall else 0.0,
            "x", direction="higher", kind="time",
        ),
        "cold_cache_wall_s": metric(
            cold_seconds, "s", direction="lower", kind="time"
        ),
        "warm_cache_wall_s": metric(
            warm_seconds, "s", direction="lower", kind="time"
        ),
        "warm_cache_speedup": metric(
            cold_seconds / warm_seconds if warm_seconds else 0.0,
            "x", direction="higher", kind="time",
        ),
        "warm_cache_hits": metric(
            warm.cache.hits if warm.cache else 0, "hits", direction="higher"
        ),
        "cold_cache_misses": metric(
            cold.cache.misses if cold.cache else 0, "misses", direction="lower"
        ),
        "pool_utilization": metric(
            cold.pool.utilization, "fraction", direction="higher", kind="time"
        ),
    }
    metrics.update(corpus_aggregates(loop_metrics))
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": scenario.name,
            "description": scenario.description,
            "algorithm": scenario.algorithm,
            "corpus_size": len(programs),
            "repeats": max(1, repeats),
            "warmup": warmup,
            "jobs": jobs,
            "wall_time_samples_s": parallel_samples,
            "serial_wall_time_samples_s": serial_samples,
            "metrics": metrics,
            "profile": None,
        },
    )
