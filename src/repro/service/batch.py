"""Batch front end: corpus/file scheduling with cache + worker backends.

API::

    from repro.service import run_batch
    report = run_batch(programs, jobs=4, cache_dir=".repro-cache")
    report.loop_metrics          # ordered exactly like the serial path

    # heterogeneous sweep: one batch, per-job machines, distinct keys
    report = run_batch(programs * 3, machines=machines, jobs=4,
                       cache_db="results.sqlite")

CLI::

    python -m repro batch --corpus 60 --jobs 4
    python -m repro batch examples/loops --jobs 2 --timeout 30
    python -m repro batch a.loop b.loop --cache-db ci.sqlite --out m.json
    python -m repro batch --corpus 60 --jobs 4 --trace batch.jsonl
    python -m repro batch --corpus 60 --sweep-load-latency 2,13,27
    python -m repro batch --corpus 30 --machine vliw-wide
    python -m repro batch --corpus 30 --sweep-machine cydra5 \\
        --sweep-machine vliw-wide --sweep-machine simd:depth=3
    python -m repro batch --gc --max-cache-bytes 500M --max-cache-age 7d

Execution strategy is pluggable (:mod:`repro.service.backends`): jobs=1
runs serially in-process, parallel batches default to the *chunked*
backend, which ships each distinct machine to every worker once (keyed
by digest, cached in the worker initializer) and dispatches jobs in
per-worker chunks, so per-job pickling stops dominating small corpora.

The cache is consulted before the pool: hits come back as ``cached``
results without touching a worker, misses are scheduled and written
back.  Because the scheduler is deterministic and the cache key covers
every input (see :mod:`repro.service.keys`), a warm rerun returns
byte-identical metrics — including the original run's timing fields —
at cache-read speed.  Two storage backends are available behind one
protocol: a fan-out directory (``--cache-dir``) and a single-file
sqlite database (``--cache-db``, WAL mode, shareable across CI runs).

Tracer/profiler hooks cross process boundaries via per-job JSONL spool
files merged in submission order (:mod:`repro.service.spool`), so
``--trace`` output is identical at any ``--jobs`` level, modulo
timestamps.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.progress import (
    KIND_SUBMITTED,
    CallbackProgress,
    JSONLProgress,
    ProgressSink,
    ProgressTracker,
    Straggler,
    StragglerWatchdog,
    TTYProgress,
    job_event,
    result_event,
)
from repro.service.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    resolve_backend,
)
from repro.service.cache import (
    CacheBackend,
    CacheStats,
    collect_garbage,
    open_cache,
)
from repro.service.jobs import (
    JOB_CACHED,
    JOB_OK,
    JobResult,
    ScheduleJob,
    make_jobs,
    order_results,
)
from repro.service.keys import cache_key
from repro.service.pool import DEFAULT_FLIGHT_CAPACITY, PoolStats
from repro.service.spool import (
    SpoolMergeStats,
    merge_spools,
    record_spool_stats,
    write_trace_records,
)

#: Default on-disk cache location for the CLI (API default is no cache).
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclasses.dataclass
class BatchReport:
    """Everything one batch run produced."""

    results: List[JobResult]  # in submission order
    pool: PoolStats
    cache: Optional[CacheStats]  # None when caching was disabled
    wall_seconds: float
    cache_location: Optional[str] = None  # backend.describe(), if caching
    spool: Optional[SpoolMergeStats] = None  # None unless observability on
    trace_records: Optional[List[dict]] = None  # merged events, loop-tagged
    stragglers: Optional[List[Straggler]] = None  # None unless progress on
    straggler_factor: Optional[float] = None

    @property
    def loop_metrics(self) -> list:
        """Ordered LoopMetrics of every job that produced one."""
        return [r.metrics for r in self.results if r.metrics is not None]

    @property
    def ok(self) -> bool:
        """True when every job produced metrics (ok or cached)."""
        return all(result.ok for result in self.results)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for result in self.results:
            tally[result.status] = tally.get(result.status, 0) + 1
        return tally

    def job_latencies(self) -> List[float]:
        """Worker-side wall times of every computed (non-cached) job."""
        return [
            result.seconds
            for result in self.results
            if result.status != JOB_CACHED and result.seconds > 0
        ]

    def latency_quantiles(self) -> Optional[Dict[str, float]]:
        """p50/p90/p99 over computed-job latencies (None when no jobs ran)."""
        from repro.obs.metrics import Histogram

        latencies = self.job_latencies()
        if not latencies:
            return None
        histogram = Histogram()
        for seconds in latencies:
            histogram.record(seconds)
        return histogram.quantiles()

    def summary_lines(self) -> "Tuple[List[str], List[str]]":
        """``(status_lines, diagnostic_lines)`` for the CLI wrap-up.

        Status lines (counts, cache, pool, latency) describe the run;
        diagnostic lines (spool degradation, stragglers, per-job
        errors) are warnings and always belong on stderr so stdout can
        carry machine-readable output (``--out -``).
        """
        counts = self.counts()
        parts = " ".join(
            f"{status}={counts[status]}"
            for status in ("ok", "cached", "failed", "timeout", "crashed")
            if counts.get(status)
        )
        n = len(self.results)
        unscheduled = sum(
            1
            for r in self.results
            if r.metrics is not None and not r.metrics.success
        )
        rate = n / self.wall_seconds if self.wall_seconds > 0 else 0.0
        lines = [
            f"batch: {n} loops  {parts or '(empty)'}"
            + (f"  [{unscheduled} failed to pipeline]" if unscheduled else "")
        ]
        if self.cache is not None:
            location = f" [{self.cache_location}]" if self.cache_location else ""
            lines.append(
                f"cache: {self.cache.hits} hits, {self.cache.misses} misses, "
                f"{self.cache.corrupt} corrupt, {self.cache.writes} writes"
                + location
            )
        pool = self.pool
        if pool.fallback_serial:
            mode = "serial"
        else:
            mode = f"{pool.backend or 'process'} x{pool.workers} workers"
            if pool.chunks:
                mode += f" ({pool.chunks} chunks)"
        lines.append(
            f"pool: {mode}  utilization={pool.utilization:.0%}  "
            f"retries={pool.retries}  rebuilds={pool.rebuilds}  "
            f"wall={self.wall_seconds:.2f}s ({rate:.1f} loops/s)"
        )
        quantiles = self.latency_quantiles()
        if quantiles is not None:
            lines.append(
                "latency: "
                + "  ".join(
                    f"{name}={seconds * 1e3:.1f}ms"
                    for name, seconds in quantiles.items()
                )
                + f"  over {len(self.job_latencies())} computed job(s)"
            )

        diagnostics: List[str] = []
        if self.spool is not None and self.spool.degraded:
            diagnostics.append(
                f"spool: DEGRADED  {self.spool.missing} missing, "
                f"{self.spool.corrupt} corrupt "
                f"(merged {self.spool.merged})"
            )
        if self.stragglers:
            worst = max(self.stragglers, key=lambda s: s.ratio)
            factor = self.straggler_factor or 0.0
            diagnostics.append(
                f"stragglers: {len(self.stragglers)} job(s) exceeded "
                f"{factor:g}x median latency "
                f"(worst {worst.loop} at {worst.ratio:.1f}x, {worst.seconds:.2f}s)"
            )
        for result in self.results:
            if not result.ok:
                line = f"  {result.status.upper()} {result.name}: {result.error}"
                if result.flight:
                    line += f"  [flight recorder: {len(result.flight)} events]"
                diagnostics.append(line)
        return lines, diagnostics

    def summary(self) -> str:
        """The full multi-line summary block (status + diagnostics)."""
        lines, diagnostics = self.summary_lines()
        return "\n".join(lines + diagnostics)


def _record_metrics(registry, report: BatchReport) -> None:
    """Mirror a batch's outcome into a repro.obs MetricsRegistry."""
    if registry is None:
        return
    for status, count in report.counts().items():
        registry.counter(f"service.jobs.{status}").inc(count)
    if report.cache is not None:
        registry.counter("service.cache.hits").inc(report.cache.hits)
        registry.counter("service.cache.misses").inc(report.cache.misses)
        registry.counter("service.cache.corrupt").inc(report.cache.corrupt)
        registry.counter("service.cache.writes").inc(report.cache.writes)
    registry.counter("service.pool.retries").inc(report.pool.retries)
    registry.counter("service.pool.rebuilds").inc(report.pool.rebuilds)
    registry.gauge("service.pool.utilization").set(report.pool.utilization)
    registry.timer("service.batch.wall").add(report.wall_seconds)
    latencies = registry.histogram("service.job.seconds")
    for seconds in report.job_latencies():
        latencies.record(seconds)


def run_batch(
    programs: Sequence[object],
    machine=None,
    algorithm: str = "slack",
    options=None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
    cache_db: Optional[str] = None,
    cache_url: Optional[str] = None,
    cache_fallback_dir: Optional[str] = None,
    cache_auth_token: Optional[str] = None,
    cache: Optional[CacheBackend] = None,
    use_cache: bool = True,
    metrics=None,
    max_retries: int = 2,
    faults: Optional[Dict[int, str]] = None,
    machines: Optional[Sequence[object]] = None,
    backend: object = "auto",
    chunk_size: Optional[int] = None,
    tracer=None,
    profiler=None,
    collect_trace: bool = False,
    progress=None,
    progress_log: Optional[str] = None,
    straggler_factor: float = 4.0,
    flight_events: int = DEFAULT_FLIGHT_CAPACITY,
) -> BatchReport:
    """Schedule a batch of programs (DoLoop or LoopBody) as a service.

    Args:
        programs: What to schedule; results keep this order.
        jobs: Worker processes; 1 (the default) runs serially in-process.
        timeout: Per-job wall-clock budget in seconds (None = unlimited).
        cache_dir: Root of a directory result cache; mutually exclusive
            with ``cache_db`` and ``cache_url``.  All three None (and no
            ``cache`` instance) disables caching entirely.
        cache_db: Path of a single-file sqlite result cache (WAL mode).
        cache_url: Base URL of a ``repro serve`` daemon; results are
            read from and written to its shared cache over HTTP
            (see :class:`repro.server.httpcache.HTTPCache`).
        cache_fallback_dir: Local directory the HTTP cache degrades to
            when the server is unreachable (``cache_url`` only).
        cache_auth_token: Bearer token for ``cache_url``.
        cache: An already-open :class:`CacheBackend` instance to use
            directly; the caller owns its lifecycle (it is not closed
            here).  Mutually exclusive with the location arguments —
            this is how the server's ``/v1/batch`` endpoint runs
            batches against its own shared, locked cache.
        use_cache: Set False to bypass reads *and* writes even when a
            cache location is set.
        metrics: Optional :class:`repro.obs.MetricsRegistry`; receives
            ``service.*`` counters/gauges/timers (plus merged worker
            registries when tracing/profiling is on).
        max_retries: Crash-recovery resubmissions per job.
        faults: Optional ``{job index: fault}`` injection map (see
            :class:`repro.service.jobs.ScheduleJob`).
        machines: Optional per-program machine overrides (None entries
            fall back to ``machine``); unlocks heterogeneous sweeps
            through one parallel, cached batch.
        backend: Execution strategy — ``"auto"`` | ``"serial"`` |
            ``"process"`` | ``"chunked"``, or an
            :class:`~repro.service.backends.ExecutionBackend` instance.
        chunk_size: Jobs per worker chunk (chunked backend only;
            None = auto).
        tracer: Optional session :class:`repro.obs.Tracer`; receives
            every job's scheduler events, merged in submission order.
        profiler: Optional session :class:`repro.obs.Profiler`;
            receives merged worker span trees.
        collect_trace: Force event collection even without a session
            tracer; the merged loop-tagged stream lands in
            ``report.trace_records`` (what CLI ``--trace`` writes).
        progress: Optional progress consumer — a
            :class:`repro.obs.ProgressSink` or a plain callable taking
            one :class:`repro.obs.ProgressEvent`; receives the full
            lifecycle stream (submitted/started/finished/cached/
            failed/quarantined plus synthetic straggler events).
        progress_log: Optional path; every progress event is appended
            as JSONL while the batch runs (what CLI ``--progress-log``
            writes).
        straggler_factor: Flag jobs slower than this multiple of the
            rolling median job latency (must exceed 1.0).
        flight_events: Ring capacity of the per-job flight recorder —
            the last N scheduler events attached to crash/timeout/
            failure records (``result.flight``) and their progress
            events.  0 disables the recorder entirely.
    """
    from repro.machine import cydra5

    machine = machine or cydra5()
    started = time.perf_counter()
    all_jobs = make_jobs(
        programs,
        algorithm=algorithm,
        options=options,
        faults=faults,
        machines=machines,
    )

    sinks: List[ProgressSink] = []
    if progress is not None:
        sinks.append(
            progress
            if isinstance(progress, ProgressSink)
            else CallbackProgress(progress)
        )
    if progress_log is not None:
        sinks.append(JSONLProgress(progress_log))
    tracker: Optional[ProgressTracker] = None
    if sinks or metrics is not None:
        tracker = ProgressTracker(
            total=len(all_jobs),
            sinks=sinks,
            metrics=metrics,
            watchdog=StragglerWatchdog(factor=straggler_factor),
        )
        for job in all_jobs:
            tracker.emit(job_event(KIND_SUBMITTED, job.index, job.name))

    cached_results: List[JobResult] = []
    pending: List[ScheduleJob] = all_jobs
    owns_cache = cache is None
    if not use_cache:
        cache = None
    elif cache is None:
        cache = open_cache(
            cache_dir=cache_dir,
            cache_db=cache_db,
            cache_url=cache_url,
            cache_fallback_dir=cache_fallback_dir,
            auth_token=cache_auth_token,
        )
    if cache is not None:
        pending = []
        for job in all_jobs:
            job.key = cache_key(
                job.program,
                job.machine if job.machine is not None else machine,
                job.algorithm,
                job.options,
            )
            hit = cache.get(job.key)
            if hit is not None and job.fault is None:
                cached_results.append(
                    JobResult(
                        index=job.index,
                        name=job.name,
                        status=JOB_CACHED,
                        metrics=hit,
                    )
                )
                if tracker is not None:
                    tracker.emit(result_event(cached_results[-1]))
            else:
                pending.append(job)

    exec_backend = (
        backend
        if isinstance(backend, ExecutionBackend)
        else resolve_backend(backend, workers=jobs, chunk_size=chunk_size)
    )
    observe = (
        collect_trace
        or (tracer is not None and getattr(tracer, "enabled", True))
        or (profiler is not None and getattr(profiler, "enabled", True))
    )
    spool_dir = tempfile.mkdtemp(prefix="repro-spool-") if observe else None
    # Fatal-signal spill area: a worker that dies mid-job writes its
    # flight ring here so the quarantine path can attach it post-mortem.
    flight_dir = (
        tempfile.mkdtemp(prefix="repro-flight-") if flight_events > 0 else None
    )
    try:
        computed, pool_stats = exec_backend.run(
            pending,
            machine,
            timeout=timeout,
            max_retries=max_retries,
            spool_dir=spool_dir,
            progress=tracker.emit if tracker is not None else None,
            flight_dir=flight_dir,
            flight_events=flight_events,
        )
        if cache is not None:
            for result in computed:
                job = all_jobs[result.index]
                if result.status == JOB_OK and result.metrics is not None and job.key:
                    cache.put(job.key, result.metrics)

        ordered = order_results(cached_results + list(computed))
        trace_records: Optional[List[dict]] = None
        spool_stats: Optional[SpoolMergeStats] = None
        if observe:
            trace_records, spool_stats = merge_spools(
                spool_dir, ordered, tracer=tracer, metrics=metrics,
                profiler=profiler,
            )
    finally:
        if spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)
        if flight_dir is not None:
            shutil.rmtree(flight_dir, ignore_errors=True)
        if tracker is not None:
            tracker.close()

    report = BatchReport(
        results=ordered,
        pool=pool_stats,
        cache=cache.stats if cache is not None else None,
        wall_seconds=time.perf_counter() - started,
        cache_location=cache.describe() if cache is not None else None,
        spool=spool_stats,
        trace_records=trace_records,
        stragglers=tracker.stragglers if tracker is not None else None,
        straggler_factor=straggler_factor,
    )
    _record_metrics(metrics, report)
    if spool_stats is not None:
        record_spool_stats(metrics, spool_stats)
    if cache is not None and owns_cache:
        cache.close()
    return report


# ----------------------------------------------------------------------
# Source loading (files / directories / generated corpus)
# ----------------------------------------------------------------------
class BatchSourceError(Exception):
    """A source file could not be read or parsed (CLI exits 2)."""


def load_sources(paths: Sequence[str]) -> list:
    """Parse loop-language files (or directories of ``*.loop`` files).

    Raises :class:`BatchSourceError` with a one-line message naming the
    offending file on any read or parse problem.
    """
    from repro.frontend.parser import ParseError, parse_loop

    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            entries = sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if name.endswith(".loop")
            )
            if not entries:
                raise BatchSourceError(f"{path}: directory contains no .loop files")
            files.extend(entries)
        else:
            files.append(path)
    programs = []
    for path in files:
        try:
            with open(path) as handle:
                source = handle.read()
        except OSError as error:
            raise BatchSourceError(f"{path}: {error.strerror or error}") from error
        try:
            programs.append(parse_loop(source))
        except (ParseError, ValueError) as error:
            raise BatchSourceError(f"{path}: {error}") from error
    return programs


def _parse_faults(specs: Optional[Sequence[str]]) -> Optional[Dict[int, str]]:
    if not specs:
        return None
    faults: Dict[int, str] = {}
    for spec in specs:
        index, _, fault = spec.partition(":")
        faults[int(index)] = fault
    return faults


_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}
_AGE_SUFFIXES = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_size(text: str) -> int:
    """``"500M"`` → bytes; bare numbers are bytes already."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([kmgtKMGT]?)[bB]?\s*", text)
    if not match:
        raise ValueError(f"cannot parse size {text!r} (try 500M, 2G, 1048576)")
    value = float(match.group(1))
    suffix = match.group(2).lower()
    return int(value * _SIZE_SUFFIXES.get(suffix, 1))


def parse_age(text: str) -> float:
    """``"7d"`` → seconds; bare numbers are seconds already."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([smhdwSMHDW]?)\s*", text)
    if not match:
        raise ValueError(f"cannot parse age {text!r} (try 7d, 12h, 30m, 3600)")
    value = float(match.group(1))
    suffix = match.group(2).lower()
    return value * _AGE_SUFFIXES.get(suffix, 1.0)


def _parse_latencies(text: str) -> List[int]:
    try:
        latencies = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise ValueError(f"cannot parse latency list {text!r}") from error
    if not latencies:
        raise ValueError("empty latency list")
    return latencies


# ----------------------------------------------------------------------
# CLI (python -m repro batch ...)
# ----------------------------------------------------------------------
def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Schedule a corpus or loop files in parallel, with a "
        "content-addressed result cache (directory or sqlite).",
    )
    parser.add_argument(
        "sources",
        nargs="*",
        help="loop-language files or directories of *.loop files",
    )
    parser.add_argument(
        "--corpus",
        type=int,
        metavar="N",
        help="schedule the paper's generated N-loop corpus instead of files",
    )
    parser.add_argument(
        "--seed", type=int, default=1993, help="corpus seed (default 1993)"
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default 1 = serial in-process)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="execution backend: auto picks serial at --jobs 1 and the "
        "chunked worker-resident pool otherwise (default auto)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        metavar="N",
        help="jobs per worker chunk for the chunked backend (default: auto)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-job wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=f"directory result cache root (default {DEFAULT_CACHE_DIR}; "
        "mutually exclusive with --cache-db)",
    )
    parser.add_argument(
        "--cache-db",
        default=None,
        metavar="PATH",
        help="single-file sqlite result cache (WAL mode, shareable "
        "across runs; mutually exclusive with --cache-dir)",
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        metavar="URL",
        help="share a `repro serve` daemon's warm result cache over HTTP "
        "(mutually exclusive with --cache-dir/--cache-db); degrades to "
        "--cache-fallback-dir when the server is unreachable",
    )
    parser.add_argument(
        "--cache-fallback-dir",
        default=None,
        metavar="DIR",
        help="local directory cache used when --cache-url is unreachable "
        f"(default {DEFAULT_CACHE_DIR}; requires --cache-url)",
    )
    parser.add_argument(
        "--cache-auth-token",
        default=os.environ.get("REPRO_SERVER_TOKEN"),
        metavar="TOKEN",
        help="bearer token for --cache-url (default: $REPRO_SERVER_TOKEN)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache (no reads, no writes)",
    )
    parser.add_argument(
        "--gc",
        action="store_true",
        help="garbage-collect the cache instead of scheduling: evict "
        "entries past --max-cache-age, then --gc-policy order past "
        "--max-cache-bytes",
    )
    parser.add_argument(
        "--gc-policy",
        choices=("oldest", "lru"),
        default="oldest",
        help="gc eviction order: oldest (creation time) or lru (last "
        "access; sqlite records reads, directory caches approximate "
        "with file mtime)",
    )
    parser.add_argument(
        "--max-cache-bytes",
        metavar="SIZE",
        help="gc bound: keep the cache under SIZE (accepts 500M, 2G, ...)",
    )
    parser.add_argument(
        "--max-cache-age",
        metavar="AGE",
        help="gc bound: evict entries older than AGE (accepts 7d, 12h, ...)",
    )
    parser.add_argument(
        "--algorithm",
        default="slack",
        help="scheduler algorithm (default slack)",
    )
    parser.add_argument(
        "--machine",
        metavar="NAME[:k=v,...]",
        default=None,
        help="registered target machine with optional parameter "
        "overrides, e.g. vliw-wide or simd:depth=3 (default cydra5; "
        "see repro.machine.registry)",
    )
    parser.add_argument(
        "--load-latency",
        type=int,
        default=None,
        help="memory latency register (default: the machine's default; "
        "13 for cydra5)",
    )
    parser.add_argument(
        "--sweep-load-latency",
        metavar="L1,L2,...",
        help="heterogeneous sweep: schedule the whole input once per "
        "latency in one batch (per-job machines, distinct cache keys); "
        "sweeps the --machine family's load_latency knob",
    )
    parser.add_argument(
        "--sweep-machine",
        action="append",
        metavar="NAME[:k=v,...]",
        help="heterogeneous machine-grid sweep: schedule the whole "
        "input once per named machine in one batch (repeatable, e.g. "
        "--sweep-machine cydra5 --sweep-machine vliw-wide "
        "--sweep-machine simd:depth=3)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write the merged per-job scheduler trace (JSONL, each event "
        "tagged with its loop) — identical at any --jobs level",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the per-loop LoopMetrics as a JSON array to PATH "
        "('-' writes the JSON to stdout and moves every status line "
        "to stderr)",
    )
    parser.add_argument(
        "--progress",
        dest="progress",
        action="store_true",
        default=None,
        help="force the live status line on stderr (default: only when "
        "stderr is a terminal)",
    )
    parser.add_argument(
        "--no-progress",
        dest="progress",
        action="store_false",
        help="suppress the live status line",
    )
    parser.add_argument(
        "--progress-log",
        metavar="PATH",
        help="append every progress event (submitted/started/finished/"
        "cached/failed/quarantined/straggler) as JSONL to PATH",
    )
    parser.add_argument(
        "--straggler-factor",
        type=float,
        default=4.0,
        metavar="K",
        help="flag jobs slower than K x the rolling median job latency "
        "(default 4.0)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the merged service metrics registry (counters, "
        "gauges, latency quantiles) as JSON to PATH",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        help="write the merged profiler span snapshot as JSON to PATH",
    )
    parser.add_argument(
        "--flight-events",
        type=int,
        default=None,
        metavar="N",
        help="per-job flight-recorder ring capacity: the last N scheduler "
        "events attached to crash/timeout/failure records "
        f"(default {DEFAULT_FLIGHT_CAPACITY})",
    )
    parser.add_argument(
        "--no-flight",
        action="store_true",
        help="disable the per-job flight recorder entirely",
    )
    parser.add_argument(
        "--explain-failures",
        action="store_true",
        help="render a flight-recorder post-mortem on stderr for every "
        "failed/timed-out/crashed job that captured one",
    )
    parser.add_argument(
        "--history",
        metavar="DB",
        help="append this run's batch summary to a history database "
        "(see `python -m repro history`)",
    )
    parser.add_argument(
        "--inject",
        action="append",
        metavar="INDEX:FAULT",
        help=argparse.SUPPRESS,  # fault injection: crash | exit | raise | hang:N
    )
    return parser


def _gc_main(args) -> int:
    """``batch --gc``: evict against whichever cache backend is configured."""
    cache_dir = args.cache_dir
    if cache_dir is None and args.cache_db is None:
        cache_dir = DEFAULT_CACHE_DIR
    try:
        max_bytes = parse_size(args.max_cache_bytes) if args.max_cache_bytes else None
        max_age = parse_age(args.max_cache_age) if args.max_cache_age else None
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if cache_dir is not None and not os.path.isdir(cache_dir):
        print(f"error: no cache at {cache_dir}", file=sys.stderr)
        return 2
    cache = open_cache(cache_dir=cache_dir, cache_db=args.cache_db)
    try:
        report = collect_garbage(
            cache, max_bytes=max_bytes, max_age_seconds=max_age,
            policy=args.gc_policy,
        )
    finally:
        cache.close()
    print(f"{cache.describe()}")
    print(report.summary())
    if max_bytes is None and max_age is None:
        print("(no --max-cache-bytes/--max-cache-age bound: inventory only)")
    return 0


def batch_main(argv: Optional[List[str]] = None) -> int:
    args = build_batch_parser().parse_args(argv)
    from repro.core import ALGORITHMS

    cache_locations = [
        flag
        for flag, value in (
            ("--cache-dir", args.cache_dir),
            ("--cache-db", args.cache_db),
            ("--cache-url", args.cache_url),
        )
        if value is not None
    ]
    if len(cache_locations) > 1:
        print(
            f"error: pass at most one of {', '.join(cache_locations)}",
            file=sys.stderr,
        )
        return 2
    if args.cache_fallback_dir is not None and args.cache_url is None:
        print(
            "error: --cache-fallback-dir requires --cache-url",
            file=sys.stderr,
        )
        return 2
    if args.gc:
        return _gc_main(args)
    if args.algorithm not in ALGORITHMS:
        print(
            f"error: unknown algorithm {args.algorithm!r}; "
            f"pick from {', '.join(sorted(ALGORITHMS))}",
            file=sys.stderr,
        )
        return 2
    if args.corpus is not None and args.sources:
        print("error: pass either --corpus N or source files, not both", file=sys.stderr)
        return 2
    if args.corpus is not None:
        if args.corpus < 1:
            print("error: --corpus must be positive", file=sys.stderr)
            return 2
        from repro.workloads import paper_corpus

        programs = paper_corpus(args.corpus, seed=args.seed)
    elif args.sources:
        try:
            programs = load_sources(args.sources)
        except BatchSourceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        print("error: provide source files or --corpus N", file=sys.stderr)
        return 2

    if args.sweep_load_latency and args.sweep_machine:
        print(
            "error: pass either --sweep-load-latency or --sweep-machine, "
            "not both",
            file=sys.stderr,
        )
        return 2
    from repro.experiments.runner import sweep_layout
    from repro.machine.registry import (
        MachineError,
        get_family,
        machine_from_cli,
        parse_machine_arg,
    )

    machines = None
    try:
        base_name, base_overrides = parse_machine_arg(args.machine or "cydra5")
        base_family = get_family(base_name)
        if (
            args.load_latency is not None
            and "load_latency" in base_family.param_names()
            and "load_latency" not in base_overrides
        ):
            base_overrides["load_latency"] = args.load_latency
        machine = base_family.build(**base_overrides)
        if args.sweep_load_latency:
            latencies = _parse_latencies(args.sweep_load_latency)
            sweep_machines = [
                base_family.build(
                    **{**base_overrides, "load_latency": latency}
                )
                for latency in latencies
            ]
        elif args.sweep_machine:
            sweep_machines = [
                machine_from_cli(spec) for spec in args.sweep_machine
            ]
        else:
            sweep_machines = None
    except (MachineError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if sweep_machines is not None:
        programs, machines = sweep_layout(programs, sweep_machines)

    cache_dir = args.cache_dir
    cache_fallback_dir = None
    if args.no_cache:
        cache_dir = None
    elif args.cache_url is not None:
        # HTTP cache; degrade to a local directory cache when the
        # server is unreachable so the batch always completes.
        cache_fallback_dir = args.cache_fallback_dir or DEFAULT_CACHE_DIR
    elif cache_dir is None and args.cache_db is None:
        cache_dir = DEFAULT_CACHE_DIR

    if args.straggler_factor <= 1.0:
        print("error: --straggler-factor must exceed 1.0", file=sys.stderr)
        return 2

    flight_events = args.flight_events
    if flight_events is None:
        flight_events = DEFAULT_FLIGHT_CAPACITY
    if args.no_flight:
        flight_events = 0
    if flight_events < 0:
        print("error: --flight-events must be >= 0", file=sys.stderr)
        return 2

    out_to_stdout = args.out == "-"
    # Status lines describe the run; with --out - they join the
    # diagnostics on stderr so stdout carries pure JSON.
    status_stream = sys.stderr if out_to_stdout else sys.stdout

    show_tty = args.progress
    if show_tty is None:
        show_tty = sys.stderr.isatty()

    metrics = profiler = None
    if args.metrics_out:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    if args.profile_out:
        from repro.obs.prof import Profiler

        profiler = Profiler()

    try:
        report = run_batch(
            programs,
            machine=machine,
            algorithm=args.algorithm,
            jobs=args.jobs,
            timeout=args.timeout,
            cache_dir=cache_dir,
            cache_db=None if args.no_cache else args.cache_db,
            cache_url=None if args.no_cache else args.cache_url,
            cache_fallback_dir=cache_fallback_dir,
            cache_auth_token=args.cache_auth_token,
            backend=args.backend,
            chunk_size=args.chunk_size,
            machines=machines,
            faults=_parse_faults(args.inject),
            collect_trace=bool(args.trace),
            metrics=metrics,
            profiler=profiler,
            progress=TTYProgress(total=len(programs)) if show_tty else None,
            progress_log=args.progress_log,
            straggler_factor=args.straggler_factor,
            flight_events=flight_events,
        )
    except OSError as exc:  # e.g. unwritable --progress-log
        print(f"error: {exc}", file=sys.stderr)
        return 2
    status_lines, diagnostics = report.summary_lines()
    print("\n".join(status_lines), file=status_stream)
    for line in diagnostics:
        print(line, file=sys.stderr)
    if args.explain_failures:
        from repro.obs.explain import flight_postmortem

        for result in report.results:
            if not result.ok and result.flight:
                print(
                    flight_postmortem(
                        result.name,
                        result.flight,
                        status=result.status,
                        error=result.error,
                    ),
                    file=sys.stderr,
                )
    if args.history:
        import sqlite3

        from repro.obs.history import (
            HistoryError,
            HistoryStore,
            batch_report_payload,
        )

        try:
            store = HistoryStore(args.history)
            try:
                run_id = store.record_payload(
                    "batch-cli", batch_report_payload(report)
                )
            finally:
                store.close()
        except (OSError, sqlite3.Error, HistoryError) as exc:
            print(
                f"error: cannot record history to {args.history}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"history: run #{run_id} -> {args.history}", file=status_stream)
    if args.trace:
        try:
            write_trace_records(report.trace_records or [], args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}", file=sys.stderr)
            return 2
        print(
            f"trace: {len(report.trace_records or [])} events "
            f"({report.spool.merged if report.spool else 0} jobs) -> {args.trace}",
            file=status_stream,
        )
    if args.metrics_out:
        import json as _json

        try:
            with open(args.metrics_out, "w") as handle:
                _json.dump(metrics.dump(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(
                f"error: cannot write metrics registry to {args.metrics_out}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"metrics registry -> {args.metrics_out}", file=status_stream)
    if args.profile_out:
        import json as _json

        try:
            with open(args.profile_out, "w") as handle:
                _json.dump(profiler.snapshot(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print(
                f"error: cannot write profile to {args.profile_out}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"profile snapshot -> {args.profile_out}", file=status_stream)
    if args.progress_log:
        print(f"progress log -> {args.progress_log}", file=status_stream)
    if out_to_stdout:
        from repro.experiments.export import to_json

        print(to_json(report.loop_metrics))
    elif args.out:
        from repro.experiments.export import write_json

        try:
            write_json(report.loop_metrics, args.out)
        except OSError as exc:
            print(f"error: cannot write metrics to {args.out}: {exc}", file=sys.stderr)
            return 2
        print(
            f"metrics: {len(report.loop_metrics)} records -> {args.out}",
            file=status_stream,
        )
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Bench scenario (BENCH_batch.json)
# ----------------------------------------------------------------------
def run_batch_bench(
    scenario,
    corpus_size: int = 60,
    repeats: int = 3,
    warmup: int = 1,
    profile: bool = True,
    memory: bool = False,
    machine=None,
    jobs: Optional[int] = None,
) -> dict:
    """Benchmark the service: backend speedups + warm/cold cache time.

    Matches :func:`repro.obs.bench.run_scenario`'s signature so the
    bench CLI can drive it like any other scenario.  Wall-clock entries
    are ``kind="time"`` (reported, not gated by default); cache-hit
    counts and the schedule-quality aggregates are deterministic and
    gate ``--fail-on-regress``.

    Three dispatch strategies are timed over the same corpus: serial
    in-process (the floor every backend must match for correctness),
    the historical per-job process pool, and the chunked
    worker-resident backend — ``chunked_vs_process_speedup`` isolates
    the dispatch-cost win from raw core count, which matters because
    CI boxes (and this repo's own measurement container) may expose a
    single core, capping ``parallel_speedup`` near 1.0 regardless of
    backend.
    """
    from repro.machine import cydra5
    from repro.obs.bench import (
        BENCH_SCHEMA,
        corpus_aggregates,
        metric,
        sample_stats,
        wrap_payload,
    )
    from repro.workloads import paper_corpus

    machine = machine or cydra5()
    # Floor at 2 workers so the process/chunked backends actually run
    # even on single-core boxes — there the speedups honestly come out
    # <= 1.0 (time-kind, reported not gated) but the dispatch-cost
    # comparison still measures something real.
    jobs = jobs or max(2, min(4, os.cpu_count() or 1))
    programs = paper_corpus(corpus_size)

    serial_samples: List[float] = []
    process_samples: List[float] = []
    chunked_samples: List[float] = []
    loop_metrics = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run_batch(programs, machine, jobs=1, backend="serial", cache_dir=None)
        serial_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        run_batch(programs, machine, jobs=jobs, backend="process", cache_dir=None)
        process_samples.append(time.perf_counter() - started)
        started = time.perf_counter()
        report = run_batch(
            programs, machine, jobs=jobs, backend="chunked", cache_dir=None
        )
        chunked_samples.append(time.perf_counter() - started)
        loop_metrics = report.loop_metrics

    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        started = time.perf_counter()
        cold = run_batch(
            programs, machine, jobs=jobs, backend="chunked", cache_dir=cache_root
        )
        cold_seconds = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_batch(
            programs, machine, jobs=jobs, backend="chunked", cache_dir=cache_root
        )
        warm_seconds = time.perf_counter() - started
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    serial_stats = sample_stats(serial_samples)
    process_stats = sample_stats(process_samples)
    chunked_stats = sample_stats(chunked_samples)
    serial_wall = serial_stats["median"]
    process_wall = process_stats["median"]
    parallel_wall = chunked_stats["median"]
    metrics = {
        "serial_wall_s": metric(
            serial_wall, "s", direction="lower", kind="time",
            iqr=serial_stats["iqr"],
        ),
        "process_wall_s": metric(
            process_wall, "s", direction="lower", kind="time",
            iqr=process_stats["iqr"],
        ),
        "parallel_wall_s": metric(
            parallel_wall, "s", direction="lower", kind="time",
            iqr=chunked_stats["iqr"],
        ),
        "parallel_speedup": metric(
            serial_wall / parallel_wall if parallel_wall else 0.0,
            "x", direction="higher", kind="time",
        ),
        "chunked_vs_process_speedup": metric(
            process_wall / parallel_wall if parallel_wall else 0.0,
            "x", direction="higher", kind="time",
        ),
        "cold_cache_wall_s": metric(
            cold_seconds, "s", direction="lower", kind="time"
        ),
        "warm_cache_wall_s": metric(
            warm_seconds, "s", direction="lower", kind="time"
        ),
        "warm_cache_speedup": metric(
            cold_seconds / warm_seconds if warm_seconds else 0.0,
            "x", direction="higher", kind="time",
        ),
        "warm_cache_hits": metric(
            warm.cache.hits if warm.cache else 0, "hits", direction="higher"
        ),
        "cold_cache_misses": metric(
            cold.cache.misses if cold.cache else 0, "misses", direction="lower"
        ),
        "pool_utilization": metric(
            cold.pool.utilization, "fraction", direction="higher", kind="time"
        ),
    }
    metrics.update(corpus_aggregates(loop_metrics))
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": scenario.name,
            "description": scenario.description,
            "algorithm": scenario.algorithm,
            "machine": machine.name,
            "corpus_size": len(programs),
            "repeats": max(1, repeats),
            "warmup": warmup,
            "jobs": jobs,
            "backend": "chunked",
            "wall_time_samples_s": chunked_samples,
            "process_wall_time_samples_s": process_samples,
            "serial_wall_time_samples_s": serial_samples,
            "metrics": metrics,
            "profile": None,
        },
    )
