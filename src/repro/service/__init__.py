"""Batch scheduling service: pluggable backends + multi-backend cache.

The scheduler itself is a pure function from ``(loop, machine,
algorithm, options)`` to a schedule, which makes it an ideal service
workload: requests are independent, results are deterministic, and the
same configuration is rescheduled over and over by figures, tables and
regression runs.  This package turns :func:`repro.experiments.runner.
measure_loop` into exactly that service:

- :mod:`repro.service.keys` — canonical, ``PYTHONHASHSEED``-independent
  serialization of a scheduling request into a stable SHA-256 cache key
  (programs, options, and whole machine descriptions);
- :mod:`repro.service.cache` — the :class:`CacheBackend` protocol with
  two content-addressed stores (fan-out directory, single-file sqlite
  in WAL mode), plus one garbage collector written against the
  protocol;
- :mod:`repro.service.jobs` — job/result records with an explicit
  status (``ok | failed | timeout | crashed | cached``), optional
  per-job machines for heterogeneous sweeps, and deterministic result
  ordering;
- :mod:`repro.service.pool` — shared pool machinery: in-worker
  wall-clock budgets, crash quarantine with bounded retry, graceful
  degradation to in-process serial execution, observability spooling;
- :mod:`repro.service.backends` — the :class:`ExecutionBackend`
  strategies: serial in-process, per-job process pool, and the chunked
  pool that keeps deserialized machines resident in workers;
- :mod:`repro.service.spool` — per-job observability spool files
  merged in submission order, so ``--trace``/``--explain`` cross
  process boundaries deterministically;
- :mod:`repro.service.batch` — the batch front end
  (``python -m repro batch``) tying the above together.
"""

from repro.service.backends import (
    BACKEND_NAMES,
    ChunkedProcessBackend,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    resolve_backend,
)
from repro.service.cache import (
    CacheBackend,
    CacheEntry,
    CacheStats,
    DirectoryCache,
    GCReport,
    ResultCache,
    SQLiteCache,
    collect_garbage,
    open_cache,
)
from repro.service.jobs import (
    JOB_CACHED,
    JOB_CRASHED,
    JOB_FAILED,
    JOB_OK,
    JOB_STATUSES,
    JOB_TIMEOUT,
    JobResult,
    ScheduleJob,
    make_jobs,
    order_results,
)
from repro.service.keys import (
    KEY_SCHEMA_VERSION,
    cache_key,
    canonical_machine,
    canonical_options,
    canonical_program,
    canonical_request,
    machine_digest,
)
from repro.service.pool import PoolStats, run_jobs
from repro.service.spool import SpoolMergeStats, merge_spools, write_spool
from repro.service.batch import BatchReport, batch_main, run_batch

__all__ = [
    "BACKEND_NAMES",
    "ChunkedProcessBackend",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "resolve_backend",
    "CacheBackend",
    "CacheEntry",
    "CacheStats",
    "DirectoryCache",
    "GCReport",
    "ResultCache",
    "SQLiteCache",
    "collect_garbage",
    "open_cache",
    "JOB_CACHED",
    "JOB_CRASHED",
    "JOB_FAILED",
    "JOB_OK",
    "JOB_STATUSES",
    "JOB_TIMEOUT",
    "JobResult",
    "ScheduleJob",
    "make_jobs",
    "order_results",
    "KEY_SCHEMA_VERSION",
    "cache_key",
    "canonical_machine",
    "canonical_options",
    "canonical_program",
    "canonical_request",
    "machine_digest",
    "PoolStats",
    "run_jobs",
    "SpoolMergeStats",
    "merge_spools",
    "write_spool",
    "BatchReport",
    "batch_main",
    "run_batch",
]
