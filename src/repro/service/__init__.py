"""Batch scheduling service: parallel workers + content-addressed cache.

The scheduler itself is a pure function from ``(loop, machine,
algorithm, options)`` to a schedule, which makes it an ideal service
workload: requests are independent, results are deterministic, and the
same configuration is rescheduled over and over by figures, tables and
regression runs.  This package turns :func:`repro.experiments.runner.
measure_loop` into exactly that service:

- :mod:`repro.service.keys` — canonical, ``PYTHONHASHSEED``-independent
  serialization of a scheduling request into a stable SHA-256 cache key;
- :mod:`repro.service.cache` — content-addressed on-disk cache of
  :class:`~repro.experiments.metrics.LoopMetrics` results with atomic
  writes and corruption-tolerant reads;
- :mod:`repro.service.jobs` — job/result records with an explicit
  status (``ok | failed | timeout | crashed | cached``) and
  deterministic result ordering;
- :mod:`repro.service.pool` — a fault-tolerant ``ProcessPoolExecutor``
  worker pool with per-job wall-clock timeouts, bounded retry with
  backoff after worker crashes, and graceful degradation to in-process
  serial execution;
- :mod:`repro.service.batch` — the batch front end
  (``python -m repro batch``) tying the above together.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.jobs import (
    JOB_CACHED,
    JOB_CRASHED,
    JOB_FAILED,
    JOB_OK,
    JOB_STATUSES,
    JOB_TIMEOUT,
    JobResult,
    ScheduleJob,
    make_jobs,
    order_results,
)
from repro.service.keys import (
    KEY_SCHEMA_VERSION,
    cache_key,
    canonical_machine,
    canonical_options,
    canonical_program,
    canonical_request,
)
from repro.service.pool import PoolStats, run_jobs
from repro.service.batch import BatchReport, batch_main, run_batch

__all__ = [
    "CacheStats",
    "ResultCache",
    "JOB_CACHED",
    "JOB_CRASHED",
    "JOB_FAILED",
    "JOB_OK",
    "JOB_STATUSES",
    "JOB_TIMEOUT",
    "JobResult",
    "ScheduleJob",
    "make_jobs",
    "order_results",
    "KEY_SCHEMA_VERSION",
    "cache_key",
    "canonical_machine",
    "canonical_options",
    "canonical_program",
    "canonical_request",
    "PoolStats",
    "run_jobs",
    "BatchReport",
    "batch_main",
    "run_batch",
]
