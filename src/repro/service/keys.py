"""Canonical cache keys for scheduling requests.

A cache key must be *stable*: the same ``(program, machine, algorithm,
options)`` must hash to the same SHA-256 on every run, every process,
and every ``PYTHONHASHSEED``.  Python's builtin ``hash()`` and set/dict
iteration order are therefore off limits; everything here reduces a
request to plain lists/dicts with explicitly sorted keys and then runs
the shared canonical serializer (:mod:`repro.canonical`) through
SHA-256.

The key covers every input the scheduler reads:

- the program — either a :class:`~repro.frontend.ast.DoLoop` AST
  (canonicalized structurally, *not* via the source printer, which is
  ambiguous for affine gathers) or an already-compiled
  :class:`~repro.ir.loop.LoopBody`;
- the machine description (unit classes, counts, latencies, pipelining);
- the algorithm name and every :class:`~repro.core.SchedulerOptions`
  knob;
- :data:`KEY_SCHEMA_VERSION`, bumped whenever the scheduler's observable
  behavior or the cached payload changes incompatibly, which invalidates
  every old cache entry at once.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.canonical import canonical_digest, canonical_dumps
from repro.frontend import ast as fast
from repro.ir.loop import LoopBody
from repro.machine.machine import Machine

#: Bump to invalidate every previously cached result (schema change,
#: scheduler behavior change, LoopMetrics field change, ...).
KEY_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# DoLoop canonicalization (structural, type-tagged)
# ----------------------------------------------------------------------
def _canon_expr(expr: fast.Expr) -> list:
    if isinstance(expr, fast.Const):
        return ["const", float(expr.value)]
    if isinstance(expr, fast.Scalar):
        return ["scalar", expr.name]
    if isinstance(expr, fast.Index):
        return ["index"]
    if isinstance(expr, fast.ArrayRef):
        return ["aref", expr.array, int(expr.stride), int(expr.offset)]
    if isinstance(expr, fast.Gather):
        return ["gather", expr.array, _canon_expr(expr.index)]
    if isinstance(expr, fast.BinOp):
        return ["bin", expr.op, _canon_expr(expr.left), _canon_expr(expr.right)]
    if isinstance(expr, fast.Unary):
        return ["un", expr.op, _canon_expr(expr.operand)]
    if isinstance(expr, fast.Compare):
        return ["cmp", expr.op, _canon_expr(expr.left), _canon_expr(expr.right)]
    raise TypeError(f"cannot canonicalize expression {expr!r}")


def _canon_target(target) -> list:
    if isinstance(target, fast.Scalar):
        return ["scalar", target.name]
    if isinstance(target, fast.ArrayRef):
        return ["aref", target.array, int(target.stride), int(target.offset)]
    if isinstance(target, fast.Scatter):
        return ["scatter", target.array, _canon_expr(target.index)]
    raise TypeError(f"cannot canonicalize assignment target {target!r}")


def _canon_stmt(stmt: fast.Stmt) -> list:
    if isinstance(stmt, fast.Assign):
        return ["assign", _canon_target(stmt.target), _canon_expr(stmt.expr)]
    if isinstance(stmt, fast.If):
        return [
            "if",
            _canon_expr(stmt.cond),
            [_canon_stmt(s) for s in stmt.then],
            [_canon_stmt(s) for s in stmt.orelse],
        ]
    if isinstance(stmt, fast.ExitIf):
        return ["exitif", _canon_expr(stmt.cond)]
    raise TypeError(f"cannot canonicalize statement {stmt!r}")


def _canon_doloop(program: fast.DoLoop) -> dict:
    return {
        "kind": "doloop",
        "name": program.name,
        "start": int(program.start),
        "trip": int(program.trip),
        "arrays": {name: int(size) for name, size in sorted(program.arrays.items())},
        "scalars": {
            name: float(value) for name, value in sorted(program.scalars.items())
        },
        "live_out": sorted(program.live_out),
        "body": [_canon_stmt(s) for s in program.body],
    }


# ----------------------------------------------------------------------
# LoopBody canonicalization
# ----------------------------------------------------------------------
def _jsonable(obj):
    """Best-effort reduction of free-form metadata to sortable JSON."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(key): _jsonable(obj[key]) for key in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((_jsonable(item) for item in obj), key=repr)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__type__": type(obj).__name__,
            **_jsonable(dataclasses.asdict(obj)),
        }
    return repr(obj)


def _canon_origin(origin) -> Optional[list]:
    if origin is None:
        return None
    return [type(origin).__name__, _jsonable(dataclasses.asdict(origin))]


def _canon_operand(operand) -> list:
    return [operand.value.vid, int(operand.back)]


def _canon_loop_body(loop: LoopBody) -> dict:
    return {
        "kind": "loopbody",
        "name": loop.name,
        "finalized": bool(loop.finalized),
        "values": [
            [
                value.vid,
                value.name,
                value.dtype.value,
                value.kind.value,
                value.literal,
                _canon_origin(value.origin),
            ]
            for value in loop.values
        ],
        "ops": [
            [
                op.oid,
                op.opcode.value,
                None if op.dest is None else op.dest.vid,
                [_canon_operand(o) for o in op.operands],
                None if op.predicate is None else _canon_operand(op.predicate),
                _jsonable(op.attrs),
            ]
            for op in loop.ops
        ],
        "mem_deps": sorted(
            [dep.src, dep.dst, dep.omega, dep.latency] for dep in loop.mem_deps
        ),
        "live_out": {
            name: value.vid for name, value in sorted(loop.live_out.items())
        },
        "meta": _jsonable(loop.meta),
    }


# ----------------------------------------------------------------------
# Public surface
# ----------------------------------------------------------------------
def canonical_program(program: Union[fast.DoLoop, LoopBody]) -> dict:
    """Canonical JSON-safe form of a DoLoop AST or compiled LoopBody."""
    if isinstance(program, fast.DoLoop):
        return _canon_doloop(program)
    if isinstance(program, LoopBody):
        return _canon_loop_body(program)
    raise TypeError(f"cannot canonicalize program of type {type(program).__name__}")


def canonical_machine(machine: Machine) -> dict:
    """Canonical form of a machine description.

    Registry-built machines carry their declarative
    :class:`~repro.machine.registry.MachineSpec`; the key is derived
    from that spec payload, so two machines resolved from the same spec
    key identically however they were materialized.  The spec's
    ``canonical()`` emits byte-for-byte the same structure as the
    attribute walk below, so hand-built Machines (no spec) and
    registry machines that describe identical hardware share keys —
    and pre-registry cache entries stay valid.
    """
    spec = getattr(machine, "spec", None)
    if spec is not None:
        return spec.canonical()
    return {
        "name": machine.name,
        "units": [
            {
                "name": unit_class.name,
                "count": unit_class.count,
                "pipelined": unit_class.pipelined,
                "ops": sorted(
                    [opcode.value, int(latency)]
                    for opcode, latency in unit_class.op_latencies
                ),
            }
            for unit_class in machine.unit_classes
        ],
    }


def canonical_options(options) -> Optional[dict]:
    """Canonical form of SchedulerOptions (None stays None, meaning
    'driver defaults'; the defaults themselves are part of the driver,
    so a default change must bump :data:`KEY_SCHEMA_VERSION`)."""
    if options is None:
        return None
    return _jsonable(dataclasses.asdict(options))


def canonical_request(
    program: Union[fast.DoLoop, LoopBody],
    machine: Machine,
    algorithm: str = "slack",
    options=None,
) -> dict:
    """The full canonical request a cache key is derived from."""
    return {
        "schema_version": KEY_SCHEMA_VERSION,
        "algorithm": algorithm,
        "program": canonical_program(program),
        "machine": canonical_machine(machine),
        "options": canonical_options(options),
    }


def request_json(
    program: Union[fast.DoLoop, LoopBody],
    machine: Machine,
    algorithm: str = "slack",
    options=None,
) -> str:
    """Deterministic JSON encoding of the canonical request."""
    return canonical_dumps(canonical_request(program, machine, algorithm, options))


def cache_key(
    program: Union[fast.DoLoop, LoopBody],
    machine: Machine,
    algorithm: str = "slack",
    options=None,
) -> str:
    """Stable SHA-256 hex digest identifying one scheduling request."""
    return canonical_digest(canonical_request(program, machine, algorithm, options))


def machine_digest(machine: Machine) -> str:
    """Stable SHA-256 hex digest of a machine description alone.

    Used by the chunked execution backend to key its worker-resident
    machine cache: two jobs carrying equal machines (same units, counts,
    latencies, pipelining) share one deserialized machine per worker,
    however many jobs reference it.
    """
    return canonical_digest(canonical_machine(machine))
