"""Job and result records for the batch scheduling service.

A :class:`ScheduleJob` is one scheduling request; a :class:`JobResult`
is its outcome with an explicit status:

- ``ok``      — the worker produced a :class:`LoopMetrics` (note that a
  loop the scheduler *failed to pipeline* is still ``ok``: failure to
  find a schedule is a deterministic domain result, carried in
  ``metrics.success`` / ``metrics.failure_reason``, not a job fault);
- ``cached``  — the result came from the content-addressed cache;
- ``failed``  — the job raised (parse error, bad IR, internal bug);
- ``timeout`` — the job exceeded its wall-clock budget;
- ``crashed`` — the worker process died (segfault, ``os._exit``, OOM
  kill) and retries were exhausted.

Result order is deterministic: :func:`order_results` sorts by the job's
submission index, so a parallel batch returns metrics in exactly the
order the serial path would.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments.metrics import LoopMetrics

JOB_OK = "ok"
JOB_FAILED = "failed"
JOB_TIMEOUT = "timeout"
JOB_CRASHED = "crashed"
JOB_CACHED = "cached"

JOB_STATUSES = frozenset({JOB_OK, JOB_FAILED, JOB_TIMEOUT, JOB_CRASHED, JOB_CACHED})


@dataclasses.dataclass
class ScheduleJob:
    """One scheduling request.

    ``machine`` is the job's own machine description; ``None`` means
    "use the batch default".  Per-job machines are what make
    heterogeneous sweeps (the same corpus under several load latencies)
    one batch instead of one batch per machine — the cache key already
    covers the machine, so distinct machines get distinct entries.

    ``fault`` is the service's built-in fault injection used by tests,
    CI and manual resilience drills: ``"crash"`` kills the worker with
    a synthetic ``SIGSEGV`` (exercising the flight recorder's
    fatal-signal spill), ``"exit"`` dies with ``os._exit`` and
    bypasses every handler, ``"hang:N"`` makes it sleep N seconds
    (tripping the per-job timeout), ``"raise"`` makes it raise.
    Production callers leave it None.
    """

    index: int
    name: str
    program: object  # DoLoop | LoopBody (picklable either way)
    algorithm: str = "slack"
    options: Optional[object] = None  # SchedulerOptions
    machine: Optional[object] = None  # Machine; None = batch default
    key: Optional[str] = None  # content-addressed cache key, if computed
    fault: Optional[str] = None


@dataclasses.dataclass
class JobResult:
    """Outcome of one job."""

    index: int
    name: str
    status: str
    metrics: Optional[LoopMetrics] = None
    error: Optional[str] = None
    seconds: float = 0.0  # worker-side wall time (0.0 for cached)
    retries: int = 0  # crash-recovery resubmissions this job survived
    #: Flight-recorder dump (oldest-first event dicts) attached to
    #: failure records only: the last scheduler decisions in flight
    #: when the job timed out, raised, or killed its worker.
    flight: Optional[List[dict]] = None

    def __post_init__(self) -> None:
        if self.status not in JOB_STATUSES:
            raise ValueError(
                f"unknown job status {self.status!r}; pick from {sorted(JOB_STATUSES)}"
            )

    @property
    def ok(self) -> bool:
        """True when the job produced usable metrics."""
        return self.status in (JOB_OK, JOB_CACHED)


def make_jobs(
    programs: Sequence[object],
    algorithm: str = "slack",
    options=None,
    faults: Optional[Dict[int, str]] = None,
    machines: Optional[Sequence[object]] = None,
) -> List[ScheduleJob]:
    """Wrap programs (DoLoop or LoopBody) into indexed jobs.

    ``machines``, when given, must be one machine (or None) per program;
    entries override the batch default machine for that job only.
    """
    faults = faults or {}
    if machines is not None and len(machines) != len(programs):
        raise ValueError(
            f"machines ({len(machines)}) must match programs ({len(programs)})"
        )
    return [
        ScheduleJob(
            index=index,
            name=getattr(program, "name", f"loop{index}"),
            program=program,
            algorithm=algorithm,
            options=options,
            machine=machines[index] if machines is not None else None,
            fault=faults.get(index),
        )
        for index, program in enumerate(programs)
    ]


def order_results(results: Sequence[JobResult]) -> List[JobResult]:
    """Deterministic result order: by submission index.

    Raises ``ValueError`` on duplicate indices — a batch must produce
    exactly one result per job, whatever path (cache, pool, serial
    fallback, crash handling) it took.
    """
    ordered = sorted(results, key=lambda result: result.index)
    for previous, current in zip(ordered, ordered[1:]):
        if previous.index == current.index:
            raise ValueError(f"duplicate result for job index {current.index}")
    return ordered
