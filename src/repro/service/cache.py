"""Content-addressed result caches behind one ``CacheBackend`` protocol.

Two storage backends share one key schema, one JSON payload envelope
and one eviction policy:

``DirectoryCache``
    One JSON blob per result at ``<root>/<key[:2]>/<key>.json``
    (two-level fan-out keeps directories small on big corpora).  Writes
    are atomic — the blob lands in a same-directory temp file and is
    ``os.replace``d into place — so a crashed or parallel writer can
    never leave a half-written entry behind a valid name.

``SQLiteCache``
    A single-file sqlite database in WAL mode (readers never block the
    writer and vice versa), same key schema and payload envelope.  One
    file instead of thousands makes the cache trivially shareable —
    copy it between CI runs, mount it read-mostly, ship it as an
    artifact.  :meth:`SQLiteCache.import_directory` migrates
    directory-cache entries in bulk, preserving their timestamps.

Reads on both backends are corruption-tolerant: any unreadable,
unparsable, schema-mismatched or field-mismatched entry is treated as a
miss and the caller recomputes (and overwrites) it.  A cache is
therefore purely an accelerator; it can be deleted, truncated or
corrupted at any time without changing results.

Both backends also expose :meth:`CacheBackend.entries` /
:meth:`CacheBackend.remove`, which is all :func:`collect_garbage`
needs — eviction (``batch --gc``) is written once against the protocol
and works identically for directories and sqlite files.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from typing import Iterator, Optional

from repro.canonical import canonical_dumps
from repro.experiments.metrics import LoopMetrics

#: Payload envelope identifiers; version bumps invalidate old entries.
RESULT_SCHEMA = "repro.service.result"
RESULT_SCHEMA_VERSION = 1


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache's lifetime in this process."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0  # entries that existed but could not be trusted
    writes: int = 0
    write_errors: int = 0


def metrics_to_payload(key: str, metrics: LoopMetrics) -> dict:
    """Wrap a LoopMetrics into the on-disk JSON envelope."""
    return {
        "schema": RESULT_SCHEMA,
        "schema_version": RESULT_SCHEMA_VERSION,
        "key": key,
        "metrics": dataclasses.asdict(metrics),
    }


def payload_to_metrics(payload: dict) -> LoopMetrics:
    """Strictly decode an envelope back into a LoopMetrics.

    Raises ``ValueError`` on any mismatch — wrong schema, wrong version,
    or a field set that does not exactly match the current dataclass
    (e.g. an entry written by an older code revision).  Callers treat
    the error as a cache miss.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload is not an object")
    if payload.get("schema") != RESULT_SCHEMA:
        raise ValueError(f"unexpected schema {payload.get('schema')!r}")
    if payload.get("schema_version") != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema_version')!r}"
        )
    record = payload.get("metrics")
    if not isinstance(record, dict):
        raise ValueError("missing metrics record")
    expected = {field.name for field in dataclasses.fields(LoopMetrics)}
    found = set(record)
    if found != expected:
        raise ValueError(
            f"metrics fields do not match: missing {sorted(expected - found)}, "
            f"unknown {sorted(found - expected)}"
        )
    return LoopMetrics(**record)


@dataclasses.dataclass
class CacheEntry:
    """One stored result as the garbage collector sees it."""

    key: str
    size_bytes: int
    created_unix: float
    #: Last read time.  SQLite records it exactly (updated on every
    #: hit); directory caches approximate it with the file mtime, which
    #: equals creation time until the entry is rewritten.
    accessed_unix: float = 0.0

    def __post_init__(self):
        if not self.accessed_unix:
            self.accessed_unix = self.created_unix


class CacheBackend:
    """Storage protocol: get/put for the batch path, entries/remove for GC."""

    stats: CacheStats

    def get(self, key: str) -> Optional[LoopMetrics]:
        raise NotImplementedError

    def put(self, key: str, metrics: LoopMetrics) -> bool:
        raise NotImplementedError

    def entries(self) -> Iterator[CacheEntry]:
        raise NotImplementedError

    def remove(self, key: str) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (no-op for directory caches)."""

    def describe(self) -> str:
        """One-word-ish location string for CLI summaries."""
        raise NotImplementedError


class DirectoryCache(CacheBackend):
    """A content-addressed LoopMetrics cache rooted at one directory."""

    def __init__(self, root: str):
        self.root = root
        self.stats = CacheStats()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def describe(self) -> str:
        return f"dir:{self.root}"

    def get(self, key: str) -> Optional[LoopMetrics]:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            metrics = payload_to_metrics(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, TypeError) as _:
            # Unreadable, truncated, hand-edited, or written by an
            # incompatible revision: recompute rather than trust it.
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return metrics

    def put(self, key: str, metrics: LoopMetrics) -> bool:
        """Atomically store a result.  Best-effort: returns False (and
        counts a write error) instead of raising when the filesystem
        refuses — a cache that cannot be written degrades to recompute,
        it never fails the batch."""
        path = self.path_for(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{key[:8]}.", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(canonical_dumps(metrics_to_payload(key, metrics)))
                    handle.write("\n")
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.write_errors += 1
            return False
        self.stats.writes += 1
        return True

    def entries(self) -> Iterator[CacheEntry]:
        """Every stored entry, discovered by walking the fan-out dirs."""
        try:
            fans = sorted(os.listdir(self.root))
        except OSError:
            return
        for fan in fans:
            fan_dir = os.path.join(self.root, fan)
            if not os.path.isdir(fan_dir):
                continue
            try:
                names = sorted(os.listdir(fan_dir))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(fan_dir, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                yield CacheEntry(
                    key=name[: -len(".json")],
                    size_bytes=stat.st_size,
                    created_unix=stat.st_mtime,
                    accessed_unix=stat.st_mtime,
                )

    def remove(self, key: str) -> bool:
        path = self.path_for(key)
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        except OSError:
            return False
        # Opportunistically drop an emptied fan-out directory.
        try:
            os.rmdir(os.path.dirname(path))
        except OSError:
            pass
        return True


#: Backwards-compatible alias (PR 3 exposed the directory layout as
#: ``ResultCache``; the protocol split kept the name pointing at it).
ResultCache = DirectoryCache


class SQLiteCache(CacheBackend):
    """Single-file sqlite result cache (WAL mode, shared across runs)."""

    def __init__(self, path: str, threadsafe: bool = False):
        import sqlite3

        self.path = path
        self.stats = CacheStats()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # Autocommit (isolation_level=None) keeps puts single-statement
        # atomic without long write transactions; WAL lets concurrent
        # CI runs read while one writes.  ``threadsafe=True`` lets one
        # connection be shared across threads — the caller must then
        # serialize access itself (the server wraps the backend in a
        # lock; autocommit keeps each statement atomic regardless).
        self._conn = sqlite3.connect(
            path,
            timeout=30.0,
            isolation_level=None,
            check_same_thread=not threadsafe,
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY,"
            " payload TEXT NOT NULL,"
            " size_bytes INTEGER NOT NULL,"
            " created_unix REAL NOT NULL,"
            " accessed_unix REAL)"
        )
        # Databases written before LRU support lack the column; add it
        # in place (NULL rows fall back to created_unix on read).
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(results)")
        }
        if "accessed_unix" not in columns:
            self._conn.execute(
                "ALTER TABLE results ADD COLUMN accessed_unix REAL"
            )

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:  # pragma: no cover - close is best-effort
            pass

    def get(self, key: str) -> Optional[LoopMetrics]:
        import sqlite3

        try:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        if row is None:
            self.stats.misses += 1
            return None
        try:
            metrics = payload_to_metrics(json.loads(row[0]))
        except (ValueError, TypeError):
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        # Record the read so --gc-policy lru can keep hot entries; a
        # failed touch (read-only mount, concurrent vacuum) must not
        # turn the hit into anything else.
        try:
            self._conn.execute(
                "UPDATE results SET accessed_unix = ? WHERE key = ?",
                (time.time(), key),
            )
        except sqlite3.Error:
            pass
        self.stats.hits += 1
        return metrics

    def put(self, key: str, metrics: LoopMetrics, created_unix: Optional[float] = None) -> bool:
        import sqlite3

        payload = canonical_dumps(metrics_to_payload(key, metrics))
        stamp = time.time() if created_unix is None else created_unix
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO results"
                " (key, payload, size_bytes, created_unix, accessed_unix)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    key,
                    payload,
                    len(payload.encode("utf-8")),
                    stamp,
                    stamp,
                ),
            )
        except sqlite3.Error:
            self.stats.write_errors += 1
            return False
        self.stats.writes += 1
        return True

    def entries(self) -> Iterator[CacheEntry]:
        import sqlite3

        try:
            rows = self._conn.execute(
                "SELECT key, size_bytes, created_unix,"
                " COALESCE(accessed_unix, created_unix)"
                " FROM results ORDER BY key"
            ).fetchall()
        except sqlite3.Error:
            return
        for key, size_bytes, created_unix, accessed_unix in rows:
            yield CacheEntry(
                key=key,
                size_bytes=size_bytes,
                created_unix=created_unix,
                accessed_unix=accessed_unix,
            )

    def remove(self, key: str) -> bool:
        import sqlite3

        try:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE key = ?", (key,)
            )
        except sqlite3.Error:
            return False
        return cursor.rowcount > 0

    def import_directory(self, root: str) -> int:
        """Bulk-import a :class:`DirectoryCache`'s entries.

        Each blob is strictly validated before insertion (a corrupt
        directory entry is skipped, not propagated) and keeps its file
        mtime as ``created_unix`` so age-based GC stays meaningful.
        Existing sqlite entries win over imported ones.  Returns the
        number of entries imported.
        """
        source = DirectoryCache(root)
        imported = 0
        for entry in source.entries():
            metrics = source.get(entry.key)
            if metrics is None:
                continue
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (entry.key,)
            ).fetchone()
            if row is not None:
                continue
            if self.put(entry.key, metrics, created_unix=entry.created_unix):
                imported += 1
        return imported


def open_cache(
    cache_dir: Optional[str] = None,
    cache_db: Optional[str] = None,
    cache_url: Optional[str] = None,
    cache_fallback_dir: Optional[str] = None,
    auth_token: Optional[str] = None,
) -> Optional[CacheBackend]:
    """Pick a backend from the CLI-style trio of location options.

    ``cache_url`` selects the HTTP backend (:mod:`repro.server`'s
    shared warm cache); ``cache_fallback_dir`` then names the local
    directory cache the client degrades to when the server is
    unreachable (None = degrade to recompute).  The three locations are
    mutually exclusive; ``auth_token`` only applies to ``cache_url``.
    """
    locations = [x for x in (cache_dir, cache_db, cache_url) if x is not None]
    if len(locations) > 1:
        raise ValueError(
            "pass at most one of cache_dir, cache_db and cache_url"
        )
    if cache_url is not None:
        from repro.server.httpcache import HTTPCache

        fallback = (
            DirectoryCache(cache_fallback_dir) if cache_fallback_dir else None
        )
        return HTTPCache(cache_url, fallback=fallback, auth_token=auth_token)
    if cache_db is not None:
        return SQLiteCache(cache_db)
    if cache_dir is not None:
        return DirectoryCache(cache_dir)
    return None


# ----------------------------------------------------------------------
# Garbage collection (batch --gc): one policy, every backend
# ----------------------------------------------------------------------
@dataclasses.dataclass
class GCReport:
    """What one eviction pass did."""

    examined: int = 0
    removed: int = 0
    errors: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    def summary(self) -> str:
        return (
            f"gc: examined {self.examined} entries "
            f"({self.bytes_before / 1e6:.2f} MB), removed {self.removed} "
            f"({(self.bytes_before - self.bytes_after) / 1e6:.2f} MB), "
            f"kept {self.examined - self.removed} "
            f"({self.bytes_after / 1e6:.2f} MB)"
            + (f", {self.errors} error(s)" if self.errors else "")
        )


#: Eviction orders: which per-entry timestamp drives aging and sorting.
GC_POLICIES = ("oldest", "lru")


def collect_garbage(
    backend: CacheBackend,
    max_bytes: Optional[int] = None,
    max_age_seconds: Optional[float] = None,
    now: Optional[float] = None,
    policy: str = "oldest",
) -> GCReport:
    """Evict entries until the cache fits its bounds.

    ``policy`` picks the timestamp that orders eviction (and ages
    entries against ``max_age_seconds``): ``"oldest"`` uses creation
    time, ``"lru"`` uses last access — sqlite backends record reads
    exactly, directory caches approximate access with file mtime.
    Either way the least-valuable entries go first, so a size bound
    keeps the youngest (or most recently used) entries: an entry is
    evicted when it is older than ``max_age_seconds``, or while the
    total size still exceeds ``max_bytes``.  With neither bound set,
    nothing is evicted — the report is a dry inventory.  Works against
    any :class:`CacheBackend`; eviction failures are counted, never
    raised.
    """
    if policy not in GC_POLICIES:
        raise ValueError(
            f"unknown gc policy {policy!r}; pick from {', '.join(GC_POLICIES)}"
        )
    now = time.time() if now is None else now
    stamp = (
        (lambda e: e.accessed_unix)
        if policy == "lru"
        else (lambda e: e.created_unix)
    )
    entries = sorted(backend.entries(), key=lambda e: (stamp(e), e.key))
    report = GCReport(examined=len(entries))
    total = sum(entry.size_bytes for entry in entries)
    report.bytes_before = total
    for entry in entries:
        expired = (
            max_age_seconds is not None and now - stamp(entry) > max_age_seconds
        )
        over_budget = max_bytes is not None and total > max_bytes
        if not (expired or over_budget):
            continue
        if backend.remove(entry.key):
            report.removed += 1
            total -= entry.size_bytes
        else:
            report.errors += 1
    report.bytes_after = total
    return report
