"""Content-addressed on-disk cache of per-loop scheduling results.

Layout: one JSON blob per result at ``<root>/<key[:2]>/<key>.json``
(two-level fan-out keeps directories small on big corpora).  Writes are
atomic — the blob lands in a same-directory temp file and is
``os.replace``d into place — so a crashed or parallel writer can never
leave a half-written entry behind a valid name.  Reads are
corruption-tolerant: any unreadable, unparsable, schema-mismatched or
field-mismatched entry is treated as a miss and the caller recomputes
(and overwrites) it.  The cache is therefore purely an accelerator; it
can be deleted, truncated or corrupted at any time without changing
results.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Optional

from repro.experiments.metrics import LoopMetrics

#: Payload envelope identifiers; version bumps invalidate old entries.
RESULT_SCHEMA = "repro.service.result"
RESULT_SCHEMA_VERSION = 1


@dataclasses.dataclass
class CacheStats:
    """Counters for one cache's lifetime in this process."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0  # entries that existed but could not be trusted
    writes: int = 0
    write_errors: int = 0


def metrics_to_payload(key: str, metrics: LoopMetrics) -> dict:
    """Wrap a LoopMetrics into the on-disk JSON envelope."""
    return {
        "schema": RESULT_SCHEMA,
        "schema_version": RESULT_SCHEMA_VERSION,
        "key": key,
        "metrics": dataclasses.asdict(metrics),
    }


def payload_to_metrics(payload: dict) -> LoopMetrics:
    """Strictly decode an envelope back into a LoopMetrics.

    Raises ``ValueError`` on any mismatch — wrong schema, wrong version,
    or a field set that does not exactly match the current dataclass
    (e.g. an entry written by an older code revision).  Callers treat
    the error as a cache miss.
    """
    if not isinstance(payload, dict):
        raise ValueError("payload is not an object")
    if payload.get("schema") != RESULT_SCHEMA:
        raise ValueError(f"unexpected schema {payload.get('schema')!r}")
    if payload.get("schema_version") != RESULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {payload.get('schema_version')!r}"
        )
    record = payload.get("metrics")
    if not isinstance(record, dict):
        raise ValueError("missing metrics record")
    expected = {field.name for field in dataclasses.fields(LoopMetrics)}
    found = set(record)
    if found != expected:
        raise ValueError(
            f"metrics fields do not match: missing {sorted(expected - found)}, "
            f"unknown {sorted(found - expected)}"
        )
    return LoopMetrics(**record)


class ResultCache:
    """A content-addressed LoopMetrics cache rooted at one directory."""

    def __init__(self, root: str):
        self.root = root
        self.stats = CacheStats()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[LoopMetrics]:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            metrics = payload_to_metrics(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, TypeError) as _:
            # Unreadable, truncated, hand-edited, or written by an
            # incompatible revision: recompute rather than trust it.
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return metrics

    def put(self, key: str, metrics: LoopMetrics) -> bool:
        """Atomically store a result.  Best-effort: returns False (and
        counts a write error) instead of raising when the filesystem
        refuses — a cache that cannot be written degrades to recompute,
        it never fails the batch."""
        path = self.path_for(key)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{key[:8]}.", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(metrics_to_payload(key, metrics), handle, sort_keys=True)
                    handle.write("\n")
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.write_errors += 1
            return False
        self.stats.writes += 1
        return True
