"""Cross-process observability spools for the execution backends.

Tracer, profiler and metrics hooks are in-process objects; a worker
process cannot emit into the parent's instances.  Instead, every
observed job writes one JSONL *spool file* — its trace events, a
full-fidelity metrics dump, and a profiler snapshot — and the parent
merges the spools back in **submission order** after the pool drains.
The merged stream is therefore deterministic: per-loop event content
and sequence numbers are identical whether the batch ran with one job
or many (only wall-clock timestamps differ), which is the contract the
``--trace``-parity tests and CI assert.

Spool file layout (``<spool_dir>/job-<index>.jsonl``)::

    {"type": "spool", "schema": ..., "version": 1, "job": 3, "loop": "..."}
    {"type": "event", "kind": "place", "oid": 4, "cycle": 7, ...}
    ...
    {"type": "metrics", "dump": {...}}     # MetricsRegistry.dump()
    {"type": "profile", "snapshot": {...}} # Profiler.snapshot()

Every backend (including the in-process serial one) goes through the
same write/merge path, so "observability at jobs=1" and "observability
at jobs=N" are one code path, not two that can drift.  A spool that is
missing or unreadable is *reported* — a ``service.trace_spool.*``
counter plus a one-line log warning — never silently dropped; that is
the fix for the pre-refactor behavior where ``run_corpus(jobs>1)``
discarded tracer/profiler hooks without a word.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import TraceEvent, Tracer, event_from_dict

logger = logging.getLogger("repro.service")

SPOOL_SCHEMA = "repro.service.spool"
SPOOL_SCHEMA_VERSION = 1


class SpoolError(ValueError):
    """A spool file exists but cannot be trusted (merge counts corrupt)."""


def spool_path(spool_dir: str, index: int) -> str:
    return os.path.join(spool_dir, f"job-{index:06d}.jsonl")


def write_spool(
    spool_dir: str,
    index: int,
    loop: str,
    events: Sequence[TraceEvent],
    metrics_dump: Optional[dict] = None,
    profile_snapshot: Optional[dict] = None,
) -> bool:
    """Write one job's observability record.  Best-effort: a spool that
    cannot be written degrades to a reported gap at merge time, it never
    fails the job."""
    lines = [
        json.dumps(
            {
                "type": "spool",
                "schema": SPOOL_SCHEMA,
                "version": SPOOL_SCHEMA_VERSION,
                "job": index,
                "loop": loop,
            },
            sort_keys=True,
        )
    ]
    for event in events:
        lines.append(json.dumps({"type": "event", **event.to_dict()}, sort_keys=True))
    if metrics_dump is not None:
        lines.append(json.dumps({"type": "metrics", "dump": metrics_dump}, sort_keys=True))
    if profile_snapshot is not None:
        lines.append(
            json.dumps({"type": "profile", "snapshot": profile_snapshot}, sort_keys=True)
        )
    try:
        with open(spool_path(spool_dir, index), "w") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError:
        return False
    return True


@dataclasses.dataclass
class SpoolRecord:
    """One job's spool, decoded back into typed objects."""

    job: int
    loop: str
    events: List[TraceEvent]
    metrics_dump: Optional[dict] = None
    profile_snapshot: Optional[dict] = None


def read_spool(spool_dir: str, index: int) -> SpoolRecord:
    """Decode one spool file.

    Raises ``FileNotFoundError`` when absent and :class:`SpoolError` on
    any structural problem (truncation, bad JSON, wrong schema) — the
    merge step converts those into counters, not crashes.
    """
    path = spool_path(spool_dir, index)
    with open(path) as handle:
        raw_lines = [line for line in handle.read().splitlines() if line.strip()]
    if not raw_lines:
        raise SpoolError(f"{path}: empty spool")
    try:
        records = [json.loads(line) for line in raw_lines]
    except json.JSONDecodeError as error:
        raise SpoolError(f"{path}: {error}") from error
    header = records[0]
    if (
        not isinstance(header, dict)
        or header.get("type") != "spool"
        or header.get("schema") != SPOOL_SCHEMA
        or header.get("version") != SPOOL_SCHEMA_VERSION
    ):
        raise SpoolError(f"{path}: bad spool header")
    record = SpoolRecord(
        job=int(header.get("job", index)),
        loop=str(header.get("loop", "")),
        events=[],
    )
    try:
        for entry in records[1:]:
            kind = entry.get("type")
            if kind == "event":
                payload = {k: v for k, v in entry.items() if k != "type"}
                record.events.append(event_from_dict(payload))
            elif kind == "metrics":
                record.metrics_dump = entry["dump"]
            elif kind == "profile":
                record.profile_snapshot = entry["snapshot"]
            else:
                raise SpoolError(f"{path}: unknown record type {kind!r}")
    except (KeyError, TypeError, ValueError) as error:
        raise SpoolError(f"{path}: {error}") from error
    return record


@dataclasses.dataclass
class SpoolMergeStats:
    """What the parent-side merge found."""

    merged: int = 0  # jobs whose spool was read and folded in
    events: int = 0  # trace events forwarded
    missing: int = 0  # ok jobs with no spool file (degraded observability)
    corrupt: int = 0  # spools present but undecodable

    @property
    def degraded(self) -> bool:
        return bool(self.missing or self.corrupt)


def merge_spools(
    spool_dir: str,
    results: Sequence,  # JobResults, already in submission order
    tracer: Optional[Tracer] = None,
    metrics=None,  # MetricsRegistry
    profiler=None,  # Profiler
) -> Tuple[List[dict], SpoolMergeStats]:
    """Fold every computed job's spool into the session-level sinks.

    Returns ``(trace_records, stats)`` where ``trace_records`` is the
    merged JSONL-ready stream: each event dict annotated with its
    ``loop`` name and ``job`` index, in submission order, sequence
    numbers job-local.  Cached results are skipped (a cache hit replays
    no scheduler decisions); a missing spool only counts as a gap for
    jobs that *completed* in a worker (a crashed worker writes nothing,
    which the job status already reports).
    """
    from repro.service.jobs import JOB_CACHED, JOB_OK

    stats = SpoolMergeStats()
    trace_records: List[dict] = []
    for result in results:
        if result.status == JOB_CACHED:
            continue
        try:
            record = read_spool(spool_dir, result.index)
        except FileNotFoundError:
            if result.status == JOB_OK:
                stats.missing += 1
            continue
        except SpoolError:
            stats.corrupt += 1
            continue
        stats.merged += 1
        stats.events += len(record.events)
        for event in record.events:
            trace_records.append(
                {**event.to_dict(), "loop": record.loop, "job": record.job}
            )
            if tracer is not None and tracer.enabled:
                tracer.emit(event)
        if metrics is not None and record.metrics_dump is not None:
            metrics.merge_dump(record.metrics_dump)
        if profiler is not None and record.profile_snapshot is not None:
            profiler.merge_snapshot(record.profile_snapshot)
    return trace_records, stats


def record_spool_stats(metrics, stats: SpoolMergeStats) -> None:
    """Mirror merge stats into ``service.trace_spool.*`` counters and
    emit the one-line (never silent) summary log."""
    if metrics is not None:
        metrics.counter("service.trace_spool.merged").inc(stats.merged)
        metrics.counter("service.trace_spool.events").inc(stats.events)
        metrics.counter("service.trace_spool.missing").inc(stats.missing)
        metrics.counter("service.trace_spool.corrupt").inc(stats.corrupt)
    if stats.degraded:
        logger.warning(
            "trace spool gap: %d missing, %d corrupt (merged %d job spool(s))",
            stats.missing,
            stats.corrupt,
            stats.merged,
        )
    elif stats.merged:
        logger.info(
            "merged %d trace spool(s), %d event(s)", stats.merged, stats.events
        )


def write_trace_records(records: Sequence[dict], path: str) -> None:
    """Write merged trace records as JSONL (one event dict per line)."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
