"""Pluggable execution backends for the batch scheduling service.

An :class:`ExecutionBackend` turns a list of :class:`ScheduleJob`\\ s
into submission-ordered :class:`JobResult`\\ s plus a
:class:`PoolStats`.  Three strategies ship:

``SerialBackend``
    In-process loop.  No isolation, no pickling; the baseline every
    other backend must match byte-for-byte (modulo wall-clock fields).

``ProcessBackend``
    One future per job on a ``ProcessPoolExecutor`` — the PR-3
    behavior, refactored out of ``pool.run_jobs``.  Every payload
    pickles the job's whole ``(program, machine)``, which is what made
    small-corpus speedup ~1.1×: the machine description dwarfs most
    loop bodies.

``ChunkedProcessBackend``
    Jobs are submitted in per-worker *chunks* and machines are shipped
    once per worker through the pool initializer, keyed by
    :func:`repro.service.keys.machine_digest`.  A worker deserializes
    each distinct machine exactly once and every chunk payload carries
    only digests, so the dominant per-job pickling cost becomes
    O(distinct machines × workers) instead of O(jobs).  Chunking also
    amortizes executor future overhead.  Heterogeneous batches (per-job
    machines) ride the same table: jobs referencing the same machine
    share the worker-resident copy regardless of interleaving.

All three speak the same fault-tolerance protocol (in-worker ``SIGALRM``
budgets, pool-side backstop, crash quarantine with bounded backoff —
see :mod:`repro.service.pool`) and the same observability protocol
(per-job spool files, see :mod:`repro.service.spool`; per-job progress
events, see :mod:`repro.obs.progress`), so results, merged traces,
merged metrics and per-job progress sequences are identical across
backends and chunk sizes; only wall-clock (and cross-job interleaving
of the progress stream) changes.

Progress contract: every backend emits ``started`` when it dispatches a
job and exactly one terminal ``finished``/``failed`` event when that
job's result materializes — including synthesized backstop-timeout
results — plus ``quarantined`` before any crash-recovery resubmission.
``progress`` is a plain callable (``ProgressTracker.emit``); ``None``
(the default) skips every emission.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import math
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.progress import (
    KIND_QUARANTINED,
    KIND_STARTED,
    job_event,
    result_event,
)
from repro.service.jobs import (
    JOB_FAILED,
    JOB_TIMEOUT,
    JobResult,
    ScheduleJob,
    order_results,
)
from repro.service.pool import (
    BACKSTOP_GRACE,
    DEFAULT_FLIGHT_CAPACITY,
    PoolStats,
    _pool_worker,
    _tally,
    execute_job,
    run_quarantined,
)

#: Names accepted by :func:`resolve_backend` (and the CLI ``--backend``).
BACKEND_NAMES = ("auto", "serial", "process", "chunked")

#: Chunked backend: target this many chunks per worker so a slow chunk
#: cannot idle the rest of the pool for long (work stealing granularity).
CHUNKS_PER_WORKER = 4


class ExecutionBackend:
    """Strategy protocol: execute jobs, return ordered results + stats."""

    name: str = "?"

    def run(
        self,
        jobs: Sequence[ScheduleJob],
        machine,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.1,
        spool_dir: Optional[str] = None,
        progress=None,  # Optional[Callable[[ProgressEvent], None]]
        flight_dir: Optional[str] = None,
        flight_events: int = DEFAULT_FLIGHT_CAPACITY,
    ) -> Tuple[List[JobResult], PoolStats]:
        raise NotImplementedError


def _finish(
    stats: PoolStats, results: List[JobResult], started: float
) -> Tuple[List[JobResult], PoolStats]:
    import time

    stats.wall_seconds = time.perf_counter() - started
    ordered = order_results(results)
    _tally(stats, ordered)
    return ordered, stats


def _emit_started(progress, job: ScheduleJob) -> None:
    if progress is not None:
        progress(job_event(KIND_STARTED, job.index, job.name))


def _emit_result(progress, result: JobResult) -> None:
    if progress is not None:
        progress(result_event(result))


def _emit_quarantined(progress, job: ScheduleJob) -> None:
    if progress is not None:
        progress(job_event(KIND_QUARANTINED, job.index, job.name))


def _execute_serially(
    jobs: Sequence[ScheduleJob],
    machine,
    timeout: Optional[float],
    spool_dir: Optional[str],
    progress,
    flight_dir: Optional[str] = None,
    flight_events: int = DEFAULT_FLIGHT_CAPACITY,
) -> List[JobResult]:
    """The shared in-process path (serial backend + every fallback rung)."""
    results = []
    for job in jobs:
        _emit_started(progress, job)
        result = execute_job(
            job,
            machine,
            timeout,
            spool_dir=spool_dir,
            flight_dir=flight_dir,
            flight_events=flight_events,
        )
        _emit_result(progress, result)
        results.append(result)
    return results


class SerialBackend(ExecutionBackend):
    """In-process execution: the fallback rung and the jobs=1 default."""

    name = "serial"

    def run(
        self,
        jobs: Sequence[ScheduleJob],
        machine,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.1,
        spool_dir: Optional[str] = None,
        progress=None,
        flight_dir: Optional[str] = None,
        flight_events: int = DEFAULT_FLIGHT_CAPACITY,
    ) -> Tuple[List[JobResult], PoolStats]:
        import time

        stats = PoolStats(
            workers=1, jobs=len(jobs), backend=self.name, fallback_serial=True
        )
        started = time.perf_counter()
        results = _execute_serially(
            jobs, machine, timeout, spool_dir, progress,
            flight_dir=flight_dir, flight_events=flight_events,
        )
        return _finish(stats, results, started)


class ProcessBackend(ExecutionBackend):
    """One future per job on a process pool (whole request pickled)."""

    name = "process"

    def __init__(self, workers: int):
        self.workers = max(1, workers)

    def run(
        self,
        jobs: Sequence[ScheduleJob],
        machine,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.1,
        spool_dir: Optional[str] = None,
        progress=None,
        flight_dir: Optional[str] = None,
        flight_events: int = DEFAULT_FLIGHT_CAPACITY,
    ) -> Tuple[List[JobResult], PoolStats]:
        import time

        stats = PoolStats(workers=self.workers, jobs=len(jobs), backend=self.name)
        started = time.perf_counter()
        if self.workers <= 1 or len(jobs) <= 1:
            stats.fallback_serial = self.workers <= 1
            results = _execute_serially(
                jobs, machine, timeout, spool_dir, progress,
                flight_dir=flight_dir, flight_events=flight_events,
            )
            return _finish(stats, results, started)

        results: Dict[int, JobResult] = {}
        pending: List[ScheduleJob] = list(jobs)
        while pending:
            try:
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self.workers, len(pending))
                )
            except (OSError, ValueError, RuntimeError):
                # Degradation ladder, final rung: no subprocesses available.
                stats.fallback_serial = True
                for result in _execute_serially(
                    pending, machine, timeout, spool_dir, progress,
                    flight_dir=flight_dir, flight_events=flight_events,
                ):
                    results[result.index] = result
                pending = []
                break

            broken = False
            hung = False
            try:
                futures = {}
                for job in pending:
                    future = executor.submit(
                        _pool_worker,
                        (job, machine, timeout, spool_dir, flight_dir,
                         flight_events),
                    )
                    _emit_started(progress, job)
                    futures[future] = job
                backstop = None
                if timeout is not None and timeout > 0:
                    waves = math.ceil(len(pending) / max(1, self.workers))
                    backstop = waves * (timeout + BACKSTOP_GRACE) + BACKSTOP_GRACE
                try:
                    for future in concurrent.futures.as_completed(
                        futures, timeout=backstop
                    ):
                        job = futures[future]
                        try:
                            result = future.result()
                        except concurrent.futures.process.BrokenProcessPool:
                            broken = True
                            continue  # other done futures may still hold results
                        except concurrent.futures.CancelledError:
                            continue
                        results[job.index] = result
                        _emit_result(progress, result)
                except concurrent.futures.TimeoutError:
                    # SIGALRM-immune hang: give up on everything unfinished.
                    hung = True
                    for future, job in futures.items():
                        if job.index in results:
                            continue
                        if future.done() and not future.cancelled():
                            continue  # re-run next round; results are pure
                        results[job.index] = JobResult(
                            index=job.index,
                            name=job.name,
                            status=JOB_TIMEOUT,
                            error="backstop: worker unresponsive past its budget",
                        )
                        _emit_result(progress, results[job.index])
            finally:
                # Never block on a broken pool or a hung worker; abandoning
                # the stuck process is the price of finishing the batch.
                executor.shutdown(wait=not (broken or hung), cancel_futures=True)

            pending = [job for job in jobs if job.index not in results]
            if pending and broken:
                # A worker died and took the shared pool with it.  Which job
                # killed it is unknowable from here, so blame nobody:
                # quarantine every unfinished job in its own single-worker
                # pool, where a repeat offender can only crash itself.
                stats.rebuilds += 1
                for job in pending:
                    _emit_quarantined(progress, job)
                    results[job.index] = run_quarantined(
                        job, machine, timeout, max_retries, backoff, stats,
                        spool_dir=spool_dir, flight_dir=flight_dir,
                        flight_events=flight_events,
                    )
                    _emit_result(progress, results[job.index])
                pending = []

        return _finish(stats, list(results.values()), started)


# ----------------------------------------------------------------------
# Chunked backend: worker-resident machines + per-worker job chunks
# ----------------------------------------------------------------------
#: Worker-process-global machine table, installed by the pool
#: initializer.  Keyed by machine digest; populated once per worker.
_WORKER_MACHINES: Dict[str, object] = {}


def _chunk_worker_init(machines_blob: bytes) -> None:
    """Pool initializer: deserialize the machine table once per worker."""
    global _WORKER_MACHINES
    _WORKER_MACHINES = pickle.loads(machines_blob)


def _chunk_worker(
    payload: Tuple[
        List[Tuple[ScheduleJob, str]],
        Optional[float],
        Optional[str],
        Optional[str],
        int,
    ]
) -> List[JobResult]:
    """Run one chunk of (machine-stripped job, machine digest) entries."""
    entries, timeout, spool_dir, flight_dir, flight_events = payload
    results: List[JobResult] = []
    for job, digest in entries:
        resident = _WORKER_MACHINES.get(digest)
        if resident is None:  # pragma: no cover - defensive
            results.append(
                JobResult(
                    index=job.index,
                    name=job.name,
                    status=JOB_FAILED,
                    error=f"worker has no resident machine {digest[:12]}",
                )
            )
            continue
        results.append(
            execute_job(
                job,
                resident,
                timeout,
                spool_dir=spool_dir,
                flight_dir=flight_dir,
                flight_events=flight_events,
            )
        )
    return results


def _machine_table(
    jobs: Sequence[ScheduleJob], machine
) -> Tuple[Dict[str, object], List[str]]:
    """Digest table covering every job plus the per-job digest list.

    Digests are memoized by object identity, so a thousand jobs sharing
    one machine object hash it once.
    """
    from repro.service.keys import machine_digest

    digest_by_id: Dict[int, str] = {}
    table: Dict[str, object] = {}
    refs: List[str] = []
    for job in jobs:
        resolved = job.machine if job.machine is not None else machine
        digest = digest_by_id.get(id(resolved))
        if digest is None:
            digest = machine_digest(resolved)
            digest_by_id[id(resolved)] = digest
        table.setdefault(digest, resolved)
        refs.append(digest)
    return table, refs


class ChunkedProcessBackend(ExecutionBackend):
    """Chunked dispatch with worker-resident, digest-keyed machines."""

    name = "chunked"

    def __init__(self, workers: int, chunk_size: Optional[int] = None):
        self.workers = max(1, workers)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def _partition(self, pending: Sequence[ScheduleJob]) -> List[List[ScheduleJob]]:
        size = self.chunk_size or max(
            1, math.ceil(len(pending) / (self.workers * CHUNKS_PER_WORKER))
        )
        return [list(pending[i : i + size]) for i in range(0, len(pending), size)]

    def run(
        self,
        jobs: Sequence[ScheduleJob],
        machine,
        timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.1,
        spool_dir: Optional[str] = None,
        progress=None,
        flight_dir: Optional[str] = None,
        flight_events: int = DEFAULT_FLIGHT_CAPACITY,
    ) -> Tuple[List[JobResult], PoolStats]:
        import time

        stats = PoolStats(workers=self.workers, jobs=len(jobs), backend=self.name)
        started = time.perf_counter()
        if self.workers <= 1 or len(jobs) <= 1:
            stats.fallback_serial = self.workers <= 1
            results = _execute_serially(
                jobs, machine, timeout, spool_dir, progress,
                flight_dir=flight_dir, flight_events=flight_events,
            )
            return _finish(stats, results, started)

        table, refs = _machine_table(jobs, machine)
        machines_blob = pickle.dumps(table, protocol=pickle.HIGHEST_PROTOCOL)
        # Chunk payloads reference machines by digest only; strip the
        # per-job machine so it is never pickled twice.
        stripped = {
            job.index: dataclasses.replace(job, machine=None) for job in jobs
        }
        ref_of = {job.index: ref for job, ref in zip(jobs, refs)}

        results: Dict[int, JobResult] = {}
        pending: List[ScheduleJob] = list(jobs)
        while pending:
            chunks = self._partition(pending)
            try:
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self.workers, len(chunks)),
                    initializer=_chunk_worker_init,
                    initargs=(machines_blob,),
                )
            except (OSError, ValueError, RuntimeError):
                stats.fallback_serial = True
                for result in _execute_serially(
                    pending, machine, timeout, spool_dir, progress,
                    flight_dir=flight_dir, flight_events=flight_events,
                ):
                    results[result.index] = result
                pending = []
                break

            stats.chunks += len(chunks)
            broken = False
            hung = False
            try:
                futures = {}
                for chunk in chunks:
                    future = executor.submit(
                        _chunk_worker,
                        (
                            [(stripped[job.index], ref_of[job.index]) for job in chunk],
                            timeout,
                            spool_dir,
                            flight_dir,
                            flight_events,
                        ),
                    )
                    for job in chunk:
                        _emit_started(progress, job)
                    futures[future] = chunk
                backstop = None
                if timeout is not None and timeout > 0:
                    longest = max(len(chunk) for chunk in chunks)
                    waves = math.ceil(len(chunks) / max(1, self.workers))
                    backstop = (
                        waves * (longest * timeout + BACKSTOP_GRACE) + BACKSTOP_GRACE
                    )
                try:
                    for future in concurrent.futures.as_completed(
                        futures, timeout=backstop
                    ):
                        try:
                            chunk_results = future.result()
                        except concurrent.futures.process.BrokenProcessPool:
                            broken = True
                            continue
                        except concurrent.futures.CancelledError:
                            continue
                        for result in chunk_results:
                            results[result.index] = result
                            _emit_result(progress, result)
                except concurrent.futures.TimeoutError:
                    hung = True
                    for future, chunk in futures.items():
                        if future.done() and not future.cancelled():
                            continue  # re-run next round; results are pure
                        for job in chunk:
                            if job.index in results:
                                continue
                            results[job.index] = JobResult(
                                index=job.index,
                                name=job.name,
                                status=JOB_TIMEOUT,
                                error="backstop: worker unresponsive past its budget",
                            )
                            _emit_result(progress, results[job.index])
            finally:
                executor.shutdown(wait=not (broken or hung), cancel_futures=True)

            pending = [job for job in jobs if job.index not in results]
            if pending and broken:
                # Chunk granularity is lost on a crash: quarantine the
                # survivors job-by-job so one assassin cannot take its
                # chunkmates down with it a second time.
                stats.rebuilds += 1
                for job in pending:
                    _emit_quarantined(progress, job)
                    results[job.index] = run_quarantined(
                        job, machine, timeout, max_retries, backoff, stats,
                        spool_dir=spool_dir, flight_dir=flight_dir,
                        flight_events=flight_events,
                    )
                    _emit_result(progress, results[job.index])
                pending = []

        return _finish(stats, list(results.values()), started)


def resolve_backend(
    name: str,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    prefer_chunked: bool = True,
) -> ExecutionBackend:
    """Instantiate a backend by name.

    ``auto`` picks :class:`SerialBackend` for one worker and (by
    default) :class:`ChunkedProcessBackend` otherwise;
    ``prefer_chunked=False`` restores the per-job process pool for
    callers pinned to the historical strategy.
    """
    if name == "auto":
        if workers <= 1:
            return SerialBackend()
        if prefer_chunked:
            return ChunkedProcessBackend(workers, chunk_size)
        return ProcessBackend(workers)
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(workers)
    if name == "chunked":
        return ChunkedProcessBackend(workers, chunk_size)
    raise ValueError(
        f"unknown execution backend {name!r}; pick from {', '.join(BACKEND_NAMES)}"
    )
