"""Shared worker-pool machinery for the execution backends.

This module holds everything a backend (:mod:`repro.service.backends`)
needs to run jobs safely: the in-worker ``SIGALRM`` budget, fault
injection, observability spooling, crash quarantine, and the
:class:`PoolStats` record.  The execution *strategies* themselves —
serial in-process, one-future-per-job process pool, chunked process
pool with worker-resident machines — live in ``backends.py``;
:func:`run_jobs` survives as the historical entry point and simply
delegates to the auto-selected backend.

Fault-tolerance ladder (most to least capable, degrading gracefully):

1. ``ProcessPoolExecutor`` workers; each job is guarded *inside* the
   worker by a ``SIGALRM`` wall-clock budget, so a slow loop returns a
   structured ``timeout`` result without poisoning the pool.
2. If a worker process dies (segfault, ``os._exit``, OOM kill) the pool
   is broken; every job still missing a result is resubmitted to a
   fresh single-worker quarantine pool after an exponential backoff, a
   bounded number of times.  A job that keeps killing its worker
   exhausts its retries and is reported ``crashed`` — the rest of the
   batch still completes.
3. A worker that hangs hard enough to ignore ``SIGALRM`` (stuck in a C
   extension) trips the pool-side backstop deadline; unfinished jobs
   are reported ``timeout`` and the stuck processes are abandoned.
4. If process pools are unavailable at all, jobs run serially
   in-process — same results, no isolation.

Results are deterministic regardless of the path taken: the scheduler
itself is a pure function, and :func:`repro.service.jobs.order_results`
restores submission order.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import threading
import time
from typing import List, Optional, Sequence, Tuple

from repro.obs.trace import DEFAULT_FLIGHT_CAPACITY
from repro.service.jobs import (
    JOB_CRASHED,
    JOB_FAILED,
    JOB_OK,
    JOB_TIMEOUT,
    JobResult,
    ScheduleJob,
)

#: Seconds of slack granted on top of the per-job budget before the
#: pool-side backstop declares a worker unresponsive.
BACKSTOP_GRACE = 5.0

#: Fatal signals the flight recorder spills on before the worker dies.
#: SIGKILL/OOM-kill cannot be caught; those crashes leave no dump.
_FATAL_SIGNALS = ("SIGSEGV", "SIGBUS", "SIGABRT", "SIGILL", "SIGFPE")


class _JobTimeoutError(Exception):
    """Raised inside a worker when the SIGALRM budget expires."""


def _raise_timeout(signum, frame):  # pragma: no cover - trivial
    raise _JobTimeoutError()


def _inject_fault(fault: str) -> None:
    """Built-in fault injection (tests / resilience drills)."""
    if fault == "crash":
        # Die by signal rather than os._exit so the flight recorder's
        # fatal-signal handler (when installed) can spill the ring
        # first; the parent sees a dead worker either way.
        if hasattr(signal, "SIGSEGV"):
            os.kill(os.getpid(), signal.SIGSEGV)
        os._exit(13)  # non-POSIX fallback (and: signal somehow blocked)
    if fault == "exit":
        os._exit(13)  # the uncatchable drill: no handler, no dump
    if fault == "raise":
        raise RuntimeError("injected fault: raise")
    if fault.startswith("hang:"):
        time.sleep(float(fault.split(":", 1)[1]))
        return
    raise ValueError(f"unknown fault {fault!r}")


# ----------------------------------------------------------------------
# Flight-recorder spill files (crash forensics across process death)
# ----------------------------------------------------------------------
def flight_path(flight_dir: str, index: int) -> str:
    """Spill file for one job (mirrors the spool naming scheme)."""
    return os.path.join(flight_dir, f"flight-{index:06d}.json")


def _write_flight(flight_dir: str, job: ScheduleJob, recorder) -> None:
    """Spill the ring to disk (atomic rename; called from signal context)."""
    path = flight_path(flight_dir, job.index)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            json.dump(
                {"job": job.index, "name": job.name, "events": recorder.dump()},
                handle,
            )
        os.replace(tmp, path)
    except OSError:  # a failed spill must never mask the real fault
        pass


def load_flight(flight_dir: Optional[str], index: int) -> Optional[List[dict]]:
    """Read back a worker's spilled ring; None when absent or corrupt."""
    if flight_dir is None:
        return None
    try:
        with open(flight_path(flight_dir, index)) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    events = payload.get("events")
    return events if isinstance(events, list) and events else None


def attach_flight(result: JobResult, flight_dir: Optional[str]) -> JobResult:
    """Attach a spilled dump to a failure record that lacks one."""
    if result.ok or result.flight is not None:
        return result
    dump = load_flight(flight_dir, result.index)
    if dump is None:
        return result
    return dataclasses.replace(result, flight=dump)


class _FlightTee:
    """Forward events to a primary tracer AND the flight ring.

    Used when a job is both spooling a full trace and flight-recording:
    the :class:`~repro.obs.trace.CollectingTracer` stamps seq/ts as
    before (so spool output is unchanged) and the ring keeps a
    reference to the last N of the same events.
    """

    enabled = True

    def __init__(self, primary, flight):
        self.primary = primary
        self.flight = flight

    def emit(self, event) -> None:
        self.primary.emit(event)
        self.flight.append(event)


def execute_job(
    job: ScheduleJob,
    machine,
    timeout: Optional[float] = None,
    spool_dir: Optional[str] = None,
    flight_dir: Optional[str] = None,
    flight_events: int = DEFAULT_FLIGHT_CAPACITY,
) -> JobResult:
    """Run one job to a structured result; never raises.

    ``job.machine`` (when set) overrides the batch-default ``machine``.
    With a ``spool_dir``, the job runs under its own tracer, metrics
    registry and profiler and writes their contents to a per-job spool
    file (:mod:`repro.service.spool`) for the parent to merge — that is
    how ``--trace``/``--explain`` cross process boundaries.

    ``flight_events > 0`` (the default) runs the job under a bounded
    :class:`~repro.obs.trace.FlightRecorder`; a timeout or raise
    attaches the ring dump to the returned failure record directly,
    and with a ``flight_dir`` a fatal signal (segfault/abort) spills
    the ring to disk before the process dies, for the parent to
    collect.  A worker hung in a C extension (backstop timeout) and a
    ``SIGKILL``/OOM kill leave no dump — those are the documented
    limits of in-process forensics.

    The wall-clock budget uses ``SIGALRM`` and therefore only applies on
    POSIX main threads (worker processes and the serial path both
    qualify); elsewhere the pool-side backstop is the only guard.
    """
    # Deferred import: repro.experiments.runner lazily imports this
    # package for its jobs= path, so a module-level import would cycle.
    from repro.experiments.runner import measure_loop

    machine = job.machine if job.machine is not None else machine
    tracer = registry = profiler = None
    if spool_dir is not None:
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.prof import Profiler
        from repro.obs.trace import CollectingTracer

        tracer = CollectingTracer()
        registry = MetricsRegistry()
        profiler = Profiler()

    recorder = None
    sched_tracer = tracer
    if flight_events and flight_events > 0:
        from repro.obs.trace import FlightRecorder, JobStart

        recorder = FlightRecorder(flight_events)
        recorder.emit(JobStart(job=job.index, loop=job.name))
        sched_tracer = (
            _FlightTee(tracer, recorder) if tracer is not None else recorder
        )

    on_main_thread = threading.current_thread() is threading.main_thread()
    installed_fatal: List[Tuple[int, object]] = []
    if recorder is not None and flight_dir is not None and on_main_thread:

        def _spill(signum, frame):  # pragma: no cover - dies immediately
            try:
                _write_flight(flight_dir, job, recorder)
            finally:
                os._exit(128 + signum)

        for name in _FATAL_SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                installed_fatal.append((signum, signal.signal(signum, _spill)))
            except (ValueError, OSError):  # non-main thread / exotic OS
                pass

    started = time.perf_counter()
    use_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and on_main_thread
    )
    previous_handler = None
    metrics = None
    try:
        if use_alarm:
            previous_handler = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        if job.fault:
            _inject_fault(job.fault)
        metrics = measure_loop(
            job.program,
            machine,
            algorithm=job.algorithm,
            options=job.options,
            tracer=sched_tracer,
            metrics=registry,
            profiler=profiler,
        )
        status, error = JOB_OK, None
    except _JobTimeoutError:
        status, error = JOB_TIMEOUT, f"exceeded {timeout:.4g}s wall-clock budget"
    except Exception as exc:  # job faults must not take down the batch
        status, error = JOB_FAILED, f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
        for signum, previous in installed_fatal:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):  # pragma: no cover - defensive
                pass
    if spool_dir is not None:
        # Written after the alarm is disarmed so a budget expiry cannot
        # truncate the spool mid-line; partial traces (timeout/failure)
        # are still recorded — they are the interesting ones.
        from repro.service.spool import write_spool

        write_spool(
            spool_dir,
            job.index,
            job.name,
            tracer.events,
            registry.dump(),
            profiler.snapshot(),
        )
    return JobResult(
        index=job.index,
        name=job.name,
        status=status,
        metrics=metrics,
        error=error,
        seconds=time.perf_counter() - started,
        flight=(
            recorder.dump()
            if recorder is not None and status != JOB_OK
            else None
        ),
    )


def _pool_worker(
    payload: Tuple[
        ScheduleJob, object, Optional[float], Optional[str], Optional[str], int
    ]
) -> JobResult:
    """Top-level per-job worker entry point (must be picklable by name)."""
    job, machine, timeout, spool_dir, flight_dir, flight_events = payload
    return execute_job(
        job,
        machine,
        timeout,
        spool_dir=spool_dir,
        flight_dir=flight_dir,
        flight_events=flight_events,
    )


@dataclasses.dataclass
class PoolStats:
    """What the pool did: throughput, faults, recovery effort."""

    workers: int
    jobs: int
    ok: int = 0
    failed: int = 0
    timeouts: int = 0
    crashes: int = 0
    retries: int = 0  # crash-recovery resubmissions across all jobs
    rebuilds: int = 0  # pools torn down and recreated after breakage
    fallback_serial: bool = False
    busy_seconds: float = 0.0  # sum of worker-side job wall times
    wall_seconds: float = 0.0
    backend: str = ""  # which ExecutionBackend produced these results
    chunks: int = 0  # chunked backend: futures submitted

    @property
    def utilization(self) -> float:
        """Fraction of worker capacity spent running jobs (0..1)."""
        capacity = self.wall_seconds * max(1, self.workers)
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)


def _tally(stats: PoolStats, results: Sequence[JobResult]) -> None:
    for result in results:
        stats.busy_seconds += result.seconds
        if result.status == JOB_OK:
            stats.ok += 1
        elif result.status == JOB_FAILED:
            stats.failed += 1
        elif result.status == JOB_TIMEOUT:
            stats.timeouts += 1
        elif result.status == JOB_CRASHED:
            stats.crashes += 1


def run_quarantined(
    job: ScheduleJob,
    machine,
    timeout: Optional[float],
    max_retries: int,
    backoff: float,
    stats: PoolStats,
    spool_dir: Optional[str] = None,
    flight_dir: Optional[str] = None,
    flight_events: int = DEFAULT_FLIGHT_CAPACITY,
) -> JobResult:
    """Run one job in an isolated single-worker pool, retrying crashes.

    Isolation turns "some worker died" into "THIS job kills workers":
    after ``max_retries`` resubmissions (with doubling backoff) the job
    is reported ``crashed`` without having disturbed any other job.
    A crashed verdict collects the worker's spilled flight-recorder
    ring (when one exists) so the failure record still names the ops
    in flight when the worker died.
    """
    import concurrent.futures

    attempt = 0
    while True:
        try:
            executor = concurrent.futures.ProcessPoolExecutor(max_workers=1)
        except (OSError, ValueError, RuntimeError):
            stats.fallback_serial = True
            return dataclasses.replace(
                execute_job(
                    job,
                    machine,
                    timeout,
                    spool_dir=spool_dir,
                    flight_dir=flight_dir,
                    flight_events=flight_events,
                ),
                retries=attempt,
            )
        hung = False
        broken = False
        try:
            future = executor.submit(
                _pool_worker,
                (job, machine, timeout, spool_dir, flight_dir, flight_events),
            )
            backstop = (
                timeout + BACKSTOP_GRACE
                if timeout is not None and timeout > 0
                else None
            )
            try:
                return dataclasses.replace(
                    future.result(timeout=backstop), retries=attempt
                )
            except concurrent.futures.TimeoutError:
                hung = True
                return JobResult(
                    index=job.index,
                    name=job.name,
                    status=JOB_TIMEOUT,
                    error="backstop: worker unresponsive past its budget",
                    retries=attempt,
                )
            except concurrent.futures.process.BrokenProcessPool:
                broken = True
        finally:
            executor.shutdown(wait=not (broken or hung), cancel_futures=True)
        attempt += 1
        if attempt > max_retries:
            return attach_flight(
                JobResult(
                    index=job.index,
                    name=job.name,
                    status=JOB_CRASHED,
                    error=f"worker died; gave up after {max_retries} resubmission(s)",
                    retries=attempt - 1,
                ),
                flight_dir,
            )
        stats.retries += 1
        if backoff > 0:
            time.sleep(min(5.0, backoff * (2 ** (attempt - 1))))


def run_jobs(
    jobs: Sequence[ScheduleJob],
    machine,
    workers: int = 1,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff: float = 0.1,
    spool_dir: Optional[str] = None,
    progress=None,
    flight_dir: Optional[str] = None,
    flight_events: int = DEFAULT_FLIGHT_CAPACITY,
) -> Tuple[List[JobResult], PoolStats]:
    """Historical entry point: auto-select a backend and execute.

    ``workers <= 1`` (or a single job) runs serially in-process; more
    workers use the per-job process backend.  New callers should go
    through :func:`repro.service.backends.resolve_backend`, which also
    offers the chunked backend.
    """
    from repro.service.backends import resolve_backend

    backend = resolve_backend("auto", workers=workers, prefer_chunked=False)
    return backend.run(
        jobs,
        machine,
        timeout=timeout,
        max_retries=max_retries,
        backoff=backoff,
        spool_dir=spool_dir,
        progress=progress,
        flight_dir=flight_dir,
        flight_events=flight_events,
    )
