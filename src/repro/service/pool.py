"""Fault-tolerant worker pool for batch scheduling jobs.

Execution ladder (most to least capable, degrading gracefully):

1. ``ProcessPoolExecutor`` with ``workers`` processes.  Each job is
   guarded *inside* the worker by a ``SIGALRM`` wall-clock budget, so a
   slow loop returns a structured ``timeout`` result without poisoning
   the pool.
2. If a worker process dies (segfault, ``os._exit``, OOM kill) the pool
   is broken; every job still missing a result is resubmitted to a
   fresh pool after an exponential backoff, a bounded number of times.
   A job that keeps killing its worker exhausts its retries and is
   reported ``crashed`` — the rest of the batch still completes.
3. A worker that hangs hard enough to ignore ``SIGALRM`` (stuck in a C
   extension) trips the pool-side backstop deadline; unfinished jobs
   are reported ``timeout`` and the stuck processes are abandoned.
4. If process pools are unavailable at all (or ``workers <= 1``), jobs
   run serially in-process — same results, no isolation.

Results are deterministic regardless of the path taken: the scheduler
itself is a pure function, and :func:`repro.service.jobs.order_results`
restores submission order.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import math
import os
import signal
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.jobs import (
    JOB_CRASHED,
    JOB_FAILED,
    JOB_OK,
    JOB_TIMEOUT,
    JobResult,
    ScheduleJob,
    order_results,
)

#: Seconds of slack granted on top of the per-job budget before the
#: pool-side backstop declares a worker unresponsive.
BACKSTOP_GRACE = 5.0


class _JobTimeoutError(Exception):
    """Raised inside a worker when the SIGALRM budget expires."""


def _raise_timeout(signum, frame):  # pragma: no cover - trivial
    raise _JobTimeoutError()


def _inject_fault(fault: str) -> None:
    """Built-in fault injection (tests / resilience drills)."""
    if fault == "crash":
        os._exit(13)
    if fault == "raise":
        raise RuntimeError("injected fault: raise")
    if fault.startswith("hang:"):
        time.sleep(float(fault.split(":", 1)[1]))
        return
    raise ValueError(f"unknown fault {fault!r}")


def execute_job(
    job: ScheduleJob, machine, timeout: Optional[float] = None
) -> JobResult:
    """Run one job to a structured result; never raises.

    The wall-clock budget uses ``SIGALRM`` and therefore only applies on
    POSIX main threads (worker processes and the serial path both
    qualify); elsewhere the pool-side backstop is the only guard.
    """
    # Deferred import: repro.experiments.runner lazily imports this
    # package for its jobs= path, so a module-level import would cycle.
    from repro.experiments.runner import measure_loop

    started = time.perf_counter()
    use_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    previous_handler = None
    metrics = None
    try:
        if use_alarm:
            previous_handler = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        if job.fault:
            _inject_fault(job.fault)
        metrics = measure_loop(
            job.program, machine, algorithm=job.algorithm, options=job.options
        )
        status, error = JOB_OK, None
    except _JobTimeoutError:
        status, error = JOB_TIMEOUT, f"exceeded {timeout:.4g}s wall-clock budget"
    except Exception as exc:  # job faults must not take down the batch
        status, error = JOB_FAILED, f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
    return JobResult(
        index=job.index,
        name=job.name,
        status=status,
        metrics=metrics,
        error=error,
        seconds=time.perf_counter() - started,
    )


def _pool_worker(payload: Tuple[ScheduleJob, object, Optional[float]]) -> JobResult:
    """Top-level worker entry point (must be picklable by name)."""
    job, machine, timeout = payload
    return execute_job(job, machine, timeout)


@dataclasses.dataclass
class PoolStats:
    """What the pool did: throughput, faults, recovery effort."""

    workers: int
    jobs: int
    ok: int = 0
    failed: int = 0
    timeouts: int = 0
    crashes: int = 0
    retries: int = 0  # crash-recovery resubmissions across all jobs
    rebuilds: int = 0  # pools torn down and recreated after breakage
    fallback_serial: bool = False
    busy_seconds: float = 0.0  # sum of worker-side job wall times
    wall_seconds: float = 0.0

    @property
    def utilization(self) -> float:
        """Fraction of worker capacity spent running jobs (0..1)."""
        capacity = self.wall_seconds * max(1, self.workers)
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)


def _tally(stats: PoolStats, results: Sequence[JobResult]) -> None:
    for result in results:
        stats.busy_seconds += result.seconds
        if result.status == JOB_OK:
            stats.ok += 1
        elif result.status == JOB_FAILED:
            stats.failed += 1
        elif result.status == JOB_TIMEOUT:
            stats.timeouts += 1
        elif result.status == JOB_CRASHED:
            stats.crashes += 1


def _run_serial(
    jobs: Sequence[ScheduleJob], machine, timeout: Optional[float]
) -> List[JobResult]:
    return [execute_job(job, machine, timeout) for job in jobs]


def run_jobs(
    jobs: Sequence[ScheduleJob],
    machine,
    workers: int = 1,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff: float = 0.1,
) -> Tuple[List[JobResult], PoolStats]:
    """Execute every job; return (results in submission order, stats).

    ``max_retries`` bounds how many times a job may be resubmitted after
    its pool broke underneath it; ``backoff`` seconds (doubling per
    rebuild) separate pool rebuilds so a crash-looping job cannot spin
    the host.
    """
    stats = PoolStats(workers=max(1, workers), jobs=len(jobs))
    started = time.perf_counter()
    if workers <= 1 or len(jobs) <= 1:
        results = _run_serial(jobs, machine, timeout)
        stats.fallback_serial = workers <= 1
        stats.wall_seconds = time.perf_counter() - started
        _tally(stats, results)
        return order_results(results), stats

    results: Dict[int, JobResult] = {}
    pending: List[ScheduleJob] = list(jobs)
    while pending:
        try:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(pending))
            )
        except (OSError, ValueError, RuntimeError):
            # Degradation ladder, final rung: no subprocesses available.
            stats.fallback_serial = True
            for job in pending:
                results[job.index] = execute_job(job, machine, timeout)
            pending = []
            break

        broken = False
        hung = False
        try:
            futures = {
                executor.submit(_pool_worker, (job, machine, timeout)): job
                for job in pending
            }
            backstop = None
            if timeout is not None and timeout > 0:
                waves = math.ceil(len(pending) / max(1, workers))
                backstop = waves * (timeout + BACKSTOP_GRACE) + BACKSTOP_GRACE
            try:
                for future in concurrent.futures.as_completed(futures, timeout=backstop):
                    job = futures[future]
                    try:
                        result = future.result()
                    except concurrent.futures.process.BrokenProcessPool:
                        broken = True
                        continue  # other done futures may still hold results
                    except concurrent.futures.CancelledError:
                        continue
                    results[job.index] = result
            except concurrent.futures.TimeoutError:
                # SIGALRM-immune hang: give up on everything unfinished.
                hung = True
                for future, job in futures.items():
                    if job.index in results:
                        continue
                    if future.done() and not future.cancelled():
                        continue  # re-run next round; results are pure
                    results[job.index] = JobResult(
                        index=job.index,
                        name=job.name,
                        status=JOB_TIMEOUT,
                        error="backstop: worker unresponsive past its budget",
                    )
        finally:
            # Never block on a broken pool or a hung worker; abandoning
            # the stuck process is the price of finishing the batch.
            executor.shutdown(wait=not (broken or hung), cancel_futures=True)

        pending = [job for job in jobs if job.index not in results]
        if pending and broken:
            # A worker died and took the shared pool with it.  Which job
            # killed it is unknowable from here, so blame nobody:
            # quarantine every unfinished job in its own single-worker
            # pool, where a repeat offender can only crash itself.
            stats.rebuilds += 1
            for job in pending:
                results[job.index] = _run_quarantined(
                    job, machine, timeout, max_retries, backoff, stats
                )
            pending = []

    stats.wall_seconds = time.perf_counter() - started
    ordered = order_results(list(results.values()))
    _tally(stats, ordered)
    return ordered, stats


def _run_quarantined(
    job: ScheduleJob,
    machine,
    timeout: Optional[float],
    max_retries: int,
    backoff: float,
    stats: PoolStats,
) -> JobResult:
    """Run one job in an isolated single-worker pool, retrying crashes.

    Isolation turns "some worker died" into "THIS job kills workers":
    after ``max_retries`` resubmissions (with doubling backoff) the job
    is reported ``crashed`` without having disturbed any other job.
    """
    attempt = 0
    while True:
        try:
            executor = concurrent.futures.ProcessPoolExecutor(max_workers=1)
        except (OSError, ValueError, RuntimeError):
            stats.fallback_serial = True
            return dataclasses.replace(
                execute_job(job, machine, timeout), retries=attempt
            )
        hung = False
        broken = False
        try:
            future = executor.submit(_pool_worker, (job, machine, timeout))
            backstop = (
                timeout + BACKSTOP_GRACE
                if timeout is not None and timeout > 0
                else None
            )
            try:
                return dataclasses.replace(
                    future.result(timeout=backstop), retries=attempt
                )
            except concurrent.futures.TimeoutError:
                hung = True
                return JobResult(
                    index=job.index,
                    name=job.name,
                    status=JOB_TIMEOUT,
                    error="backstop: worker unresponsive past its budget",
                    retries=attempt,
                )
            except concurrent.futures.process.BrokenProcessPool:
                broken = True
        finally:
            executor.shutdown(wait=not (broken or hung), cancel_futures=True)
        attempt += 1
        if attempt > max_retries:
            return JobResult(
                index=job.index,
                name=job.name,
                status=JOB_CRASHED,
                error=f"worker died; gave up after {max_retries} resubmission(s)",
                retries=attempt - 1,
            )
        stats.retries += 1
        if backoff > 0:
            time.sleep(min(5.0, backoff * (2 ** (attempt - 1))))
