"""Post-mortem analysis: turn a finished trace into a narrative report.

``explain(result, events)`` answers the questions the paper's own
evaluation keeps asking of every loop (§6, Tables 3-4):

* why the achieved II is what it is — ResMII vs RecMII, which resource
  is the bottleneck and how saturated each unit class is;
* how hard the scheduler worked — per-attempt placements, ejections,
  forced placements, bounds recomputations, cap growths, and the reason
  each II escalation happened;
* which operations were ejected most (the backtracking hot spots);
* register pressure: achieved MaxLive against the schedule-independent
  MinAvg lower bound;
* the MRT occupancy map and the lifetime chart (obs.render).

The report is derived *only* from public objects — a
:class:`~repro.core.schedule.ScheduleResult`, the trace event list, and
optionally a :class:`~repro.obs.metrics.MetricsRegistry` — so it can be
produced live by the CLI or offline from a loaded JSONL trace.
"""

from __future__ import annotations

import math
from collections import Counter as TallyCounter
from typing import Iterable, List, Optional

from repro.bounds.lifetimes import min_avg, rr_max_live
from repro.bounds.mindist import MinDist
from repro.bounds.resmii import unit_requirements
from repro.core.schedule import ScheduleResult
from repro.ir.ddg import DDG, build_ddg
from repro.obs.metrics import MetricsRegistry
from repro.obs.render import render_lifetime_chart, render_mrt_occupancy
from repro.obs.trace import (
    AttemptFail,
    BoundsRecompute,
    CapGrow,
    Eject,
    ForcePlace,
    IIEscalate,
    Place,
    ScheduleFound,
    TraceEvent,
    split_attempts,
)


def _attempt_summary(attempt_events: List[TraceEvent]) -> dict:
    start = attempt_events[0]
    tally = TallyCounter(type(event).__name__ for event in attempt_events)
    outcome, reason = "incomplete", ""
    for event in attempt_events:
        if isinstance(event, ScheduleFound):
            outcome, reason = "scheduled", f"span={event.span}, stages={event.stages}"
        elif isinstance(event, AttemptFail):
            outcome, reason = "failed", event.reason
    return {
        "ii": start.ii,
        "algorithm": start.algorithm,
        "budget": start.budget,
        "places": tally.get("Place", 0),
        "ejects": tally.get("Eject", 0),
        "forced": tally.get("ForcePlace", 0),
        "recomputes": tally.get("BoundsRecompute", 0),
        "cap_grows": tally.get("CapGrow", 0),
        "outcome": outcome,
        "reason": reason,
    }


def _resource_section(result: ScheduleResult, ii: int) -> List[str]:
    loop, machine = result.loop, result.machine
    lines = ["resource pressure (busy cycles per iteration vs capacity):"]
    bottleneck, bottleneck_ratio = None, -1.0
    for class_index, busy in sorted(unit_requirements(loop, machine).items()):
        unit_class = machine.unit_classes[class_index]
        capacity = unit_class.count * ii
        ratio = busy / capacity if capacity else 0.0
        floor = math.ceil(busy / unit_class.count)
        lines.append(
            f"  {unit_class.name:<14} {busy:>3} cycles / {capacity:>3} slots "
            f"= {ratio:>4.0%}  (II floor {floor})"
        )
        if ratio > bottleneck_ratio:
            bottleneck, bottleneck_ratio = unit_class.name, ratio
    if bottleneck is not None:
        lines.append(
            f"  critical resource: {bottleneck} ({bottleneck_ratio:.0%} utilized at II={ii})"
        )
    return lines


def _escalation_section(events: List[TraceEvent]) -> List[str]:
    escalations = [e for e in events if isinstance(e, IIEscalate)]
    if not escalations:
        return ["II escalations: none (scheduled at the first attempted II)"]
    lines = [f"II escalations: {len(escalations)}"]
    for escalation in escalations:
        reason = escalation.reason or "attempt failed"
        lines.append(f"  II {escalation.old_ii} -> {escalation.new_ii}: {reason}")
    return lines


def _ejection_section(result: ScheduleResult, events: List[TraceEvent]) -> List[str]:
    ejected = TallyCounter(
        event.oid for event in events if isinstance(event, Eject)
    )
    if not ejected:
        return ["ejections: none (no backtracking needed)"]
    lines = [f"ejections: {sum(ejected.values())} total over {len(ejected)} op(s); worst offenders:"]
    for oid, count in ejected.most_common(5):
        lines.append(f"  {count:>4}x  {result.loop.ops[oid]!r}")
    return lines


def explain(
    result: ScheduleResult,
    events: Iterable[TraceEvent],
    metrics: Optional[MetricsRegistry] = None,
    ddg: Optional[DDG] = None,
) -> str:
    """Render the full post-mortem report for one scheduling run."""
    events = list(events)
    loop = result.loop
    if ddg is None:
        ddg = build_ddg(loop, result.machine)
    lines: List[str] = []

    ii = result.ii
    lines.append(f"=== explain: {loop.name} ===")
    if result.success:
        verdict = "optimal (II = MII)" if result.optimal else (
            f"suboptimal (+{ii - result.mii} over MII)"
        )
        lines.append(
            f"outcome: scheduled at II={ii} — {verdict}; "
            f"span={result.schedule.span}, stages={result.schedule.stages}"
        )
    else:
        lines.append(
            f"outcome: FAILED to pipeline (last attempted II={result.last_attempted_ii})"
        )
    dominant = "resources (ResMII)" if result.res_mii >= result.rec_mii else "recurrences (RecMII)"
    lines.append(
        f"lower bounds: ResMII={result.res_mii}, RecMII={result.rec_mii}, "
        f"MII={result.mii} — bound by {dominant}"
    )
    lines.append("")
    lines.extend(_resource_section(result, ii))
    lines.append("")

    attempts = split_attempts(events)
    if attempts:
        lines.append(f"attempts ({len(attempts)}):")
        for attempt_events in attempts:
            s = _attempt_summary(attempt_events)
            lines.append(
                f"  II={s['ii']:<4} [{s['algorithm']}] {s['outcome']:<9} "
                f"places={s['places']:<4} ejects={s['ejects']:<4} "
                f"forced={s['forced']:<3} recomputes={s['recomputes']:<3} "
                f"cap_grows={s['cap_grows']:<2} {s['reason']}"
            )
        lines.append("")
        lines.extend(_escalation_section(events))
        lines.append("")
        lines.extend(_ejection_section(result, events))
        lines.append("")
    else:
        lines.append("attempts: (no trace events captured)")
        lines.append("")

    if result.success:
        schedule = result.schedule
        mindist = MinDist(ddg, schedule.ii)
        pressure = rr_max_live(loop, ddg, schedule.times, schedule.ii)
        bound = min_avg(loop, ddg, mindist, schedule.ii)
        gap = pressure - bound
        lines.append(
            f"register pressure: MaxLive={pressure} vs MinAvg bound {bound} "
            f"({'tight' if gap <= 0 else f'+{gap} over the bound'})"
        )
        lines.append("")
        lines.append(render_mrt_occupancy(schedule))
        lines.append("")
        lines.append(render_lifetime_chart(schedule, ddg))

    if metrics is not None:
        lines.append("")
        lines.append(metrics.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Flight-recorder post-mortems (crashed/timed-out/failed jobs)
# ----------------------------------------------------------------------
def _format_flight_record(record: dict) -> str:
    """One ``[seq] kind key=value ...`` line from a dumped event dict."""
    detail = " ".join(
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in ("kind", "seq", "ts")
    )
    kind = record.get("kind", "?")
    seq = record.get("seq", 0)
    return f"  [{seq:>4}] {kind}" + (f"  {detail}" if detail else "")


def _ops_in_flight(records: List[dict]) -> List[int]:
    """Replay Place/Eject within the ring window: ops still placed at death.

    The window may open mid-attempt (older events fell off the ring), so
    this is the set of operations *seen placed and not ejected* within
    the recorded tail — the ops the scheduler was actively juggling when
    the worker died.
    """
    placed: dict = {}
    for record in records:
        kind = record.get("kind")
        if kind == "attempt_start":
            placed = {}
        elif kind == "place":
            placed[record.get("oid")] = True
        elif kind == "eject":
            placed.pop(record.get("oid"), None)
    return sorted(oid for oid in placed if oid is not None)


def flight_postmortem(
    name: str,
    records: List[dict],
    status: Optional[str] = None,
    error: Optional[str] = None,
) -> str:
    """Render a flight-recorder dump (oldest-first event dicts).

    This is the failure-side sibling of :func:`explain`: no
    ``ScheduleResult`` exists (the worker died, timed out, or raised),
    so the narrative is built purely from the ring's event tail — the
    last scheduler decisions in flight when the job ended.
    """
    lines: List[str] = [f"=== post-mortem: {name} ==="]
    header = []
    if status is not None:
        header.append(f"status={status}")
    if error:
        header.append(f"error: {error}")
    if header:
        lines.append("  ".join(header))
    if not records:
        lines.append("flight recorder: empty (job died before its first event)")
        return "\n".join(lines)

    first_seq = records[0].get("seq", 0)
    dropped = first_seq if isinstance(first_seq, int) and first_seq > 0 else 0
    note = f" ({dropped} earlier dropped from the ring)" if dropped else ""
    lines.append(f"flight recorder: last {len(records)} event(s){note}:")
    lines.extend(_format_flight_record(record) for record in records)

    in_flight = _ops_in_flight(records)
    if in_flight:
        lines.append(
            f"ops in flight at death ({len(in_flight)}): "
            + ", ".join(str(oid) for oid in in_flight)
        )
    return "\n".join(lines)
