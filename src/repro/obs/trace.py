"""Typed scheduler trace events and the Tracer protocol.

The scheduling stack emits one event per *decision* — every placement,
ejection, forced placement, bounds recomputation, cap growth, II
escalation, and attempt outcome — so the paper's scheduler dynamics
(§4.2's ejection storms, §6's scheduling effort) become observable
instead of being summarized away into four counters.

Design rules:

* The hot path pays nothing by default.  Instrumented code holds
  ``self.trace = None`` unless a tracer with ``enabled=True`` was
  supplied, so the per-event cost of the default :class:`NullTracer` is
  a single attribute test (asserted <5% by
  ``benchmarks/bench_scheduler_speed.py``).
* Events are plain dataclasses with a class-level ``kind`` tag.  The
  tracer stamps a monotonic sequence number and a ``perf_counter``
  timestamp on emission; events never look at the clock themselves.
* A trace is *replayable*: :func:`replay_times` folds the Place/Eject
  stream of the final attempt back into the exact ``times`` dict of the
  schedule the run produced — the test suite uses this to prove the
  trace is a faithful record rather than advisory logging.
"""

from __future__ import annotations

import dataclasses
import time
from typing import ClassVar, Dict, Iterable, List, Optional, Tuple


@dataclasses.dataclass
class TraceEvent:
    """Base class: ``seq``/``ts`` are stamped by the tracer on emit."""

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["kind"] = self.kind
        payload["seq"] = getattr(self, "seq", 0)
        payload["ts"] = getattr(self, "ts", 0.0)
        return payload


@dataclasses.dataclass
class AttemptStart(TraceEvent):
    """One fixed-II attempt begins (driver loop, §4.2 step 6)."""

    kind: ClassVar[str] = "attempt_start"
    algorithm: str
    ii: int
    n_ops: int
    budget: int


@dataclasses.dataclass
class Place(TraceEvent):
    """An operation was committed to an issue cycle."""

    kind: ClassVar[str] = "place"
    oid: int
    cycle: int
    forced: bool = False


@dataclasses.dataclass
class Eject(TraceEvent):
    """A placed operation was removed from the partial schedule.

    ``cause`` is "force" (§4.4 forced placement ejected a blocker) or
    "cap" (Stop was pushed past Lstart(Stop) and re-opened, §4.2).
    """

    kind: ClassVar[str] = "eject"
    oid: int
    cycle: int
    cause: str = "force"


@dataclasses.dataclass
class ForcePlace(TraceEvent):
    """Step 3: no conflict-free slot existed; blockers were ejected.

    The subsequent :class:`Place` event (with ``forced=True``) commits
    the operation; this event records *why* — which ops got ejected.
    """

    kind: ClassVar[str] = "force_place"
    oid: int
    cycle: int
    ejected: List[int] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class BoundsRecompute(TraceEvent):
    """Full O(p*n) Estart/Lstart recomputation (after ejections)."""

    kind: ClassVar[str] = "bounds_recompute"
    n_placed: int


@dataclasses.dataclass
class CapGrow(TraceEvent):
    """Lstart(Stop) grew because Estart(Stop) exceeded the cap (§4.2)."""

    kind: ClassVar[str] = "cap_grow"
    old_cap: int
    new_cap: int


@dataclasses.dataclass
class IIEscalate(TraceEvent):
    """The driver gave up on an II and escalated (§4.2 step 6)."""

    kind: ClassVar[str] = "ii_escalate"
    old_ii: int
    new_ii: int
    reason: str = ""


@dataclasses.dataclass
class AttemptFail(TraceEvent):
    """The attempt at this II failed (budget, fit, or pressure)."""

    kind: ClassVar[str] = "attempt_fail"
    ii: int
    reason: str = ""


@dataclasses.dataclass
class ScheduleFound(TraceEvent):
    """A feasible schedule was accepted at this II."""

    kind: ClassVar[str] = "schedule_found"
    ii: int
    span: int
    stages: int


@dataclasses.dataclass
class JobStart(TraceEvent):
    """Service-level breadcrumb: a worker began executing a batch job.

    Emitted into the flight recorder before fault injection and
    scheduling, so even a job that dies before its first scheduler
    decision leaves a non-empty post-mortem dump naming the victim.
    """

    kind: ClassVar[str] = "job_start"
    job: int
    loop: str


#: kind tag -> event class, for deserialization (see obs.export).
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        AttemptStart,
        Place,
        Eject,
        ForcePlace,
        BoundsRecompute,
        CapGrow,
        IIEscalate,
        AttemptFail,
        ScheduleFound,
        JobStart,
    )
}


def event_from_dict(payload: dict) -> TraceEvent:
    """Rebuild a typed event from its ``to_dict`` representation."""
    data = dict(payload)
    kind = data.pop("kind")
    seq = data.pop("seq", 0)
    ts = data.pop("ts", 0.0)
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    event = cls(**data)
    event.seq = seq
    event.ts = ts
    return event


# ----------------------------------------------------------------------
# Tracers
# ----------------------------------------------------------------------
class Tracer:
    """Trace sink protocol: ``enabled`` flag plus an ``emit`` method.

    Instrumented code normalizes a disabled tracer to ``None`` up front,
    so ``emit`` is only ever called when ``enabled`` is True.
    """

    enabled: bool = True

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError


class NullTracer(Tracer):
    """The zero-overhead default: never called, never stores anything."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover
        pass


#: Shared default instance (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()


class CollectingTracer(Tracer):
    """Accumulates events in memory, stamping seq numbers + timestamps."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._seq = 0
        self._clock = time.perf_counter

    def emit(self, event: TraceEvent) -> None:
        event.seq = self._seq
        event.ts = self._clock()
        self._seq += 1
        self.events.append(event)


#: Default flight-recorder ring capacity: big enough to cover an
#: ejection cascade plus the attempt header, small enough that a dump
#: pickles/serializes in microseconds.
DEFAULT_FLIGHT_CAPACITY = 64


class FlightRecorder(Tracer):
    """A bounded ring of the last N events, kept at near-zero cost.

    The batch service runs every job under one of these so that a
    crash, timeout, or quarantine can attach the final scheduler
    decisions to the failure record — a flight recorder, not a full
    trace.  Two cost rules keep it on by default:

    * ``emit`` stamps only a sequence number (no ``perf_counter``
      call): one modulo, one list store.  The trace_overhead bench
      holds it under the same 5% ceiling as the NullTracer.
    * ``append`` stores a reference *without* stamping, so the ring
      can shadow a :class:`CollectingTracer` (which already stamped
      seq/ts) without fighting over the fields.

    ``dump()`` returns plain dicts (oldest first), safe to pickle
    across the worker boundary and to serialize into progress logs.
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"flight capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._count = 0

    @property
    def total(self) -> int:
        """Events ever seen (>= len(events()) once the ring wraps)."""
        return self._count

    @property
    def dropped(self) -> int:
        """Events that fell off the front of the ring."""
        return max(0, self._count - self.capacity)

    def append(self, event: TraceEvent) -> None:
        """Keep a reference without stamping (tee behind another tracer)."""
        self._ring[self._count % self.capacity] = event
        self._count += 1

    def emit(self, event: TraceEvent) -> None:
        event.seq = self._count
        self.append(event)

    def events(self) -> List[TraceEvent]:
        """Ring contents, oldest to newest."""
        if self._count <= self.capacity:
            return list(self._ring[: self._count])
        pivot = self._count % self.capacity
        return self._ring[pivot:] + self._ring[:pivot]

    def dump(self) -> List[dict]:
        """The ring as JSON-safe dicts (what failure records carry)."""
        return [event.to_dict() for event in self.events()]


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def split_attempts(events: Iterable[TraceEvent]) -> List[List[TraceEvent]]:
    """Partition a trace into per-attempt event lists."""
    attempts: List[List[TraceEvent]] = []
    current: Optional[List[TraceEvent]] = None
    for event in events:
        if isinstance(event, AttemptStart):
            current = [event]
            attempts.append(current)
        elif current is not None:
            current.append(event)
    return attempts


def replay_times(events: Iterable[TraceEvent]) -> Dict[int, int]:
    """Fold the Place/Eject stream into the final attempt's times dict.

    Every :class:`AttemptStart` resets the partial schedule (the driver
    starts each II from scratch), so the result is the reconstruction of
    whatever the *last* attempt left placed — for a successful run, the
    exact ``Schedule.times`` mapping.
    """
    times: Dict[int, int] = {}
    for event in events:
        if isinstance(event, AttemptStart):
            times = {}
        elif isinstance(event, Place):
            times[event.oid] = event.cycle
        elif isinstance(event, Eject):
            times.pop(event.oid, None)
    return times


def surviving_places(events: Iterable[TraceEvent]) -> List[Place]:
    """Final attempt's Place events not undone by a later Eject.

    The trace invariant (tested in ``tests/obs``): for a successful run
    these survivors map one-to-one onto the final schedule.
    """
    attempts = split_attempts(events)
    if not attempts:
        return []
    last = attempts[-1]
    survivors: Dict[int, Tuple[int, Place]] = {}
    for index, event in enumerate(last):
        if isinstance(event, Place):
            survivors[event.oid] = (index, event)
        elif isinstance(event, Eject) and event.oid in survivors:
            del survivors[event.oid]
    return [place for _, place in sorted(survivors.values())]
