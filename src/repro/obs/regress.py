"""Noise-aware regression gating over BENCH_*.json result sets.

``compare_sets`` matches two benchmark runs scenario-by-scenario and
metric-by-metric, and classifies each delta as a regression, an
improvement, or within noise.  The noise model is per metric:

* every metric entry records the IQR of its repeat samples, so the
  allowance for metric *m* is ``threshold + iqr_factor * IQR_m / |old|``
  — a metric that was noisy when measured gets a proportionally wider
  band, while a perfectly stable one is held to the flat threshold;
* deterministic metrics (``kind == "count"``: II-vs-MII, ejections,
  success rate, ...) are identical across machines for a fixed corpus,
  so they always gate ``--fail-on-regress``;
* wall-clock metrics (``kind == "time"``) gate only with
  ``--gate-time``, because a CI runner and a laptop disagree by far
  more than any real slowdown — they are still *reported* either way.

``direction`` in the metric entry ("lower"/"higher" is better) orients
the comparison, so throughput dropping and wall time rising both count
as regressions.  Rendered as a markdown-compatible ASCII table::

    | scenario | metric | old | new | delta | allowed | status |
"""

from __future__ import annotations

import dataclasses
import glob
import os
from typing import Dict, List, Optional, Tuple

from repro.obs.bench import BENCH_SCHEMA, load_payload

#: Relative-delta floor that avoids dividing by a ~zero old value.
_EPSILON = 1e-12


@dataclasses.dataclass
class MetricDelta:
    """One metric's old-vs-new comparison."""

    scenario: str
    name: str
    unit: str
    kind: str  # "time" | "count"
    direction: str  # "lower" | "higher" is better
    old: Optional[float]
    new: Optional[float]
    worse_by: float = 0.0  # signed relative delta, + = worse
    allowance: float = 0.0
    status: str = "ok"  # ok | regression | improvement | added | removed
    gating: bool = True  # does a regression here fail the gate?

    @property
    def is_regression(self) -> bool:
        return self.status == "regression"


def compare_metric(
    scenario: str,
    name: str,
    old: Optional[dict],
    new: Optional[dict],
    threshold: float = 0.02,
    iqr_factor: float = 2.0,
    gate_time: bool = False,
) -> MetricDelta:
    """Classify one metric's delta under the noise model."""
    spec = new or old
    kind = spec.get("kind", "count")
    delta = MetricDelta(
        scenario=scenario,
        name=name,
        unit=spec.get("unit", ""),
        kind=kind,
        direction=spec.get("direction", "lower"),
        old=old["value"] if old else None,
        new=new["value"] if new else None,
        gating=(kind != "time") or gate_time,
    )
    if old is None or new is None:
        delta.status = "added" if old is None else "removed"
        delta.gating = False
        return delta
    base = max(abs(old["value"]), _EPSILON)
    rel = (new["value"] - old["value"]) / base
    delta.worse_by = rel if delta.direction == "lower" else -rel
    iqr = max(old.get("iqr", 0.0), new.get("iqr", 0.0))
    delta.allowance = threshold + iqr_factor * iqr / base
    if delta.worse_by > delta.allowance:
        delta.status = "regression"
    elif delta.worse_by < -delta.allowance:
        delta.status = "improvement"
    return delta


def compare_payload_pair(
    old_payload: dict,
    new_payload: dict,
    threshold: float = 0.02,
    iqr_factor: float = 2.0,
    gate_time: bool = False,
) -> List[MetricDelta]:
    """Compare every metric of one scenario's old/new payloads."""
    scenario = new_payload.get("scenario") or old_payload.get("scenario") or "?"
    old_metrics = old_payload.get("metrics", {})
    new_metrics = new_payload.get("metrics", {})
    names = sorted(set(old_metrics) | set(new_metrics))
    return [
        compare_metric(
            scenario,
            name,
            old_metrics.get(name),
            new_metrics.get(name),
            threshold=threshold,
            iqr_factor=iqr_factor,
            gate_time=gate_time,
        )
        for name in names
    ]


def collect_bench_files(path: str) -> Dict[str, dict]:
    """Load BENCH payloads from a directory or a single file.

    Returns scenario name -> payload; a directory is scanned for
    ``BENCH_*.json``.
    """
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    else:
        files = [path]
    if not files:
        raise FileNotFoundError(f"no BENCH_*.json files under {path}")
    payloads: Dict[str, dict] = {}
    for name in files:
        payload = load_payload(name, schema=BENCH_SCHEMA)
        payloads[payload.get("scenario") or os.path.basename(name)] = payload
    return payloads


def compare_sets(
    old_payloads: Dict[str, dict],
    new_payloads: Dict[str, dict],
    threshold: float = 0.02,
    iqr_factor: float = 2.0,
    gate_time: bool = False,
) -> List[MetricDelta]:
    """Compare two scenario->payload maps (scenarios matched by name)."""
    deltas: List[MetricDelta] = []
    for scenario in sorted(set(old_payloads) | set(new_payloads)):
        old = old_payloads.get(scenario)
        new = new_payloads.get(scenario)
        if old is None or new is None:
            status = "added" if old is None else "removed"
            deltas.append(
                MetricDelta(
                    scenario=scenario,
                    name="(scenario)",
                    unit="",
                    kind="count",
                    direction="lower",
                    old=None,
                    new=None,
                    status=status,
                    gating=False,
                )
            )
            continue
        deltas.extend(
            compare_payload_pair(
                old, new, threshold=threshold, iqr_factor=iqr_factor,
                gate_time=gate_time,
            )
        )
    return deltas


def gating_regressions(deltas: List[MetricDelta]) -> List[MetricDelta]:
    return [d for d in deltas if d.is_regression and d.gating]


# ----------------------------------------------------------------------
# Provenance checks
# ----------------------------------------------------------------------
#: Envelope fields whose disagreement makes time metrics incomparable.
PROVENANCE_FIELDS = ("platform", "python", "cpu_count")


def provenance_mismatches(old_payload: dict, new_payload: dict) -> List[str]:
    """Warnings for envelope fields that differ between OLD and NEW.

    Only fields present in *both* payloads are compared, so baselines
    recorded before a field existed (e.g. ``cpu_count``) do not warn.
    """
    warnings = []
    for field in PROVENANCE_FIELDS:
        old_value = old_payload.get(field)
        new_value = new_payload.get(field)
        if old_value is None or new_value is None:
            continue
        if old_value != new_value:
            warnings.append(
                f"provenance mismatch: {field} differs "
                f"(old={old_value!r}, new={new_value!r}) — "
                "time metrics are not comparable across environments"
            )
    return warnings


def set_provenance_warnings(
    old_payloads: Dict[str, dict], new_payloads: Dict[str, dict]
) -> List[str]:
    """Per-scenario provenance warnings across two result sets."""
    warnings = []
    for scenario in sorted(set(old_payloads) & set(new_payloads)):
        for warning in provenance_mismatches(
            old_payloads[scenario], new_payloads[scenario]
        ):
            warnings.append(f"{scenario}: {warning}")
    return warnings


# ----------------------------------------------------------------------
# Span-level attribution (profiler snapshot diffs)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpanDelta:
    """One profiler span's old-vs-new self-time comparison."""

    path: str
    old_self: float
    new_self: float
    old_calls: int = 0
    new_calls: int = 0

    @property
    def delta_self(self) -> float:
        """Absolute self-seconds change (+ = slower)."""
        return self.new_self - self.old_self


def diff_profiles(old_profile: dict, new_profile: dict) -> List[SpanDelta]:
    """Span-by-span self-time diff of two profiler snapshots.

    Sorted by self-seconds increase (the guiltiest span first): when a
    scenario's wall time regressed, the top entry names which phase of
    the scheduler — driver, framework, slack, MinDist — slowed down.
    """
    old_spans = (old_profile or {}).get("spans", {})
    new_spans = (new_profile or {}).get("spans", {})
    deltas = [
        SpanDelta(
            path=path,
            old_self=old_spans.get(path, {}).get("self_seconds", 0.0),
            new_self=new_spans.get(path, {}).get("self_seconds", 0.0),
            old_calls=old_spans.get(path, {}).get("calls", 0),
            new_calls=new_spans.get(path, {}).get("calls", 0),
        )
        for path in sorted(set(old_spans) | set(new_spans))
    ]
    deltas.sort(key=lambda d: (-d.delta_self, d.path))
    return deltas


def attribute_spans(
    old_payload: dict, new_payload: dict, limit: int = 3
) -> List[str]:
    """Name the spans that account for a scenario's time regression.

    Returns report lines (empty when either payload lacks a profile
    snapshot or nothing slowed down).
    """
    old_profile = old_payload.get("profile")
    new_profile = new_payload.get("profile")
    if not old_profile or not new_profile:
        return []
    slower = [d for d in diff_profiles(old_profile, new_profile) if d.delta_self > 0]
    if not slower:
        return []
    total = sum(d.delta_self for d in slower)
    lines = ["span attribution (self-time increase, guiltiest first):"]
    for delta in slower[:limit]:
        share = delta.delta_self / total if total > 0 else 0.0
        grew = (
            delta.old_self * 100.0
            if delta.old_self <= 0
            else (delta.new_self / delta.old_self - 1.0) * 100.0
        )
        lines.append(
            f"  {delta.path:<40} +{delta.delta_self * 1e3:.2f}ms self "
            f"({share:.0%} of the slowdown, {grew:+.0f}% vs old, "
            f"calls {delta.old_calls} -> {delta.new_calls})"
        )
    return lines


def attribute_sets(
    old_payloads: Dict[str, dict],
    new_payloads: Dict[str, dict],
    deltas: List[MetricDelta],
    limit: int = 3,
) -> List[str]:
    """Span attribution for every scenario with a regressed time metric."""
    guilty = sorted(
        {d.scenario for d in deltas if d.is_regression and d.kind == "time"}
    )
    lines = []
    for scenario in guilty:
        old = old_payloads.get(scenario)
        new = new_payloads.get(scenario)
        if old is None or new is None:
            continue
        attribution = attribute_spans(old, new, limit=limit)
        if attribution:
            lines.append(f"{scenario}:")
            lines.extend(f"  {line}" for line in attribution)
    return lines


def _fmt(value: Optional[float], unit: str) -> str:
    if value is None:
        return "-"
    if unit in ("loops", "ops", "attempts", "ejections", "placements"):
        return f"{value:.0f}"
    if abs(value) >= 1000:
        return f"{value:.0f}"
    return f"{value:.3f}"


def render_table(deltas: List[MetricDelta], verbose: bool = False) -> str:
    """Markdown-compatible comparison table.

    By default only rows that moved (or failed to match up) are listed;
    ``verbose`` lists every metric.
    """
    rows = [
        "| scenario | metric | old | new | delta | allowed | status |",
        "|---|---|---:|---:|---:|---:|---|",
    ]
    shown = 0
    for d in deltas:
        if not verbose and d.status == "ok":
            continue
        shown += 1
        status = d.status.upper() if d.is_regression else d.status
        if d.is_regression and not d.gating:
            status += " (not gated)"
        rows.append(
            f"| {d.scenario} | {d.name} | {_fmt(d.old, d.unit)} "
            f"| {_fmt(d.new, d.unit)} | {d.worse_by:+.1%} "
            f"| ±{d.allowance:.1%} | {status} |"
        )
    if not shown:
        rows.append("| _all_ | _all metrics_ | | | | | within noise |")
    return "\n".join(rows)


def summarize(deltas: List[MetricDelta]) -> str:
    regress = [d for d in deltas if d.is_regression]
    gating = gating_regressions(deltas)
    improved = [d for d in deltas if d.status == "improvement"]
    ok = [d for d in deltas if d.status == "ok"]
    return (
        f"{len(deltas)} metric(s) compared: {len(ok)} within noise, "
        f"{len(improved)} improved, {len(regress)} regressed "
        f"({len(gating)} gating)"
    )


def compare_main(
    old_path: str,
    new_path: str,
    fail_on_regress: bool = False,
    threshold: float = 0.02,
    iqr_factor: float = 2.0,
    gate_time: bool = False,
) -> int:
    """CLI entry for ``python -m repro bench --compare OLD NEW``."""
    try:
        old_payloads = collect_bench_files(old_path)
        new_payloads = collect_bench_files(new_path)
    except (OSError, ValueError) as error:
        print(f"error: {error}")
        return 2
    deltas = compare_sets(
        old_payloads,
        new_payloads,
        threshold=threshold,
        iqr_factor=iqr_factor,
        gate_time=gate_time,
    )
    print(render_table(deltas))
    print()
    for warning in set_provenance_warnings(old_payloads, new_payloads):
        print(f"warning: {warning}")
    for line in attribute_sets(old_payloads, new_payloads, deltas):
        print(line)
    print(summarize(deltas))
    if fail_on_regress and gating_regressions(deltas):
        print("FAIL: gating regression(s) detected")
        return 1
    return 0
