"""Self-contained HTML batch report: ``python -m repro report``.

Fuses whatever observability artifacts a batch run produced — the
per-loop metrics JSON (``batch --out``), the merged metrics registry
(``--metrics-out``), the profiler span snapshot (``--profile-out``),
the scheduler trace JSONL (``--trace``), the progress-event log
(``--progress-log``) and a pair of BENCH_*.json result sets
(``--compare OLD NEW``) — into one dependency-free HTML file: inline
CSS, inline SVG, no scripts, no network fetches.  Open it from a CI
artifact tab or ``file://`` and it renders identically.

Sections (each appears only when its input was given):

* stat tiles — loops, pipeline rate, cache hit rate, p50/p90/p99 job
  latency (the registry's ``service.job.seconds`` histogram);
* profiler flamegraph — span paths become a left-packed icicle chart,
  width proportional to cumulative seconds;
* per-loop scheduling-latency distribution (histogram);
* MaxLive vs MinAvg scatter — register pressure against the paper's
  lower bound, optimal (II = MII) and suboptimal loops as two series;
* breakdown bars — cache outcomes, failure reasons, progress lifecycle
  counts, trace event mix;
* straggler table from the progress log;
* regression delta table (reusing :mod:`repro.obs.regress`).

The builder is a pure function of its inputs: no wall-clock reads, no
environment probes, sorted iteration everywhere, fixed float
formatting.  Rendering the same inputs twice yields byte-identical
output — CI builds the report twice and ``cmp``s them.
"""

from __future__ import annotations

import argparse
import html
import json
import math
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.prof import PATH_SEP
from repro.obs.progress import KIND_STRAGGLER, ProgressEvent, load_progress_log
from repro.obs.regress import MetricDelta, collect_bench_files, compare_sets

#: Chart geometry shared by every SVG (one visual rhythm).
_CHART_W = 660
_CHART_H = 230
_MARGIN_L = 52
_MARGIN_R = 10
_MARGIN_T = 10
_MARGIN_B = 30

#: Categorical slots (validated order; see DESIGN.md "Report palette").
_SERIES = ("series-1", "series-2", "series-3")

#: Flamegraph depth shading: one sequential blue ramp, light -> dark.
_FLAME_RAMP = ("#9ec5f4", "#6da7ec", "#3987e5", "#2a78d6", "#256abf", "#1c5cab")


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Fixed, locale-free number formatting (byte-determinism)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f} ms"


def _nice_step(span: float, target: int = 4) -> float:
    """A 1/2/5-series tick step covering ``span`` in about ``target`` ticks."""
    if span <= 0:
        return 1.0
    raw = span / target
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for multiple in (1.0, 2.0, 5.0, 10.0):
        if multiple * magnitude >= raw:
            return multiple * magnitude
    return 10.0 * magnitude


def _ticks(lo: float, hi: float, target: int = 4) -> List[float]:
    step = _nice_step(hi - lo, target)
    first = math.ceil(lo / step) * step
    values = []
    value = first
    while value <= hi + step * 1e-9:
        values.append(round(value, 10))
        value += step
    return values


# ----------------------------------------------------------------------
# Input loaders
# ----------------------------------------------------------------------
def load_loop_records(path: str) -> List[dict]:
    """Read a ``batch --out`` JSON array of LoopMetrics records."""
    with open(path) as handle:
        records = json.load(handle)
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of loop records")
    return records


def load_json_object(path: str, what: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object ({what})")
    return payload


def load_trace_records(path: str) -> List[dict]:
    """Read a ``batch --trace`` JSONL stream of loop-tagged events."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# SVG building blocks
# ----------------------------------------------------------------------
def _column_path(x: float, y: float, w: float, h: float, r: float = 4.0) -> str:
    """A column with a rounded cap and a square baseline."""
    r = max(0.0, min(r, w / 2.0, h))
    return (
        f"M{x:.2f},{y + h:.2f} L{x:.2f},{y + r:.2f} "
        f"Q{x:.2f},{y:.2f} {x + r:.2f},{y:.2f} "
        f"L{x + w - r:.2f},{y:.2f} "
        f"Q{x + w:.2f},{y:.2f} {x + w:.2f},{y + r:.2f} "
        f"L{x + w:.2f},{y + h:.2f} Z"
    )


def _bar_path(x: float, y: float, w: float, h: float, r: float = 4.0) -> str:
    """A horizontal bar with a rounded data-end and a square baseline."""
    r = max(0.0, min(r, h / 2.0, w))
    return (
        f"M{x:.2f},{y:.2f} L{x + w - r:.2f},{y:.2f} "
        f"Q{x + w:.2f},{y:.2f} {x + w:.2f},{y + r:.2f} "
        f"L{x + w:.2f},{y + h - r:.2f} "
        f"Q{x + w:.2f},{y + h:.2f} {x + w - r:.2f},{y + h:.2f} "
        f"L{x:.2f},{y + h:.2f} Z"
    )


def _svg_open(height: int = _CHART_H) -> str:
    return (
        f'<svg viewBox="0 0 {_CHART_W} {height}" width="100%" '
        f'height="{height}" role="img">'
    )


def _table_view(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """The chart's accessible twin: same data as a plain table."""
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return (
        "<details><summary>Table view</summary>"
        f'<table class="data"><thead><tr>{head}</tr></thead>'
        f"<tbody>{body}</tbody></table></details>"
    )


def _card(title: str, subtitle: str, body: str) -> str:
    sub = f'<p class="sub">{_esc(subtitle)}</p>' if subtitle else ""
    return f'<section class="card"><h2>{_esc(title)}</h2>{sub}{body}</section>'


def histogram_svg(values: Sequence[float], unit: str = "ms") -> str:
    """A single-series latency histogram (values in milliseconds)."""
    if not values:
        return '<p class="empty">no samples</p>'
    lo, hi = min(values), max(values)
    if hi <= lo:
        hi = lo + 1.0
    nbins = min(24, max(6, len(values) // 2))
    width = (hi - lo) / nbins
    counts = [0] * nbins
    for value in values:
        counts[min(nbins - 1, int((value - lo) / width))] += 1
    peak = max(counts)
    plot_w = _CHART_W - _MARGIN_L - _MARGIN_R
    plot_h = _CHART_H - _MARGIN_T - _MARGIN_B
    slot = plot_w / nbins
    bar_w = min(24.0, max(1.0, slot - 2.0))  # 2px surface gap between bars
    parts = [_svg_open()]
    for tick in _ticks(0, peak):
        y = _MARGIN_T + plot_h * (1 - tick / peak)
        parts.append(
            f'<line class="grid" x1="{_MARGIN_L}" y1="{y:.2f}" '
            f'x2="{_CHART_W - _MARGIN_R}" y2="{y:.2f}"/>'
            f'<text class="tick" x="{_MARGIN_L - 6}" y="{y + 3:.2f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    baseline = _MARGIN_T + plot_h
    for index, count in enumerate(counts):
        if not count:
            continue
        x = _MARGIN_L + index * slot + (slot - bar_w) / 2
        h = plot_h * count / peak
        lo_edge, hi_edge = lo + index * width, lo + (index + 1) * width
        parts.append(
            f'<path class="s1" d="{_column_path(x, baseline - h, bar_w, h)}">'
            f"<title>{_fmt(lo_edge)}&#8211;{_fmt(hi_edge)} {unit}: "
            f"{count} loop(s)</title></path>"
        )
    for tick in _ticks(lo, hi, 5):
        x = _MARGIN_L + plot_w * (tick - lo) / (hi - lo)
        parts.append(
            f'<text class="tick" x="{x:.2f}" y="{_CHART_H - 8}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    parts.append(
        f'<line class="axis" x1="{_MARGIN_L}" y1="{baseline}" '
        f'x2="{_CHART_W - _MARGIN_R}" y2="{baseline}"/>'
    )
    parts.append(
        f'<text class="tick" x="{_CHART_W - _MARGIN_R}" '
        f'y="{_CHART_H - 8}" text-anchor="end">{_esc(unit)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def scatter_svg(points: Sequence[Tuple[float, float, str, bool]]) -> str:
    """MaxLive vs MinAvg: (min_avg, max_live, loop name, optimal)."""
    if not points:
        return '<p class="empty">no scheduled loops</p>'
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    lo = 0.0
    hi = max(max(xs), max(ys)) * 1.08 + 1e-9
    plot_w = _CHART_W - _MARGIN_L - _MARGIN_R
    plot_h = _CHART_H - _MARGIN_T - _MARGIN_B

    def sx(v: float) -> float:
        return _MARGIN_L + plot_w * (v - lo) / (hi - lo)

    def sy(v: float) -> float:
        return _MARGIN_T + plot_h * (1 - (v - lo) / (hi - lo))

    parts = [_svg_open()]
    for tick in _ticks(lo, hi):
        parts.append(
            f'<line class="grid" x1="{_MARGIN_L}" y1="{sy(tick):.2f}" '
            f'x2="{_CHART_W - _MARGIN_R}" y2="{sy(tick):.2f}"/>'
            f'<text class="tick" x="{_MARGIN_L - 6}" y="{sy(tick) + 3:.2f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
            f'<text class="tick" x="{sx(tick):.2f}" y="{_CHART_H - 8}" '
            f'text-anchor="middle">{_fmt(tick)}</text>'
        )
    # The MaxLive = MinAvg reference: points on the line hit the bound.
    parts.append(
        f'<line class="ref" x1="{sx(lo):.2f}" y1="{sy(lo):.2f}" '
        f'x2="{sx(hi):.2f}" y2="{sy(hi):.2f}"/>'
        f'<text class="tick" x="{sx(hi * 0.93):.2f}" '
        f'y="{sy(hi * 0.93) - 6:.2f}">MaxLive = MinAvg</text>'
    )
    for min_avg, max_live, name, optimal in sorted(points, key=lambda p: p[2]):
        klass = "s1" if optimal else "s2"
        label = "II = MII" if optimal else "II &gt; MII"
        parts.append(
            f'<circle class="dot {klass}" cx="{sx(min_avg):.2f}" '
            f'cy="{sy(max_live):.2f}" r="5">'
            f"<title>{_esc(name)}: MaxLive {_fmt(max_live)}, "
            f"MinAvg {_fmt(min_avg)} ({label})</title></circle>"
        )
    parts.append(
        f'<line class="axis" x1="{_MARGIN_L}" y1="{_MARGIN_T + plot_h}" '
        f'x2="{_CHART_W - _MARGIN_R}" y2="{_MARGIN_T + plot_h}"/>'
    )
    parts.append("</svg>")
    legend = (
        '<div class="legend">'
        '<span><i class="key s1"></i>II = MII (optimal)</span>'
        '<span><i class="key s2"></i>II &gt; MII</span>'
        "<span>x: MinAvg bound &#183; y: MaxLive</span></div>"
    )
    return legend + "".join(parts)


def bars_svg(pairs: Sequence[Tuple[str, float]], unit: str = "") -> str:
    """Horizontal category bars with the value labelled at each tip."""
    pairs = [(name, value) for name, value in pairs if value]
    if not pairs:
        return '<p class="empty">nothing recorded</p>'
    peak = max(value for _, value in pairs)
    row_h = 26
    bar_h = 18  # <= 24px, air in the band
    label_w = 170
    height = len(pairs) * row_h + 8
    plot_w = _CHART_W - label_w - 80
    parts = [_svg_open(height)]
    for index, (name, value) in enumerate(pairs):
        y = 4 + index * row_h
        w = max(2.0, plot_w * value / peak)
        parts.append(
            f'<text class="label" x="{label_w - 8}" '
            f'y="{y + bar_h - 5}" text-anchor="end">{_esc(name)}</text>'
            f'<path class="s1" d="{_bar_path(label_w, y, w, bar_h)}">'
            f"<title>{_esc(name)}: {_fmt(value)} {unit}</title></path>"
            f'<text class="value" x="{label_w + w + 6:.2f}" '
            f'y="{y + bar_h - 5}">{_fmt(value)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _span_tree(spans: Dict[str, dict]) -> Dict[str, List[str]]:
    """children[path] = sorted child paths; roots under children[""]."""
    children: Dict[str, List[str]] = {"": []}
    for path in sorted(spans):
        parent = path.rsplit(PATH_SEP, 1)[0] if PATH_SEP in path else ""
        children.setdefault(parent, []).append(path)
        children.setdefault(path, [])
    return children


def flamegraph_svg(spans: Dict[str, dict]) -> str:
    """Left-packed icicle chart over profiler span paths."""
    if not spans:
        return '<p class="empty">no spans recorded</p>'
    children = _span_tree(spans)
    total = sum(spans[root]["cum_seconds"] for root in children[""])
    if total <= 0:
        return '<p class="empty">no time recorded</p>'
    row_h, gap = 26, 2
    depth = max(path.count(PATH_SEP) for path in spans) + 1
    height = depth * row_h + 4
    parts = [_svg_open(height)]

    def emit(path: str, x: float, width: float, level: int) -> None:
        stat = spans[path]
        name = path.rsplit(PATH_SEP, 1)[-1]
        y = 2 + level * row_h
        w = max(1.0, width - gap)
        fill = _FLAME_RAMP[min(level, len(_FLAME_RAMP) - 1)]
        share = stat["cum_seconds"] / total
        parts.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{row_h - gap}" rx="2" fill="{fill}">'
            f"<title>{_esc(path.replace(PATH_SEP, ' > '))}: "
            f"{_fmt_ms(stat['cum_seconds'])} cum ({share:.1%}), "
            f"{_fmt_ms(stat['self_seconds'])} self, "
            f"{stat['calls']} call(s)</title></rect>"
        )
        if w > 7.0 * len(name) + 8:  # label only when it fits comfortably
            ink = "#0b0b0b" if level < 2 else "#ffffff"
            parts.append(
                f'<text class="flame" x="{x + 5:.2f}" y="{y + row_h - 10}" '
                f'fill="{ink}">{_esc(name)}</text>'
            )
        offset = x
        for child in children.get(path, []):
            child_w = width * spans[child]["cum_seconds"] / max(
                stat["cum_seconds"], 1e-12
            )
            emit(child, offset, child_w, level + 1)
            offset += child_w

    offset = 0.0
    for root in children[""]:
        root_w = _CHART_W * spans[root]["cum_seconds"] / total
        emit(root, offset, root_w, 0)
        offset += root_w
    parts.append("</svg>")
    return "".join(parts)


#: Sparkline geometry (small multiples in the history trend table).
_SPARK_W = 220
_SPARK_H = 36
_SPARK_PAD = 5


def sparkline_svg(
    values: Sequence[Optional[float]], anomalies: Sequence[bool]
) -> str:
    """A small inline trend line: series-1 polyline, anomalies as
    series-2 dots, the latest point as a filled series-1 dot."""
    points = [
        (index, value)
        for index, value in enumerate(values)
        if value is not None
    ]
    if not points:
        return '<span class="empty">no data</span>'
    lo = min(value for _, value in points)
    hi = max(value for _, value in points)
    span = hi - lo if hi > lo else 1.0
    n = max(1, len(values) - 1)

    def sx(index: int) -> float:
        return _SPARK_PAD + (_SPARK_W - 2 * _SPARK_PAD) * index / n

    def sy(value: float) -> float:
        return _SPARK_PAD + (_SPARK_H - 2 * _SPARK_PAD) * (1 - (value - lo) / span)

    parts = [
        f'<svg class="spark" viewBox="0 0 {_SPARK_W} {_SPARK_H}" '
        f'width="{_SPARK_W}" height="{_SPARK_H}" role="img">'
    ]
    if len(points) > 1:
        path = " ".join(f"{sx(i):.2f},{sy(v):.2f}" for i, v in points)
        parts.append(f'<polyline class="line" points="{path}"/>')
    for index, value in points:
        if index < len(anomalies) and anomalies[index]:
            parts.append(
                f'<circle class="anom" cx="{sx(index):.2f}" '
                f'cy="{sy(value):.2f}" r="3">'
                f"<title>run {index + 1}: {_fmt(value)} (anomaly)</title>"
                "</circle>"
            )
    last_index, last_value = points[-1]
    parts.append(
        f'<circle class="last" cx="{sx(last_index):.2f}" '
        f'cy="{sy(last_value):.2f}" r="3">'
        f"<title>latest: {_fmt(last_value)}</title></circle>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _trend_section(scenario: str, trends: Sequence) -> str:
    """One scenario's history card: sparkline + latest per metric."""
    if not trends:
        return ""
    n_runs = len(trends[0].values)
    rows = []
    cells = []
    for trend in trends:
        latest = "-" if trend.latest is None else _fmt(trend.latest)
        anomaly = (
            f'<span class="bad">{trend.anomaly_count}</span>'
            if trend.anomaly_count
            else '<span class="muted">0</span>'
        )
        cells.append(
            "<tr>"
            f"<td>{_esc(trend.name)}</td>"
            f'<td class="num">{_esc(latest)}</td>'
            f"<td>{_esc(trend.unit)}</td>"
            f'<td class="num">{anomaly}</td>'
            f"<td>{sparkline_svg(trend.values, trend.anomalies)}</td></tr>"
        )
        rows.append(
            (
                trend.name,
                latest,
                trend.unit,
                trend.anomaly_count,
                " ".join(
                    "-" if value is None else _fmt(value)
                    for value in trend.values
                ),
            )
        )
    table = (
        '<table class="data trend"><thead><tr><th>metric</th>'
        '<th class="num">latest</th><th>unit</th>'
        '<th class="num">anomalies</th><th>trend</th></tr></thead>'
        f"<tbody>{''.join(cells)}</tbody></table>"
    )
    return _card(
        f"History: {scenario}",
        f"rolling-median + MAD anomaly scan over {n_runs} recorded run(s); "
        "orange dots are anomalous points",
        table
        + _table_view(
            ("metric", "latest", "unit", "anomalies", "values"), rows
        ),
    )


def delta_table_html(deltas: Sequence[MetricDelta]) -> str:
    """The regression comparator as an HTML table (icon + word status)."""
    rows = []
    moved = [d for d in deltas if d.status != "ok"]
    for d in moved:
        if d.status == "regression":
            status = '<span class="bad">&#9650; regression</span>'
            if not d.gating:
                status += ' <span class="muted">(not gated)</span>'
        elif d.status == "improvement":
            status = '<span class="good">&#9660; improvement</span>'
        else:
            status = f'<span class="muted">{_esc(d.status)}</span>'
        rows.append(
            "<tr>"
            f"<td>{_esc(d.scenario)}</td><td>{_esc(d.name)}</td>"
            f'<td class="num">{_esc("-" if d.old is None else _fmt(d.old))}</td>'
            f'<td class="num">{_esc("-" if d.new is None else _fmt(d.new))}</td>'
            f'<td class="num">{d.worse_by:+.1%}</td>'
            f'<td class="num">&#177;{d.allowance:.1%}</td>'
            f"<td>{status}</td></tr>"
        )
    if not rows:
        rows.append(
            '<tr><td colspan="7" class="muted">'
            "all metrics within noise</td></tr>"
        )
    ok = sum(1 for d in deltas if d.status == "ok")
    caption = (
        f"{len(deltas)} metric(s) compared; {ok} within noise "
        f"(unchanged rows omitted)"
    )
    return (
        f'<p class="sub">{_esc(caption)}</p>'
        '<table class="data"><thead><tr><th>scenario</th><th>metric</th>'
        '<th class="num">old</th><th class="num">new</th>'
        '<th class="num">delta</th><th class="num">allowed</th>'
        f"<th>status</th></tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


# ----------------------------------------------------------------------
# Section builders
# ----------------------------------------------------------------------
def _stat_tiles(tiles: Sequence[Tuple[str, str]]) -> str:
    cells = "".join(
        f'<div class="tile"><span class="tlabel">{_esc(label)}</span>'
        f'<span class="tvalue">{_esc(value)}</span></div>'
        for label, value in tiles
    )
    return f'<section class="tiles">{cells}</section>'


def _overview_tiles(
    loop_records: Optional[List[dict]], registry: Optional[dict]
) -> str:
    tiles: List[Tuple[str, str]] = []
    if loop_records:
        scheduled = [r for r in loop_records if r.get("success")]
        tiles.append(("Loops", str(len(loop_records))))
        optimal = sum(1 for r in scheduled if r.get("ii") == r.get("mii"))
        if scheduled:
            tiles.append(
                ("Pipelined at MII", f"{optimal / len(scheduled):.0%}")
            )
        failed = len(loop_records) - len(scheduled)
        if failed:
            tiles.append(("Failed to pipeline", str(failed)))
    if registry:
        counters = registry.get("counters", {})
        hits = counters.get("service.cache.hits", 0)
        misses = counters.get("service.cache.misses", 0)
        if hits + misses:
            tiles.append(("Cache hit rate", f"{hits / (hits + misses):.0%}"))
        values = registry.get("histogram_values", {}).get("service.job.seconds")
        if values:
            from repro.obs.metrics import Histogram

            histogram = Histogram()
            for value in values:
                histogram.record(value)
            quantiles = histogram.quantiles()
            for name, seconds in quantiles.items():
                tiles.append((f"Job latency {name}", _fmt_ms(seconds)))
        flagged = counters.get("service.stragglers.flagged", 0)
        if flagged:
            tiles.append(("Stragglers", str(flagged)))
    if not tiles:
        return ""
    return _stat_tiles(tiles)


def _latency_section(loop_records: List[dict]) -> str:
    samples = [
        r["scheduling_seconds"] * 1e3
        for r in loop_records
        if r.get("scheduling_seconds")
    ]
    if not samples:
        return ""
    rows = sorted(
        (
            (r.get("name", "?"), f"{r['scheduling_seconds'] * 1e3:.2f}")
            for r in loop_records
            if r.get("scheduling_seconds")
        ),
        key=lambda row: -float(row[1]),
    )
    return _card(
        "Scheduling latency distribution",
        f"per-loop scheduler wall time over {len(samples)} loop(s)",
        histogram_svg(samples, "ms") + _table_view(("loop", "ms"), rows),
    )


def _scatter_section(loop_records: List[dict]) -> str:
    points = [
        (
            float(r["min_avg"]),
            float(r["max_live"]),
            r.get("name", "?"),
            r.get("ii") == r.get("mii"),
        )
        for r in loop_records
        if r.get("success") and r.get("min_avg") and r.get("max_live")
    ]
    if not points:
        return ""
    rows = [
        (name, _fmt(min_avg), _fmt(max_live), "yes" if optimal else "no")
        for min_avg, max_live, name, optimal in sorted(
            points, key=lambda p: p[2]
        )
    ]
    return _card(
        "Register pressure vs the MinAvg bound",
        "each dot is one scheduled loop; distance above the line is "
        "pressure the allocator pays beyond the paper's lower bound",
        scatter_svg(points)
        + _table_view(("loop", "MinAvg", "MaxLive", "II = MII"), rows),
    )


def _breakdown_section(
    loop_records: Optional[List[dict]],
    registry: Optional[dict],
    trace_records: Optional[List[dict]],
    progress_events: Optional[List[ProgressEvent]],
) -> str:
    blocks = []
    if registry:
        counters = registry.get("counters", {})
        cache_pairs = [
            (name.rsplit(".", 1)[-1], value)
            for name, value in sorted(counters.items())
            if name.startswith("service.cache.")
        ]
        if any(value for _, value in cache_pairs):
            blocks.append(
                "<h3>Cache outcomes</h3>" + bars_svg(cache_pairs, "entries")
            )
        progress_pairs = [
            (name.rsplit(".", 1)[-1], value)
            for name, value in sorted(counters.items())
            if name.startswith("service.progress.")
        ]
        if progress_pairs:
            blocks.append(
                "<h3>Progress lifecycle</h3>" + bars_svg(progress_pairs, "events")
            )
    elif progress_events:
        counts: Dict[str, int] = {}
        for event in progress_events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        blocks.append(
            "<h3>Progress lifecycle</h3>"
            + bars_svg(sorted(counts.items()), "events")
        )
    if loop_records:
        reasons: Dict[str, int] = {}
        for record in loop_records:
            if not record.get("success"):
                reason = record.get("failure_reason") or "unknown"
                reasons[reason] = reasons.get(reason, 0) + 1
        if reasons:
            blocks.append(
                "<h3>Failure reasons</h3>" + bars_svg(sorted(reasons.items()))
            )
    if trace_records:
        kinds: Dict[str, int] = {}
        for record in trace_records:
            kind = record.get("type") or record.get("event") or "?"
            kinds[kind] = kinds.get(kind, 0) + 1
        blocks.append(
            "<h3>Trace event mix</h3>" + bars_svg(sorted(kinds.items()), "events")
        )
    if not blocks:
        return ""
    return _card("Breakdowns", "", "".join(blocks))


def _straggler_section(progress_events: List[ProgressEvent]) -> str:
    flagged = [e for e in progress_events if e.kind == KIND_STRAGGLER]
    if not flagged:
        return ""
    rows = [
        (
            event.loop,
            f"{(event.seconds or 0.0) * 1e3:.1f}",
            f"{event.ratio:.1f}x" if event.ratio else "-",
            "in flight" if event.status is None else event.status,
        )
        for event in sorted(flagged, key=lambda e: -(e.ratio or 0.0))
    ]
    return _card(
        "Stragglers",
        "jobs flagged past the watchdog's multiple of the median latency",
        _table_view(("loop", "ms", "over median", "state"), rows),
    )


def _flame_section(profile: dict) -> str:
    spans = profile.get("spans", {})
    if not spans:
        return ""
    rows = [
        (
            path.replace(PATH_SEP, " > "),
            stat["calls"],
            f"{stat['self_seconds'] * 1e3:.2f}",
            f"{stat['cum_seconds'] * 1e3:.2f}",
        )
        for path, stat in sorted(spans.items())
    ]
    extras = ""
    peak = profile.get("peak_memory_bytes")
    if peak:
        extras = f'<p class="sub">peak memory: {peak / 1e6:.2f} MB</p>'
    return _card(
        "Where the time went",
        "span flamegraph: width is cumulative wall time, row is call depth",
        flamegraph_svg(spans)
        + extras
        + _table_view(("span path", "calls", "self ms", "cum ms"), rows),
    )


# ----------------------------------------------------------------------
# Page assembly
# ----------------------------------------------------------------------
_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; padding: 24px 20px 48px; }
h1 { font-size: 22px; margin: 0 0 2px; }
h2 { font-size: 16px; margin: 0 0 2px; }
h3 { font-size: 13px; margin: 14px 0 4px; color: #52514e; }
p.provenance { color: #898781; margin: 0 0 18px; font-size: 12px; }
p.sub { color: #52514e; margin: 0 0 10px; font-size: 12px; }
p.empty { color: #898781; font-size: 12px; }
.card {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 16px; }
.tile {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 10px 16px; min-width: 108px;
}
.tlabel { display: block; color: #52514e; font-size: 12px; }
.tvalue { display: block; font-size: 24px; font-weight: 600; }
svg { display: block; }
svg .grid { stroke: #e1e0d9; stroke-width: 1; }
svg .axis { stroke: #c3c2b7; stroke-width: 1; }
svg .ref { stroke: #898781; stroke-width: 1; stroke-dasharray: none; }
svg text { font: 11px system-ui, sans-serif; fill: #898781; }
svg text.label, svg text.value { fill: #52514e; }
svg text.flame { font-size: 11px; }
svg .s1 { fill: #2a78d6; }
svg .s2 { fill: #eb6834; }
svg .s3 { fill: #1baf7a; }
svg .dot { stroke: #fcfcfb; stroke-width: 2; }
.legend { display: flex; gap: 18px; color: #52514e; font-size: 12px;
  margin: 0 0 6px; }
.legend .key { display: inline-block; width: 10px; height: 10px;
  border-radius: 5px; margin-right: 5px; }
.legend .key.s1 { background: #2a78d6; }
.legend .key.s2 { background: #eb6834; }
table.data { border-collapse: collapse; font-size: 12px; margin-top: 6px;
  font-variant-numeric: tabular-nums; }
table.data th, table.data td {
  text-align: left; padding: 3px 12px 3px 0;
  border-bottom: 1px solid #e1e0d9;
}
table.data th { color: #52514e; font-weight: 600; }
table.data .num, table.data td.num, table.data th.num { text-align: right; }
details summary { cursor: pointer; color: #52514e; font-size: 12px;
  margin-top: 8px; }
.good { color: #006300; }
.bad { color: #d03b3b; }
.muted { color: #898781; }
svg.spark { display: inline-block; vertical-align: middle; }
svg.spark .line { fill: none; stroke: #2a78d6; stroke-width: 1.5; }
svg.spark .last { fill: #2a78d6; }
svg.spark .anom { fill: #eb6834; }
table.trend td { vertical-align: middle; }
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  body { background: #0d0d0d; color: #ffffff; }
  .card, .tile { background: #1a1a19; border-color: rgba(255,255,255,0.10); }
  h3, p.sub, .tlabel, .legend, details summary,
  svg text.label, svg text.value { color: #c3c2b7; fill: #c3c2b7; }
  svg .grid { stroke: #2c2c2a; }
  svg .axis { stroke: #383835; }
  svg .s1 { fill: #3987e5; }
  svg .s2 { fill: #d95926; }
  svg .s3 { fill: #199e70; }
  svg .dot { stroke: #1a1a19; }
  .legend .key.s1 { background: #3987e5; }
  .legend .key.s2 { background: #d95926; }
  table.data th, table.data td { border-bottom-color: #2c2c2a; }
  .good { color: #0ca30c; }
  svg.spark .line { stroke: #3987e5; }
  svg.spark .last { fill: #3987e5; }
  svg.spark .anom { fill: #d95926; }
}
"""


def build_report(
    title: str = "repro batch report",
    loop_records: Optional[List[dict]] = None,
    registry: Optional[dict] = None,
    profile: Optional[dict] = None,
    trace_records: Optional[List[dict]] = None,
    progress_events: Optional[List[ProgressEvent]] = None,
    deltas: Optional[List[MetricDelta]] = None,
    trends: Optional[Dict[str, List]] = None,
) -> str:
    """Render the fused HTML report (pure function; byte-deterministic).

    ``trends`` maps scenario name to its
    :class:`repro.obs.history.MetricTrend` list (what ``--history``
    loads); same palette and determinism rules as every other section.
    """
    provenance = []
    if loop_records is not None:
        provenance.append(f"metrics ({len(loop_records)} loops)")
    if registry is not None:
        provenance.append("metrics registry")
    if profile is not None:
        provenance.append("profile")
    if trace_records is not None:
        provenance.append(f"trace ({len(trace_records)} events)")
    if progress_events is not None:
        provenance.append(f"progress log ({len(progress_events)} events)")
    if deltas is not None:
        provenance.append(f"comparison ({len(deltas)} metrics)")
    if trends:
        provenance.append(f"history ({len(trends)} scenarios)")
    sections: List[str] = [
        f"<h1>{_esc(title)}</h1>",
        '<p class="provenance">inputs: '
        + _esc(" · ".join(provenance) if provenance else "none")
        + "</p>",
        _overview_tiles(loop_records, registry),
    ]
    if profile is not None:
        sections.append(_flame_section(profile))
    if loop_records:
        sections.append(_latency_section(loop_records))
        sections.append(_scatter_section(loop_records))
    sections.append(
        _breakdown_section(loop_records, registry, trace_records, progress_events)
    )
    if progress_events:
        sections.append(_straggler_section(progress_events))
    if deltas is not None:
        sections.append(
            _card("Regression comparison", "", delta_table_html(deltas))
        )
    if trends:
        for scenario in sorted(trends):
            sections.append(_trend_section(scenario, trends[scenario]))
    body = "".join(section for section in sections if section)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f"<body><main>{body}</main></body></html>\n"
    )


# ----------------------------------------------------------------------
# CLI (python -m repro report ...)
# ----------------------------------------------------------------------
def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Fuse batch observability artifacts into one "
        "self-contained HTML report (inline SVG, no dependencies).",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="per-loop LoopMetrics JSON array (batch --out)",
    )
    parser.add_argument(
        "--registry",
        metavar="PATH",
        help="merged metrics-registry dump (batch --metrics-out)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help="profiler span snapshot (batch --profile-out)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="merged scheduler trace JSONL (batch --trace)",
    )
    parser.add_argument(
        "--progress-log",
        metavar="PATH",
        help="progress-event JSONL (batch --progress-log)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="two BENCH_*.json files or directories to diff into a "
        "delta table",
    )
    parser.add_argument(
        "--history",
        metavar="DB",
        help="history sqlite database (repro history record) to render "
        "per-scenario trend sections with sparklines",
    )
    parser.add_argument(
        "--history-limit",
        type=int,
        metavar="N",
        help="last N history runs per scenario (default: all)",
    )
    parser.add_argument(
        "--title", default="repro batch report", help="report heading"
    )
    parser.add_argument(
        "--out",
        default="report.html",
        metavar="PATH",
        help="output file (default report.html; '-' writes to stdout)",
    )
    return parser


def report_main(argv: Optional[List[str]] = None) -> int:
    args = build_report_parser().parse_args(argv)
    inputs = (
        args.metrics, args.registry, args.profile, args.trace,
        args.progress_log, args.compare, args.history,
    )
    if not any(inputs):
        print(
            "error: nothing to report — pass at least one of --metrics, "
            "--registry, --profile, --trace, --progress-log, --compare, "
            "--history",
            file=sys.stderr,
        )
        return 2
    try:
        loop_records = load_loop_records(args.metrics) if args.metrics else None
        registry = (
            load_json_object(args.registry, "metrics registry dump")
            if args.registry
            else None
        )
        profile = (
            load_json_object(args.profile, "profiler snapshot")
            if args.profile
            else None
        )
        trace_records = load_trace_records(args.trace) if args.trace else None
        progress_events = (
            load_progress_log(args.progress_log) if args.progress_log else None
        )
        deltas = None
        if args.compare:
            old_path, new_path = args.compare
            deltas = compare_sets(
                collect_bench_files(old_path), collect_bench_files(new_path)
            )
        trends = None
        if args.history:
            import sqlite3

            from repro.obs.history import (
                HistoryError,
                HistoryStore,
                metric_trends,
            )

            try:
                store = HistoryStore(args.history)
            except (HistoryError, sqlite3.Error) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            try:
                trends = {
                    scenario: metric_trends(
                        store.runs(scenario, limit=args.history_limit)
                    )
                    for scenario in store.scenarios()
                }
            finally:
                store.close()
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    document = build_report(
        title=args.title,
        loop_records=loop_records,
        registry=registry,
        profile=profile,
        trace_records=trace_records,
        progress_events=progress_events,
        deltas=deltas,
        trends=trends,
    )
    if args.out == "-":
        sys.stdout.write(document)
        return 0
    try:
        with open(args.out, "w") as handle:
            handle.write(document)
    except OSError as error:
        print(f"error: cannot write {args.out}: {error}", file=sys.stderr)
        return 2
    print(f"report -> {args.out} ({len(document.encode('utf-8'))} bytes)")
    return 0
