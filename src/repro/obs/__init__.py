"""Observability: scheduler tracing, metrics, export, and post-mortems.

The package is a cross-cutting companion to ``repro.core``: the driver
and every scheduling framework accept an optional
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`; the default
:class:`~repro.obs.trace.NullTracer` costs one attribute test per
decision (benchmarked <5%).  See DESIGN.md §"Observability" for the
event schema and hook locations.
"""

from repro.obs.explain import explain, flight_postmortem
from repro.obs.export import (
    load_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    record_mrt_occupancy,
)
from repro.obs.prof import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.progress import (
    CallbackProgress,
    CollectingProgress,
    JSONLProgress,
    NullProgressSink,
    ProgressEvent,
    ProgressSink,
    ProgressTracker,
    Straggler,
    StragglerWatchdog,
    TTYProgress,
    lifecycle_sequence,
    load_progress_log,
)
from repro.obs.render import render_lifetime_chart, render_mrt_occupancy
from repro.obs.history import (
    HistoryError,
    HistoryRun,
    HistoryStore,
    MetricTrend,
    mad_anomalies,
    metric_trends,
)
from repro.obs.trace import (
    DEFAULT_FLIGHT_CAPACITY,
    EVENT_TYPES,
    NULL_TRACER,
    AttemptFail,
    AttemptStart,
    BoundsRecompute,
    CapGrow,
    CollectingTracer,
    Eject,
    FlightRecorder,
    ForcePlace,
    IIEscalate,
    JobStart,
    NullTracer,
    Place,
    ScheduleFound,
    TraceEvent,
    Tracer,
    event_from_dict,
    replay_times,
    split_attempts,
    surviving_places,
)

__all__ = [
    "explain",
    "flight_postmortem",
    "HistoryError",
    "HistoryRun",
    "HistoryStore",
    "MetricTrend",
    "mad_anomalies",
    "metric_trends",
    "load_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "record_mrt_occupancy",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "CallbackProgress",
    "CollectingProgress",
    "JSONLProgress",
    "NullProgressSink",
    "ProgressEvent",
    "ProgressSink",
    "ProgressTracker",
    "Straggler",
    "StragglerWatchdog",
    "TTYProgress",
    "lifecycle_sequence",
    "load_progress_log",
    "render_lifetime_chart",
    "render_mrt_occupancy",
    "DEFAULT_FLIGHT_CAPACITY",
    "EVENT_TYPES",
    "NULL_TRACER",
    "AttemptFail",
    "AttemptStart",
    "BoundsRecompute",
    "CapGrow",
    "CollectingTracer",
    "Eject",
    "FlightRecorder",
    "ForcePlace",
    "IIEscalate",
    "JobStart",
    "NullTracer",
    "Place",
    "ScheduleFound",
    "TraceEvent",
    "Tracer",
    "event_from_dict",
    "replay_times",
    "split_attempts",
    "surviving_places",
]
