"""Append-only bench/batch history: SQLite store, MAD trends, attribution.

The regression gate (:mod:`repro.obs.regress`) compares two snapshots;
this module keeps the *trajectory*.  Every ``BENCH_*.json`` envelope (or
batch summary) recorded here becomes one row keyed by (git SHA,
scenario, timestamp, provenance), and three queries ride on top:

``trend``
    A rolling-median + MAD anomaly rule over each metric's series.
    Each point is judged against the trailing window of *prior* points:
    flag when ``|x - median| > k * scale`` with
    ``scale = max(1.4826 * MAD, |median| * 0.001, 1e-12)`` — robust to
    the occasional outlier in the window itself, and able to see slow
    drifts a single committed baseline cannot.

``compare``
    The regress noise model between any two recorded runs (default:
    the last two per scenario), extended with provenance-mismatch
    warnings and span-level attribution — diffing the profiler
    snapshots stored alongside each run to name which span
    (driver/framework/slack/MinDist) accounts for a time regression.

``show``/``record``
    Plain inventory and ingestion.  Recording is append-only and
    canonical (payloads stored as sorted-key JSON), so recording the
    same inputs twice yields byte-identical rows modulo the
    timestamp/SHA provenance fields.

Storage is stdlib ``sqlite3``; the DB schema is versioned separately
from the bench payload schema (both are checked on open/ingest).
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
import sqlite3
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.canonical import canonical_dumps
from repro.obs.bench import BENCH_SCHEMA, load_payload

#: Bump when the *database* layout changes incompatibly.
HISTORY_DB_VERSION = 1

#: MAD anomaly rule defaults (see module docstring).
TREND_WINDOW = 8
TREND_MAD_K = 3.5
#: Scale factor making MAD a consistent sigma estimator under normality.
MAD_SIGMA = 1.4826
#: A point needs at least this many prior points to be judged.
TREND_MIN_POINTS = 4


class HistoryError(Exception):
    """Schema/version problems with a history database (CLI exits 2)."""


@dataclasses.dataclass
class HistoryRun:
    """One recorded run (a bench envelope or batch summary)."""

    run_id: int
    scenario: str
    git_sha: Optional[str]
    created_unix: float
    recorded_unix: float
    python: Optional[str]
    platform: Optional[str]
    cpu_count: Optional[int]
    payload: dict


class HistoryStore:
    """Append-only SQLite store of schema-versioned run payloads."""

    def __init__(self, path: str):
        self.path = path
        self._conn = sqlite3.connect(path)
        self._ensure_schema()

    # -- schema --------------------------------------------------------
    def _ensure_schema(self) -> None:
        conn = self._conn
        conn.execute(
            "CREATE TABLE IF NOT EXISTS history_meta ("
            "  key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS runs ("
            "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
            "  scenario TEXT NOT NULL,"
            "  git_sha TEXT,"
            "  created_unix REAL NOT NULL DEFAULT 0,"
            "  recorded_unix REAL NOT NULL,"
            "  python TEXT,"
            "  platform TEXT,"
            "  cpu_count INTEGER,"
            "  schema_version INTEGER NOT NULL,"
            "  payload TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS runs_by_scenario"
            "  ON runs (scenario, id)"
        )
        row = conn.execute(
            "SELECT value FROM history_meta WHERE key = 'db_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO history_meta (key, value) VALUES (?, ?)",
                ("db_version", str(HISTORY_DB_VERSION)),
            )
            conn.commit()
        elif int(row[0]) != HISTORY_DB_VERSION:
            raise HistoryError(
                f"{self.path}: history db version {row[0]} "
                f"!= supported {HISTORY_DB_VERSION}"
            )

    # -- ingestion -----------------------------------------------------
    def record_payload(self, scenario: str, payload: dict) -> int:
        """Append one schema-versioned payload; returns the new run id.

        The payload is stored as canonical (sorted-key) JSON, so two
        records of identical inputs differ only in ``recorded_unix``
        and whatever timestamp/SHA provenance the envelope itself
        carries.
        """
        if payload.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"cannot record schema {payload.get('schema')!r}; "
                f"expected {BENCH_SCHEMA!r}"
            )
        cursor = self._conn.execute(
            "INSERT INTO runs (scenario, git_sha, created_unix, recorded_unix,"
            "  python, platform, cpu_count, schema_version, payload)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                scenario,
                payload.get("git_sha"),
                float(payload.get("created_unix") or 0.0),
                time.time(),
                payload.get("python"),
                payload.get("platform"),
                payload.get("cpu_count"),
                int(payload.get("schema_version") or 0),
                canonical_dumps(payload),
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def record_paths(self, paths: Sequence[str]) -> List[Tuple[str, int]]:
        """Record BENCH_*.json files (or directories of them).

        Returns ``[(scenario, run_id), ...]`` in ingestion order.
        Raises ``OSError``/``ValueError`` on unreadable or off-schema
        files — ingestion is all-or-nothing per call.
        """
        files: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                found = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
                if not found:
                    raise FileNotFoundError(f"no BENCH_*.json files under {path}")
                files.extend(found)
            else:
                files.append(path)
        recorded = []
        for name in files:
            payload = load_payload(name, schema=BENCH_SCHEMA)
            scenario = payload.get("scenario") or os.path.basename(name)
            recorded.append((scenario, self.record_payload(scenario, payload)))
        return recorded

    # -- queries -------------------------------------------------------
    @staticmethod
    def _row_to_run(row) -> HistoryRun:
        return HistoryRun(
            run_id=row[0],
            scenario=row[1],
            git_sha=row[2],
            created_unix=row[3],
            recorded_unix=row[4],
            python=row[5],
            platform=row[6],
            cpu_count=row[7],
            payload=json.loads(row[8]),
        )

    _COLUMNS = (
        "id, scenario, git_sha, created_unix, recorded_unix,"
        " python, platform, cpu_count, payload"
    )

    def scenarios(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT scenario FROM runs ORDER BY scenario"
        ).fetchall()
        return [row[0] for row in rows]

    def runs(
        self, scenario: Optional[str] = None, limit: Optional[int] = None
    ) -> List[HistoryRun]:
        """Runs in recording order (oldest first), optionally the last N."""
        query = f"SELECT {self._COLUMNS} FROM runs"
        params: tuple = ()
        if scenario is not None:
            query += " WHERE scenario = ?"
            params = (scenario,)
        query += " ORDER BY id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params = params + (int(limit),)
        rows = self._conn.execute(query, params).fetchall()
        return [self._row_to_run(row) for row in reversed(rows)]

    def get(self, run_id: int) -> HistoryRun:
        row = self._conn.execute(
            f"SELECT {self._COLUMNS} FROM runs WHERE id = ?", (int(run_id),)
        ).fetchone()
        if row is None:
            raise KeyError(f"no run #{run_id} in {self.path}")
        return self._row_to_run(row)

    def close(self) -> None:
        self._conn.close()


# ----------------------------------------------------------------------
# Rolling-median + MAD anomaly rule
# ----------------------------------------------------------------------
def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = ordered[n // 2]
    if n % 2 == 0:
        mid = (mid + ordered[n // 2 - 1]) / 2.0
    return mid


def mad_anomalies(
    values: Sequence[Optional[float]],
    window: int = TREND_WINDOW,
    k: float = TREND_MAD_K,
    min_points: int = TREND_MIN_POINTS,
) -> List[bool]:
    """Flag each point against the trailing window of *prior* points.

    A point is anomalous when ``|x - median| > k * scale`` over the up
    to ``window`` preceding non-None values, with
    ``scale = max(1.4826 * MAD, |median| * 0.001, 1e-12)``: the MAD
    floor tolerates a window of identical values (MAD 0) without
    flagging float dust, while 1.4826 makes MAD commensurate with a
    standard deviation.  Points with fewer than ``min_points`` prior
    values are never flagged (no basis to judge).
    """
    flags: List[bool] = []
    history: List[float] = []
    for value in values:
        if value is None:
            flags.append(False)
            continue
        prior = history[-window:]
        if len(prior) < min_points:
            flags.append(False)
        else:
            med = _median(prior)
            mad = _median([abs(x - med) for x in prior])
            scale = max(MAD_SIGMA * mad, abs(med) * 0.001, 1e-12)
            flags.append(abs(value - med) > k * scale)
        history.append(value)
    return flags


@dataclasses.dataclass
class MetricTrend:
    """One metric's recorded series plus its anomaly flags."""

    scenario: str
    name: str
    unit: str
    direction: str
    kind: str
    run_ids: List[int]
    values: List[Optional[float]]
    anomalies: List[bool]

    @property
    def latest(self) -> Optional[float]:
        present = [v for v in self.values if v is not None]
        return present[-1] if present else None

    @property
    def latest_anomalous(self) -> bool:
        return bool(self.anomalies) and self.anomalies[-1]

    @property
    def anomaly_count(self) -> int:
        return sum(1 for flag in self.anomalies if flag)


def metric_trends(
    runs: Sequence[HistoryRun],
    window: int = TREND_WINDOW,
    k: float = TREND_MAD_K,
) -> List[MetricTrend]:
    """Per-metric trends over one scenario's runs (oldest first)."""
    if not runs:
        return []
    scenario = runs[0].scenario
    names: List[str] = []
    specs: Dict[str, dict] = {}
    for run in runs:
        for name, entry in (run.payload.get("metrics") or {}).items():
            if name not in specs:
                names.append(name)
                specs[name] = entry
    trends = []
    for name in sorted(names):
        spec = specs[name]
        values = [
            (run.payload.get("metrics") or {}).get(name, {}).get("value")
            for run in runs
        ]
        trends.append(
            MetricTrend(
                scenario=scenario,
                name=name,
                unit=spec.get("unit", ""),
                direction=spec.get("direction", "lower"),
                kind=spec.get("kind", "count"),
                run_ids=[run.run_id for run in runs],
                values=values,
                anomalies=mad_anomalies(values, window=window, k=k),
            )
        )
    return trends


def _spark(values: Sequence[Optional[float]]) -> str:
    """Unicode sparkline for terminal trend tables ('·' = missing)."""
    blocks = "▁▂▃▄▅▆▇█"
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append("·")
        elif span <= 0:
            chars.append(blocks[0])
        else:
            chars.append(blocks[min(7, int((value - lo) / span * 7.999))])
    return "".join(chars)


def render_trends(trends: Sequence[MetricTrend], anomalies_only: bool = False) -> str:
    """Deterministic trend table for one scenario."""
    if not trends:
        return "(no runs recorded)"
    lines = [
        f"=== trend: {trends[0].scenario} "
        f"({len(trends[0].values)} run(s)) ===",
        f"  {'metric':<28} {'latest':>12} {'unit':<10} "
        f"{'anomalies':>9}  series",
    ]
    shown = 0
    for trend in trends:
        if anomalies_only and not trend.anomaly_count:
            continue
        shown += 1
        latest = "-" if trend.latest is None else f"{trend.latest:.4g}"
        flag = " <- ANOMALY" if trend.latest_anomalous else ""
        lines.append(
            f"  {trend.name:<28} {latest:>12} {trend.unit:<10} "
            f"{trend.anomaly_count:>9}  {_spark(trend.values)}{flag}"
        )
    if not shown:
        lines.append("  (no anomalies)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Batch summaries as history payloads
# ----------------------------------------------------------------------
def batch_report_payload(report) -> dict:
    """Wrap a :class:`repro.service.batch.BatchReport` as a bench payload.

    This is what ``python -m repro batch --history DB`` records: job
    status counts and cache behavior as deterministic count metrics,
    wall time as a (non-gating) time metric, plus the same
    schedule-quality aggregates bench scenarios carry.
    """
    from repro.obs.bench import corpus_aggregates, metric, wrap_payload

    counts = report.counts()
    metrics = {
        "jobs": metric(len(report.results), "loops", direction="higher"),
        "jobs_ok": metric(counts.get("ok", 0), "loops", direction="higher"),
        "jobs_cached": metric(
            counts.get("cached", 0), "loops", direction="higher"
        ),
        "jobs_failed": metric(
            counts.get("failed", 0) + counts.get("timeout", 0)
            + counts.get("crashed", 0),
            "loops",
            direction="lower",
        ),
        "wall_s": metric(
            report.wall_seconds, "s", direction="lower", kind="time"
        ),
        "pool_utilization": metric(
            report.pool.utilization, "fraction", direction="higher",
            kind="time",
        ),
    }
    if report.cache is not None:
        metrics["cache_hits"] = metric(
            report.cache.hits, "hits", direction="higher"
        )
    metrics.update(corpus_aggregates(report.loop_metrics))
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": "batch-cli",
            "description": "batch CLI run summary",
            "metrics": metrics,
            "profile": None,
        },
    )


# ----------------------------------------------------------------------
# CLI (python -m repro history ...)
# ----------------------------------------------------------------------
def _open_store(path: str) -> HistoryStore:
    return HistoryStore(path)


def _record_main(args) -> int:
    store = _open_store(args.db)
    try:
        recorded = store.record_paths(args.paths)
    except (OSError, ValueError) as error:
        print(f"error: {error}")
        store.close()
        return 2
    store.close()
    for scenario, run_id in recorded:
        print(f"recorded {scenario} as run #{run_id}")
    print(f"history: {len(recorded)} run(s) -> {args.db}")
    return 0


def _show_main(args) -> int:
    store = _open_store(args.db)
    try:
        scenarios = [args.scenario] if args.scenario else store.scenarios()
        if not scenarios:
            print("(empty history)")
            return 0
        out = []
        for scenario in scenarios:
            runs = store.runs(scenario, limit=args.limit)
            if args.json:
                out.extend(
                    {
                        "run_id": run.run_id,
                        "scenario": run.scenario,
                        "git_sha": run.git_sha,
                        "recorded_unix": run.recorded_unix,
                        "payload": run.payload,
                    }
                    for run in runs
                )
                continue
            print(f"=== {scenario} ({len(runs)} run(s)) ===")
            for run in runs:
                sha = (run.git_sha or "-")[:12]
                n_metrics = len(run.payload.get("metrics") or {})
                print(
                    f"  #{run.run_id:<5} sha={sha:<12} "
                    f"python={run.python or '-':<8} "
                    f"cpus={run.cpu_count if run.cpu_count is not None else '-':<3} "
                    f"{n_metrics} metric(s)"
                )
        if args.json:
            print(canonical_dumps(out, indent=2))
        return 0
    finally:
        store.close()


def _trend_main(args) -> int:
    store = _open_store(args.db)
    try:
        scenarios = [args.scenario] if args.scenario else store.scenarios()
        if not scenarios:
            print("(empty history)")
            return 0
        anomalous = 0
        payload = []
        for scenario in scenarios:
            runs = store.runs(scenario, limit=args.limit)
            trends = metric_trends(runs, window=args.window, k=args.mad_k)
            anomalous += sum(trend.anomaly_count for trend in trends)
            if args.json:
                payload.extend(
                    {
                        "scenario": trend.scenario,
                        "metric": trend.name,
                        "unit": trend.unit,
                        "run_ids": trend.run_ids,
                        "values": trend.values,
                        "anomalies": trend.anomalies,
                    }
                    for trend in trends
                )
            else:
                print(render_trends(trends, anomalies_only=args.anomalies_only))
        if args.json:
            print(canonical_dumps(payload, indent=2))
        if args.fail_on_anomaly and anomalous:
            print(f"FAIL: {anomalous} anomalous point(s) in the history")
            return 1
        return 0
    finally:
        store.close()


def _compare_main(args) -> int:
    from repro.obs.regress import (
        attribute_spans,
        compare_payload_pair,
        gating_regressions,
        provenance_mismatches,
        render_table,
        summarize,
    )

    store = _open_store(args.db)
    try:
        if (args.old is None) != (args.new is None):
            print("error: pass both --old and --new, or neither")
            return 2
        if args.old is not None:
            try:
                old_run, new_run = store.get(args.old), store.get(args.new)
            except KeyError as error:
                print(f"error: {error}")
                return 2
            pairs = [(old_run, new_run)]
        else:
            scenarios = [args.scenario] if args.scenario else store.scenarios()
            pairs = []
            for scenario in scenarios:
                runs = store.runs(scenario)
                if len(runs) < 2:
                    print(f"{scenario}: fewer than two runs recorded; skipping")
                    continue
                pairs.append((runs[-2], runs[-1]))
        if not pairs:
            print("error: nothing to compare")
            return 2

        exit_code = 0
        for old_run, new_run in pairs:
            print(
                f"=== compare: {new_run.scenario} "
                f"run #{old_run.run_id} -> #{new_run.run_id} ==="
            )
            deltas = compare_payload_pair(
                old_run.payload,
                new_run.payload,
                threshold=args.threshold,
                iqr_factor=args.iqr_factor,
                gate_time=args.gate_time,
            )
            print(render_table(deltas))
            for warning in provenance_mismatches(
                old_run.payload, new_run.payload
            ):
                print(f"warning: {warning}")
            regressed_time = any(
                d.is_regression and d.kind == "time" for d in deltas
            )
            if regressed_time or args.attribute_always:
                for line in attribute_spans(old_run.payload, new_run.payload):
                    print(line)
            print(summarize(deltas))
            if args.fail_on_regress and gating_regressions(deltas):
                exit_code = 1
        if exit_code:
            print("FAIL: gating regression(s) detected")
        return exit_code
    finally:
        store.close()


def build_history_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro history",
        description="Append-only bench/batch history: record envelopes, "
        "trend metrics with a rolling-median + MAD anomaly rule, and "
        "compare runs with span-level regression attribution.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="ingest BENCH_*.json files")
    record.add_argument("--db", required=True, help="history sqlite path")
    record.add_argument(
        "paths", nargs="+", help="BENCH_*.json files or directories"
    )

    show = sub.add_parser("show", help="list recorded runs")
    show.add_argument("--db", required=True)
    show.add_argument("--scenario", help="restrict to one scenario")
    show.add_argument("--limit", type=int, help="last N runs per scenario")
    show.add_argument("--json", action="store_true", help="emit JSON")

    trend = sub.add_parser(
        "trend", help="rolling-median + MAD anomaly scan over each metric"
    )
    trend.add_argument("--db", required=True)
    trend.add_argument("--scenario", help="restrict to one scenario")
    trend.add_argument("--limit", type=int, help="last N runs per scenario")
    trend.add_argument(
        "--window", type=int, default=TREND_WINDOW,
        help=f"trailing window size (default {TREND_WINDOW})",
    )
    trend.add_argument(
        "--mad-k", type=float, default=TREND_MAD_K,
        help=f"anomaly threshold in MAD sigmas (default {TREND_MAD_K})",
    )
    trend.add_argument(
        "--anomalies-only", action="store_true",
        help="list only metrics with anomalous points",
    )
    trend.add_argument(
        "--fail-on-anomaly", action="store_true",
        help="exit 1 when any anomalous point exists",
    )
    trend.add_argument("--json", action="store_true", help="emit JSON")

    compare = sub.add_parser(
        "compare",
        help="regress two recorded runs (default: last two per scenario) "
        "with provenance warnings and span-level attribution",
    )
    compare.add_argument("--db", required=True)
    compare.add_argument("--scenario", help="restrict to one scenario")
    compare.add_argument("--old", type=int, help="old run id")
    compare.add_argument("--new", type=int, help="new run id")
    compare.add_argument("--threshold", type=float, default=0.02)
    compare.add_argument("--iqr-factor", type=float, default=2.0)
    compare.add_argument(
        "--gate-time", action="store_true",
        help="let wall-clock regressions gate --fail-on-regress",
    )
    compare.add_argument("--fail-on-regress", action="store_true")
    compare.add_argument(
        "--attribute-always", action="store_true",
        help="print span attribution even without a time regression",
    )
    return parser


def history_main(argv: Optional[List[str]] = None) -> int:
    args = build_history_parser().parse_args(argv)
    handlers = {
        "record": _record_main,
        "show": _show_main,
        "trend": _trend_main,
        "compare": _compare_main,
    }
    try:
        return handlers[args.command](args)
    except (HistoryError, sqlite3.Error) as error:
        print(f"error: {error}")
        return 2
