"""The unified benchmark harness: scenarios -> schema-versioned JSON.

Every benchmark scenario runs behind one protocol — warmup runs, N
timed repeats, median + IQR — and is written as ``BENCH_<scenario>.json``
so perf claims become comparable artifacts instead of free-form text:

    python -m repro bench                      # default scenario set
    python -m repro bench --scenario slack --corpus 120 --repeats 5
    python -m repro bench --compare old/ new/ --fail-on-regress

Each payload carries wall-time statistics, throughput (loops/sec and
ops-scheduled/sec), the schedule-quality aggregates the paper's
evaluation is built on (II vs. MII, MaxLive vs. MinAvg), scheduler
effort (attempts/ejections), a profiler span breakdown
(:mod:`repro.obs.prof`), the corpus size, and the git SHA.  The noise
model that makes two payloads comparable lives in
:mod:`repro.obs.regress`; the schema is documented in DESIGN.md.

Metric entries are self-describing so the comparator needs no
out-of-band table::

    {"value": 1.84, "unit": "s", "direction": "lower",
     "kind": "time", "iqr": 0.02}

``direction`` says which way is better; ``kind`` separates wall-clock
metrics (machine-dependent, gated only with ``--gate-time``) from
deterministic ones (identical on every machine for a given corpus, so
any delta is a real behavior change).
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import statistics
import subprocess
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.canonical import canonical_dump

#: Bump when a payload's structure changes incompatibly.  Loaders
#: refuse other versions rather than mis-reading them.
BENCH_SCHEMA = "repro.bench"
BENCH_SCHEMA_VERSION = 1

#: Schema tag for ``--metrics-out`` dumps of a MetricsRegistry.
METRICS_SCHEMA = "repro.metrics"


# ----------------------------------------------------------------------
# Schema helpers (shared with --metrics-out and the regression gate)
# ----------------------------------------------------------------------
def git_sha() -> Optional[str]:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def wrap_payload(schema: str, body: dict) -> dict:
    """Stamp a body with schema/version/provenance envelope fields."""
    return {
        "schema": schema,
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        **body,
    }


def write_json(path: str, payload: dict) -> None:
    """Write one payload as canonical (sorted-key) pretty JSON."""
    canonical_dump(payload, path, indent=2)


def load_payload(path: str, schema: str = BENCH_SCHEMA) -> dict:
    """Load and validate one schema-versioned JSON payload."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != schema:
        raise ValueError(
            f"{path}: expected schema {schema!r}, found {payload.get('schema')!r}"
        )
    if payload.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema version {payload.get('schema_version')!r} "
            f"!= supported {BENCH_SCHEMA_VERSION}"
        )
    return payload


def metric(
    value: float,
    unit: str,
    direction: str = "lower",
    kind: str = "count",
    iqr: float = 0.0,
) -> dict:
    """One self-describing metric entry (see module docstring)."""
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', got {direction!r}")
    if kind not in ("time", "count"):
        raise ValueError(f"kind must be 'time' or 'count', got {kind!r}")
    return {
        "value": float(value),
        "unit": unit,
        "direction": direction,
        "kind": kind,
        "iqr": float(iqr),
    }


def sample_stats(samples: Sequence[float]) -> dict:
    """Median + IQR (and extremes) over repeat measurements."""
    ordered = sorted(samples)
    n = len(ordered)
    if n == 0:
        return {"n": 0, "median": 0.0, "iqr": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
    median = statistics.median(ordered)
    if n >= 4:
        q1, _, q3 = statistics.quantiles(ordered, n=4)
        iqr = q3 - q1
    elif n > 1:
        iqr = ordered[-1] - ordered[0]
    else:
        iqr = 0.0
    return {
        "n": n,
        "median": median,
        "iqr": iqr,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
    }


def corpus_aggregates(loop_metrics) -> Dict[str, dict]:
    """Deterministic schedule-quality aggregates over LoopMetrics.

    These are machine-independent for a fixed corpus: the scheduler is
    deterministic, so *any* delta between two runs at the same corpus
    size is a behavior change, not noise.
    """
    scheduled = [m for m in loop_metrics if m.success]
    n = len(loop_metrics)
    ops_scheduled = sum(m.n_ops for m in scheduled)
    sum_ii = sum(m.ii for m in scheduled)
    sum_mii = sum(m.mii for m in scheduled)
    sum_maxlive = sum(m.max_live for m in scheduled)
    sum_minavg = sum(m.min_avg for m in scheduled)
    return {
        "loops": metric(n, "loops", direction="higher"),
        "loops_scheduled": metric(len(scheduled), "loops", direction="higher"),
        "ops_scheduled": metric(ops_scheduled, "ops", direction="higher"),
        "success_rate": metric(
            len(scheduled) / n if n else 0.0, "fraction", direction="higher"
        ),
        "optimality_rate": metric(
            sum(1 for m in scheduled if m.optimal) / n if n else 0.0,
            "fraction",
            direction="higher",
        ),
        "ii_over_mii": metric(
            sum_ii / sum_mii if sum_mii else 0.0, "ratio", direction="lower"
        ),
        "maxlive_over_minavg": metric(
            sum_maxlive / sum_minavg if sum_minavg else 0.0,
            "ratio",
            direction="lower",
        ),
        "attempts_total": metric(
            sum(m.attempts for m in loop_metrics), "attempts", direction="lower"
        ),
        "ejections_total": metric(
            sum(m.ejections for m in loop_metrics), "ejections", direction="lower"
        ),
        "placements_total": metric(
            sum(m.placements for m in loop_metrics), "placements", direction="lower"
        ),
    }


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Scenario:
    """One benchmarkable scheduler configuration.

    ``corpus_builder(size)`` returns the programs to schedule; the
    default is the paper's deterministic generated corpus.
    """

    name: str
    description: str
    algorithm: str = "slack"
    options_builder: Optional[Callable[[], object]] = None
    corpus_builder: Optional[Callable[[int], list]] = None
    #: Optional custom runner with run_scenario's signature; scenarios
    #: that measure something other than one serial corpus sweep (e.g.
    #: the batch service's speedup/cache protocol) plug in here.
    runner: Optional[Callable[..., dict]] = None

    def build_corpus(self, size: int) -> list:
        if self.corpus_builder is not None:
            return self.corpus_builder(size)
        from repro.workloads import paper_corpus

        return paper_corpus(size)

    def options(self):
        return self.options_builder() if self.options_builder else None


def _batch_runner(scenario, **kwargs) -> dict:
    from repro.service.batch import run_batch_bench

    return run_batch_bench(scenario, **kwargs)


def _server_runner(scenario, **kwargs) -> dict:
    from repro.server.bench import run_server_bench

    return run_server_bench(scenario, **kwargs)


def _machine_zoo_runner(scenario, **kwargs) -> dict:
    return run_machine_zoo_bench(scenario, **kwargs)


def _scheduler_speed_runner(scenario, **kwargs) -> dict:
    return run_scheduler_speed_bench(scenario, **kwargs)


def _livermore_corpus(size: int) -> list:
    """The Livermore kernels (size caps the count; they are few)."""
    from repro.workloads.livermore import livermore_kernels

    suite = livermore_kernels()
    return suite[: max(1, min(size, len(suite)))]


def _scenarios() -> Dict[str, Scenario]:
    from repro.core import SchedulerOptions

    return {
        "slack": Scenario(
            "slack", "bidirectional slack scheduling (the paper) over the corpus"
        ),
        "cydrome": Scenario(
            "cydrome", "Cydrome-style static-priority baseline", algorithm="cydrome"
        ),
        "warp": Scenario(
            "warp", "Warp-style hierarchical list scheduler (§8)", algorithm="warp"
        ),
        "unidirectional": Scenario(
            "unidirectional",
            "slack scheduling without the bidirectional heuristic (§7 ablation)",
            options_builder=lambda: SchedulerOptions(bidirectional=False),
        ),
        "static_priority": Scenario(
            "static_priority",
            "slack scheduling with frozen initial-slack priority (§8 ablation)",
            options_builder=lambda: SchedulerOptions(dynamic_priority=False),
        ),
        "pressure_limited": Scenario(
            "pressure_limited",
            "register-budgeted scheduling (MaxLive <= 40, II escalates)",
            options_builder=lambda: SchedulerOptions(max_rr_pressure=40),
        ),
        "livermore": Scenario(
            "livermore",
            "the Livermore kernel suite under slack scheduling",
            corpus_builder=_livermore_corpus,
        ),
        "batch": Scenario(
            "batch",
            "the repro.service batch path: parallel speedup + warm/cold cache",
            runner=_batch_runner,
        ),
        "server": Scenario(
            "server",
            "the repro.server daemon under concurrent clients: request "
            "latency quantiles, req/s, cache hit ratio",
            runner=_server_runner,
        ),
        "machine_zoo": Scenario(
            "machine_zoo",
            "every registry target over one corpus: per-target II/MII "
            "and MaxLive/MinAvg",
            runner=_machine_zoo_runner,
        ),
        "scheduler_speed": Scenario(
            "scheduler_speed",
            "pure placement hot path: modulo_schedule over precompiled "
            "loops with prebuilt (warm) DDGs",
            runner=_scheduler_speed_runner,
        ),
    }


#: The set ``python -m repro bench`` runs when no --scenario is given.
DEFAULT_SCENARIOS = ("slack", "cydrome", "warp")


def scenario_registry() -> Dict[str, Scenario]:
    return _scenarios()


def bench_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def run_scenario(
    scenario: Scenario,
    corpus_size: int = 60,
    repeats: int = 3,
    warmup: int = 1,
    profile: bool = True,
    memory: bool = False,
    machine=None,
) -> dict:
    """Run one scenario under the common protocol; return the payload.

    Timed repeats run unprofiled (the span clock would perturb them);
    a final profiled pass captures the span breakdown and the
    LoopMetrics used for the deterministic aggregates.
    """
    from repro.experiments import run_corpus
    from repro.machine import cydra5
    from repro.obs.prof import Profiler

    machine = machine or cydra5()
    programs = scenario.build_corpus(corpus_size)
    options = scenario.options()

    def one_run(profiler=None):
        return run_corpus(
            programs,
            machine,
            algorithm=scenario.algorithm,
            options=options,
            profiler=profiler,
        )

    for _ in range(max(0, warmup)):
        one_run()
    samples = []
    loop_metrics = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        loop_metrics = one_run()
        samples.append(time.perf_counter() - started)

    profile_snapshot = None
    if profile:
        profiler = Profiler(memory=memory)
        loop_metrics = one_run(profiler=profiler)
        profile_snapshot = profiler.snapshot()
        profiler.close()

    stats = sample_stats(samples)
    wall = stats["median"]
    ops_scheduled = sum(m.n_ops for m in loop_metrics if m.success)
    metrics = {
        "wall_time_s": metric(
            wall, "s", direction="lower", kind="time", iqr=stats["iqr"]
        ),
        "loops_per_s": metric(
            len(loop_metrics) / wall if wall else 0.0,
            "loops/s",
            direction="higher",
            kind="time",
            iqr=_ratio_iqr(len(loop_metrics), stats),
        ),
        "ops_scheduled_per_s": metric(
            ops_scheduled / wall if wall else 0.0,
            "ops/s",
            direction="higher",
            kind="time",
            iqr=_ratio_iqr(ops_scheduled, stats),
        ),
    }
    metrics.update(corpus_aggregates(loop_metrics))
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": scenario.name,
            "description": scenario.description,
            "algorithm": scenario.algorithm,
            "machine": machine.name,
            "corpus_size": len(programs),
            "repeats": stats["n"],
            "warmup": warmup,
            "wall_time_samples_s": samples,
            "metrics": metrics,
            "profile": profile_snapshot,
        },
    )


def run_machine_zoo_bench(
    scenario: Scenario,
    corpus_size: int = 60,
    repeats: int = 3,
    warmup: int = 1,
    profile: bool = True,
    memory: bool = False,
    machine=None,
) -> dict:
    """Benchmark one corpus across every registry target (the zoo).

    One heterogeneous :func:`repro.experiments.run_corpus_sweep` over
    :func:`repro.machine.registry.default_specs` per timed repeat.  The
    payload carries a ``targets`` table (one row per machine: II/MII,
    MaxLive/MinAvg, success counts, spec digest) plus family-prefixed
    deterministic metric entries (``vliw-wide_ii_over_mii``, ...) so
    ``--fail-on-regress`` gates each target's schedule quality
    independently.  Wall time spans the whole sweep.
    """
    from repro.experiments import run_corpus_sweep
    from repro.machine.registry import default_specs

    if machine is not None:
        raise ValueError(
            "machine_zoo benchmarks every registry target; "
            "--machine does not apply to it"
        )
    specs = default_specs()
    machines = [spec.build() for spec in specs]
    programs = scenario.build_corpus(corpus_size)
    options = scenario.options()

    def one_run():
        return run_corpus_sweep(
            programs, machines, algorithm=scenario.algorithm, options=options
        )

    for _ in range(max(0, warmup)):
        one_run()
    samples: List[float] = []
    per_machine = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        per_machine = one_run()
        samples.append(time.perf_counter() - started)

    stats = sample_stats(samples)
    wall = stats["median"]
    total_loops = len(programs) * len(machines)
    metrics = {
        "wall_time_s": metric(
            wall, "s", direction="lower", kind="time", iqr=stats["iqr"]
        ),
        "loops_per_s": metric(
            total_loops / wall if wall else 0.0,
            "loops/s",
            direction="higher",
            kind="time",
            iqr=_ratio_iqr(total_loops, stats),
        ),
        "targets": metric(len(machines), "machines", direction="higher"),
    }
    targets = []
    for spec, loop_metrics in zip(specs, per_machine):
        aggregates = corpus_aggregates(loop_metrics)
        prefix = spec.family
        metrics[f"{prefix}_ii_over_mii"] = aggregates["ii_over_mii"]
        metrics[f"{prefix}_maxlive_over_minavg"] = aggregates[
            "maxlive_over_minavg"
        ]
        metrics[f"{prefix}_success_rate"] = aggregates["success_rate"]
        scheduled = [m for m in loop_metrics if m.success]
        targets.append(
            {
                "family": spec.family,
                "machine": spec.name,
                "digest": spec.digest(),
                "loops": len(loop_metrics),
                "loops_scheduled": len(scheduled),
                "sum_ii": sum(m.ii for m in scheduled),
                "sum_mii": sum(m.mii for m in scheduled),
                "sum_max_live": sum(m.max_live for m in scheduled),
                "sum_min_avg": sum(m.min_avg for m in scheduled),
                "ii_over_mii": aggregates["ii_over_mii"]["value"],
                "maxlive_over_minavg": aggregates["maxlive_over_minavg"][
                    "value"
                ],
            }
        )
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": scenario.name,
            "description": scenario.description,
            "algorithm": scenario.algorithm,
            "machines": [spec.name for spec in specs],
            "corpus_size": len(programs),
            "repeats": stats["n"],
            "warmup": warmup,
            "wall_time_samples_s": samples,
            "metrics": metrics,
            "targets": targets,
            "profile": None,
        },
    )


def run_scheduler_speed_bench(
    scenario: Scenario,
    corpus_size: int = 60,
    repeats: int = 3,
    warmup: int = 1,
    profile: bool = True,
    memory: bool = False,
    machine=None,
) -> dict:
    """Benchmark the placement hot path in isolation.

    The corpus is compiled and its dependence graphs are built *once*,
    outside the timed region, and at least one warmup sweep always runs
    so the DDG-level reuse stashes (MinDist closures, RecMII/ResMII,
    unit binding, slack tables) are warm.  Each timed repeat is then a
    full ``modulo_schedule`` sweep over the prebuilt graphs — the
    steady-state scheduling throughput a resident compiler or the
    scheduling service sees, with no frontend or graph-build time mixed
    in.  The deterministic metrics (II vs MII, attempts, ejections,
    placements) gate regressions; they must be identical on every
    machine for a fixed corpus.
    """
    from repro.core import modulo_schedule
    from repro.frontend import compile_loop
    from repro.ir.ddg import build_ddg
    from repro.machine import cydra5
    from repro.obs.prof import Profiler

    machine = machine or cydra5()
    programs = scenario.build_corpus(corpus_size)
    loops = [compile_loop(program) for program in programs]
    ddgs = [build_ddg(loop, machine) for loop in loops]
    options = scenario.options()

    def sweep(profiler=None):
        return [
            modulo_schedule(
                loop,
                machine,
                algorithm=scenario.algorithm,
                options=options,
                ddg=ddg,
                profiler=profiler,
            )
            for loop, ddg in zip(loops, ddgs)
        ]

    for _ in range(max(1, warmup)):  # always warm the DDG-level caches
        sweep()
    samples: List[float] = []
    results = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        results = sweep()
        samples.append(time.perf_counter() - started)

    profile_snapshot = None
    if profile:
        profiler = Profiler(memory=memory)
        results = sweep(profiler=profiler)
        profile_snapshot = profiler.snapshot()
        profiler.close()

    stats = sample_stats(samples)
    wall = stats["median"]
    scheduled = [result for result in results if result.success]
    ops_scheduled = sum(len(result.loop.real_ops) for result in scheduled)
    sum_ii = sum(result.schedule.ii for result in scheduled)
    sum_mii = sum(result.mii for result in scheduled)
    metrics = {
        "wall_time_s": metric(
            wall, "s", direction="lower", kind="time", iqr=stats["iqr"]
        ),
        "loops_per_s": metric(
            len(results) / wall if wall else 0.0,
            "loops/s",
            direction="higher",
            kind="time",
            iqr=_ratio_iqr(len(results), stats),
        ),
        "ops_scheduled_per_s": metric(
            ops_scheduled / wall if wall else 0.0,
            "ops/s",
            direction="higher",
            kind="time",
            iqr=_ratio_iqr(ops_scheduled, stats),
        ),
        "loops": metric(len(results), "loops", direction="higher"),
        "loops_scheduled": metric(len(scheduled), "loops", direction="higher"),
        "ops_scheduled": metric(ops_scheduled, "ops", direction="higher"),
        "success_rate": metric(
            len(scheduled) / len(results) if results else 0.0,
            "fraction",
            direction="higher",
        ),
        "ii_over_mii": metric(
            sum_ii / sum_mii if sum_mii else 0.0, "ratio", direction="lower"
        ),
        "attempts_total": metric(
            sum(result.stats.attempts for result in results),
            "attempts",
            direction="lower",
        ),
        "ejections_total": metric(
            sum(result.stats.ejections for result in results),
            "ejections",
            direction="lower",
        ),
        "placements_total": metric(
            sum(result.stats.placements for result in results),
            "placements",
            direction="lower",
        ),
    }
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": scenario.name,
            "description": scenario.description,
            "algorithm": scenario.algorithm,
            "machine": machine.name,
            "corpus_size": len(programs),
            "repeats": stats["n"],
            "warmup": max(1, warmup),
            "wall_time_samples_s": samples,
            "metrics": metrics,
            "profile": profile_snapshot,
        },
    )


def _ratio_iqr(numerator: float, stats: dict) -> float:
    """IQR of numerator/wall propagated from the wall-time quartiles."""
    median = stats["median"]
    if not median or not numerator:
        return 0.0
    lo = median + stats["iqr"] / 2.0
    hi = max(1e-12, median - stats["iqr"] / 2.0)
    return numerator / hi - numerator / lo


# ----------------------------------------------------------------------
# CLI (python -m repro bench ...)
# ----------------------------------------------------------------------
def bench_main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run benchmark scenarios to BENCH_<scenario>.json, "
        "or compare two result sets.",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario to run (repeatable; default: %s)" % ", ".join(DEFAULT_SCENARIOS),
    )
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument(
        "--corpus", type=int, default=60, help="corpus size per scenario (default 60)"
    )
    parser.add_argument(
        "--machine",
        metavar="NAME[:k=v,...]",
        help="registry machine the scenarios run on (default: cydra5); "
        "not applicable to machine_zoo, which runs every target",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats (default 3)"
    )
    parser.add_argument(
        "--warmup", type=int, default=1, help="untimed warmup runs (default 1)"
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="where BENCH_<scenario>.json files are written (default: cwd)",
    )
    parser.add_argument(
        "--no-profile",
        action="store_true",
        help="skip the profiled pass (omit the span breakdown)",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="capture tracemalloc peak memory in the profiled pass",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="compare two BENCH json files/directories instead of running",
    )
    parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit non-zero if --compare finds a regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.02,
        help="relative delta considered noise even with zero IQR (default 0.02)",
    )
    parser.add_argument(
        "--iqr-factor",
        type=float,
        default=2.0,
        help="IQR multiples added to the noise allowance (default 2.0)",
    )
    parser.add_argument(
        "--gate-time",
        action="store_true",
        help="let wall-clock metrics gate --fail-on-regress (off by default: "
        "time is machine-dependent; deterministic metrics always gate)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, scenario in sorted(scenario_registry().items()):
            marker = "*" if name in DEFAULT_SCENARIOS else " "
            print(f"{marker} {name:<18} {scenario.description}")
        print("(* = default set)")
        return 0

    if args.compare:
        from repro.obs.regress import compare_main

        return compare_main(
            args.compare[0],
            args.compare[1],
            fail_on_regress=args.fail_on_regress,
            threshold=args.threshold,
            iqr_factor=args.iqr_factor,
            gate_time=args.gate_time,
        )

    registry = scenario_registry()
    names = args.scenario or list(DEFAULT_SCENARIOS)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)}; "
            f"pick from {', '.join(sorted(registry))}"
        )
        return 2
    machine = None
    if args.machine:
        from repro.machine import MachineError, machine_from_cli

        try:
            machine = machine_from_cli(args.machine)
        except MachineError as error:
            print(f"error: {error}")
            return 2
    os.makedirs(args.out_dir, exist_ok=True)
    for name in names:
        scenario = registry[name]
        runner = scenario.runner or run_scenario
        try:
            payload = runner(
                scenario,
                corpus_size=args.corpus,
                repeats=args.repeats,
                warmup=args.warmup,
                profile=not args.no_profile,
                memory=args.memory,
                machine=machine,
            )
        except ValueError as error:
            print(f"error: {name}: {error}")
            return 2
        path = os.path.join(args.out_dir, bench_filename(name))
        write_json(path, payload)
        wall = payload["metrics"].get("wall_time_s") or payload["metrics"].get(
            "parallel_wall_s"
        )
        ops = payload["metrics"].get("ops_scheduled_per_s")
        ops_note = f", {ops['value']:.0f} ops/s" if ops else ""
        print(
            f"{name}: {wall['value']:.3f}s median (IQR {wall['iqr']:.3f}s)"
            f"{ops_note} over {payload['corpus_size']} loops -> {path}"
        )
    return 0
