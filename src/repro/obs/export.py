"""Trace serialization: JSONL and Chrome trace-event format.

JSONL is the replayable archival format — one ``event.to_dict()`` per
line, loadable back into typed events with :func:`load_jsonl` (the
round trip is exact, which the replay tests rely on).

The Chrome export targets ``chrome://tracing`` / Perfetto's legacy JSON
importer: each scheduling attempt becomes a complete ("X") duration
slice, every scheduler decision an instant ("i") event with its payload
in ``args``, and the number of currently placed operations a counter
("C") track — which renders the §4.2 ejection storms as a sawtooth.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.obs.trace import (
    AttemptFail,
    AttemptStart,
    Eject,
    IIEscalate,
    Place,
    ScheduleFound,
    TraceEvent,
    event_from_dict,
)


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per line, in emission order."""
    return "\n".join(json.dumps(event.to_dict(), sort_keys=True) for event in events)


def write_jsonl(events: Iterable[TraceEvent], path: str) -> None:
    with open(path, "w") as handle:
        text = to_jsonl(events)
        if text:
            handle.write(text + "\n")


def load_jsonl(path: str) -> List[TraceEvent]:
    """Inverse of :func:`write_jsonl`: typed events, seq/ts restored."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
_PID = 1
_TID_SCHEDULER = 1


def _micros(events: List[TraceEvent], ts: float) -> float:
    """Timestamps relative to the first event, in microseconds."""
    base = events[0].ts if events else 0.0
    return max(0.0, (ts - base) * 1e6)


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Build the ``{"traceEvents": [...]}`` JSON object."""
    events = [e for e in events]
    trace: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_SCHEDULER,
            "args": {"name": "repro modulo scheduler"},
        }
    ]
    placed = 0
    open_attempt = None  # (start_event, start_us)
    for event in events:
        ts_us = _micros(events, getattr(event, "ts", 0.0))
        if isinstance(event, AttemptStart):
            placed = 0
            open_attempt = (event, ts_us)
            continue
        if isinstance(event, (AttemptFail, ScheduleFound)) and open_attempt is not None:
            start_event, start_us = open_attempt
            outcome = "ok" if isinstance(event, ScheduleFound) else "fail"
            trace.append(
                {
                    "name": f"attempt II={start_event.ii} [{outcome}]",
                    "cat": "attempt",
                    "ph": "X",
                    "ts": start_us,
                    "dur": max(1.0, ts_us - start_us),
                    "pid": _PID,
                    "tid": _TID_SCHEDULER,
                    "args": event.to_dict(),
                }
            )
            open_attempt = None
        if isinstance(event, Place):
            placed += 1
        elif isinstance(event, Eject):
            placed -= 1
        trace.append(
            {
                "name": event.kind,
                "cat": "scheduler",
                "ph": "i",
                "s": "t",
                "ts": ts_us,
                "pid": _PID,
                "tid": _TID_SCHEDULER,
                "args": event.to_dict(),
            }
        )
        if isinstance(event, (Place, Eject, IIEscalate)):
            trace.append(
                {
                    "name": "placed ops",
                    "ph": "C",
                    "ts": ts_us,
                    "pid": _PID,
                    "args": {"placed": 0 if isinstance(event, IIEscalate) else placed},
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events), handle)
