"""Deterministic scoped-span profiler for the scheduling hot paths.

Where the tracer records *decisions* and the metrics registry records
*aggregates*, the profiler records *where the wall time goes*: nestable
named spans (``with prof.span("bounds.mindist"): ...``) accumulated
into a call tree keyed by span path, plus cheap iteration counters on
code that is too hot to wrap in a context manager.

Design rules (the :class:`~repro.obs.trace.NullTracer` pattern):

* Instrumented code normalizes the profiler up front —
  ``self.prof = profiler if (profiler is not None and profiler.enabled)
  else None`` — so the disabled default costs one attribute test per
  site (asserted <5% by ``benchmarks/bench_scheduler_speed.py``).
* The profiler never looks at the wall clock outside an *enabled* span,
  and span bookkeeping is O(1) per enter/exit, so enabling it perturbs
  the measured program as little as possible.
* Peak-memory capture (``tracemalloc``) is opt-in because starting the
  tracer slows allocation-heavy code; it is off unless
  ``Profiler(memory=True)``.

The report comes in two shapes: :meth:`Profiler.snapshot` returns a
JSON-safe dict (embedded in BENCH_*.json files by ``repro.obs.bench``)
and :meth:`Profiler.report` renders an ASCII self/cumulative table.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

#: Separator between nested span names in a span path.  Span *names*
#: are dotted ("bounds.mindist"); *paths* join the active stack, e.g.
#: "driver.attempt;bounds.mindist".
PATH_SEP = ";"


class _SpanStat:
    """Accumulated timing for one span path."""

    __slots__ = ("calls", "cum_seconds", "self_seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.cum_seconds = 0.0
        self.self_seconds = 0.0


class _Span:
    """Reusable context manager for one ``prof.span(name)`` entry."""

    __slots__ = ("_prof", "_name")

    def __init__(self, prof: "Profiler", name: str):
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_Span":
        self._prof._enter(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._prof._exit()


class Profiler:
    """Nestable scoped spans + counters, keyed by span path.

    Attributes:
        enabled: The normalization flag (see module docstring).  A
            disabled profiler is normalized to ``None`` by every
            instrumented call site.
    """

    enabled: bool = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        memory: bool = False,
    ) -> None:
        self._clock = clock
        self._stats: Dict[str, _SpanStat] = {}
        self._counters: Dict[str, int] = {}
        #: Active frames: (path, start, child_seconds accumulated so far).
        self._stack: List[Tuple[str, float, float]] = []
        self._memory = memory
        self._started_tracemalloc = False
        self.peak_memory_bytes: Optional[int] = None
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str) -> _Span:
        """Context manager timing one named (nestable) section."""
        return _Span(self, name)

    def count(self, name: str, amount: int = 1) -> None:
        """Bump an iteration counter (for sites too hot for a span)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def _enter(self, name: str) -> None:
        parent = self._stack[-1][0] if self._stack else ""
        path = f"{parent}{PATH_SEP}{name}" if parent else name
        self._stack.append((path, self._clock(), 0.0))

    def _exit(self) -> None:
        path, started, child_seconds = self._stack.pop()
        duration = self._clock() - started
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = _SpanStat()
        stat.calls += 1
        stat.cum_seconds += duration
        stat.self_seconds += max(0.0, duration - child_seconds)
        if self._stack:
            parent_path, parent_start, parent_children = self._stack[-1]
            self._stack[-1] = (parent_path, parent_start, parent_children + duration)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _capture_memory(self) -> None:
        if not self._memory:
            return
        import tracemalloc

        if tracemalloc.is_tracing():
            self.peak_memory_bytes = tracemalloc.get_traced_memory()[1]

    def close(self) -> None:
        """Stop the tracemalloc session if this profiler started it."""
        self._capture_memory()
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False

    def snapshot(self) -> dict:
        """JSON-safe dump: spans keyed by path, counters, peak memory.

        Schema (versioned alongside the BENCH schema, see DESIGN.md):
        ``spans[path] = {calls, cum_seconds, self_seconds}``; paths join
        nested span names with ``";"``.
        """
        self._capture_memory()
        return {
            "spans": {
                path: {
                    "calls": stat.calls,
                    "cum_seconds": stat.cum_seconds,
                    "self_seconds": stat.self_seconds,
                }
                for path, stat in sorted(self._stats.items())
            },
            "counters": dict(sorted(self._counters.items())),
            "peak_memory_bytes": self.peak_memory_bytes,
        }

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's spans/counters into this one."""
        for path, stat in other._stats.items():
            mine = self._stats.get(path)
            if mine is None:
                mine = self._stats[path] = _SpanStat()
            mine.calls += stat.calls
            mine.cum_seconds += stat.cum_seconds
            mine.self_seconds += stat.self_seconds
        for name, value in other._counters.items():
            self.count(name, value)

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker process) in.

        Span stats and counters accumulate; peak memory takes the max
        (concurrent workers do not share an allocator, so summing would
        overstate any single process's footprint).
        """
        for path, entry in snapshot.get("spans", {}).items():
            mine = self._stats.get(path)
            if mine is None:
                mine = self._stats[path] = _SpanStat()
            mine.calls += entry["calls"]
            mine.cum_seconds += entry["cum_seconds"]
            mine.self_seconds += entry["self_seconds"]
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        peak = snapshot.get("peak_memory_bytes")
        if peak is not None:
            self.peak_memory_bytes = max(self.peak_memory_bytes or 0, peak)

    def report(self, limit: int = 0) -> str:
        """ASCII self/cumulative table in call-tree order.

        Lexical path order lists every parent span directly above its
        children (a path is a prefix of its children's paths), so the
        indentation reads as a call tree.
        """
        lines = [
            "profile (call-tree order):",
            f"  {'span path':<44} {'calls':>8} {'self ms':>10} {'cum ms':>10}",
        ]
        ordered = sorted(self._stats.items())
        if limit:
            ordered = ordered[:limit]
        for path, stat in ordered:
            indent = "  " * path.count(PATH_SEP)
            name = indent + path.rsplit(PATH_SEP, 1)[-1]
            lines.append(
                f"  {name:<44} {stat.calls:>8} "
                f"{stat.self_seconds * 1e3:>10.2f} {stat.cum_seconds * 1e3:>10.2f}"
            )
        if not self._stats:
            lines.append("  (no spans recorded)")
        if self._counters:
            lines.append("  counters:")
            for name, value in sorted(self._counters.items()):
                lines.append(f"    {name:<42} {value}")
        if self.peak_memory_bytes is not None:
            lines.append(f"  peak memory: {self.peak_memory_bytes / 1e6:.2f} MB")
        return "\n".join(lines)


class NullProfiler(Profiler):
    """The zero-overhead default: normalized away before any hot loop."""

    enabled = False

    def __init__(self) -> None:  # pragma: no cover - trivial
        super().__init__()


#: Shared default instance (stateless in practice: never recorded into).
NULL_PROFILER = NullProfiler()
