"""Structured batch-progress events: live status, JSONL log, stragglers.

A batch run over hundreds of loops used to be a black box until it
exited.  This module makes the service legible while it runs:

* Every job emits a small, schema-versioned stream of
  :class:`ProgressEvent`\\ s — ``submitted`` when the batch accepts it,
  ``cached`` when the result cache answers, ``started`` when an
  execution backend dispatches it, ``finished``/``failed`` when its
  result lands, ``quarantined`` when a pool crash reroutes it.  All
  three execution backends emit the *same per-job sequence*; only
  timestamps and cross-job interleaving differ (asserted by the parity
  tests).
* :class:`ProgressTracker` fans events out to any number of sinks — a
  throttled TTY status line (:class:`TTYProgress`), a JSONL file
  (:class:`JSONLProgress`), an in-memory collector — and runs the
  straggler watchdog.
* The watchdog flags any job whose latency (or in-flight elapsed time)
  exceeds ``factor`` × the rolling median of finished-job latencies,
  surfacing them as synthetic ``straggler`` events and
  ``service.stragglers.*`` metrics instead of letting one pathological
  loop silently stretch the batch.

Everything here is parent-process-side bookkeeping — a handful of dict
operations per job, not per scheduler decision — so the cost is
independent of loop size and bounded by the 5-way overhead bench
(``benchmarks/bench_scheduler_speed.py``).  The default remains "no
progress": backends take ``progress=None`` and skip every emission.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, TextIO

PROGRESS_SCHEMA = "repro.progress"
PROGRESS_SCHEMA_VERSION = 1

#: Per-job lifecycle kinds, in the order a single job can see them.
#: ``straggler`` is a synthetic watchdog annotation, not a lifecycle
#: stage — parity comparisons exclude it.
KIND_SUBMITTED = "submitted"
KIND_STARTED = "started"
KIND_FINISHED = "finished"
KIND_CACHED = "cached"
KIND_FAILED = "failed"
KIND_QUARANTINED = "quarantined"
KIND_STRAGGLER = "straggler"

LIFECYCLE_KINDS = (
    KIND_SUBMITTED,
    KIND_STARTED,
    KIND_FINISHED,
    KIND_CACHED,
    KIND_FAILED,
    KIND_QUARANTINED,
)
EVENT_KINDS = LIFECYCLE_KINDS + (KIND_STRAGGLER,)

#: Terminal kinds: exactly one of these ends every job's stream.
TERMINAL_KINDS = (KIND_FINISHED, KIND_CACHED, KIND_FAILED)


@dataclasses.dataclass
class ProgressEvent:
    """One step of one job's life, JSONL-serializable.

    ``ts`` is wall-clock (``time.time()``) so logs from different
    processes and machines line up; consumers that need determinism
    (parity tests, the HTML report) drop or rebase it.
    """

    kind: str
    job: int
    loop: str
    ts: float
    status: Optional[str] = None  # job status for terminal events
    seconds: Optional[float] = None  # job latency (terminal) / elapsed
    ratio: Optional[float] = None  # straggler: latency over median
    flight: Optional[List[dict]] = None  # flight-recorder dump (failures)

    def to_dict(self) -> dict:
        record = {
            "schema": PROGRESS_SCHEMA,
            "v": PROGRESS_SCHEMA_VERSION,
            "kind": self.kind,
            "job": self.job,
            "loop": self.loop,
            "ts": self.ts,
        }
        if self.status is not None:
            record["status"] = self.status
        if self.seconds is not None:
            record["seconds"] = self.seconds
        if self.ratio is not None:
            record["ratio"] = self.ratio
        if self.flight is not None:
            record["flight"] = self.flight
        return record


def event_from_dict(record: dict) -> ProgressEvent:
    """Decode one JSONL record (raises ``ValueError`` on junk)."""
    if record.get("schema") != PROGRESS_SCHEMA:
        raise ValueError(f"not a progress record: {record.get('schema')!r}")
    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown progress kind {kind!r}")
    return ProgressEvent(
        kind=kind,
        job=int(record["job"]),
        loop=str(record.get("loop", "")),
        ts=float(record.get("ts", 0.0)),
        status=record.get("status"),
        seconds=record.get("seconds"),
        ratio=record.get("ratio"),
        flight=record.get("flight"),
    )


def load_progress_log(path: str) -> List[ProgressEvent]:
    """Read a ``--progress-log`` JSONL file back into events."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(event_from_dict(json.loads(line)))
    return events


def job_event(
    kind: str,
    index: int,
    loop: str,
    status: Optional[str] = None,
    seconds: Optional[float] = None,
    flight: Optional[List[dict]] = None,
) -> ProgressEvent:
    """Stamp one lifecycle event with the current wall clock."""
    return ProgressEvent(
        kind=kind, job=index, loop=loop, ts=time.time(),
        status=status, seconds=seconds, flight=flight,
    )


def result_event(result) -> ProgressEvent:
    """The terminal event for a :class:`repro.service.jobs.JobResult`.

    Failure events carry the job's flight-recorder dump (when one was
    captured), so a progress log is a self-contained post-mortem source.
    """
    from repro.service.jobs import JOB_CACHED, JOB_OK

    if result.status == JOB_CACHED:
        kind = KIND_CACHED
    elif result.status == JOB_OK:
        kind = KIND_FINISHED
    else:
        kind = KIND_FAILED
    return job_event(
        kind, result.index, result.name,
        status=result.status, seconds=result.seconds or None,
        flight=getattr(result, "flight", None) or None,
    )


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class ProgressSink:
    """Consumer protocol: receives every event, closed once at the end."""

    enabled: bool = True

    def emit(self, event: ProgressEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release; called exactly once when the batch ends."""


class NullProgressSink(ProgressSink):
    """The zero-cost default (backends skip emission entirely)."""

    enabled = False

    def emit(self, event: ProgressEvent) -> None:  # pragma: no cover
        pass


class CallbackProgress(ProgressSink):
    """Adapt a plain callable into a sink (the ``run_batch`` API takes
    either)."""

    def __init__(self, callback: Callable[[ProgressEvent], None]):
        self._callback = callback

    def emit(self, event: ProgressEvent) -> None:
        self._callback(event)


class CollectingProgress(ProgressSink):
    """Keep every event in memory (tests, the report builder)."""

    def __init__(self) -> None:
        self.events: List[ProgressEvent] = []

    def emit(self, event: ProgressEvent) -> None:
        self.events.append(event)


class JSONLProgress(ProgressSink):
    """Append events to a JSONL file as they happen (line-buffered, so
    a killed run still leaves a usable log)."""

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[TextIO] = open(path, "w", buffering=1)

    def emit(self, event: ProgressEvent) -> None:
        if self._handle is not None:
            self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TTYProgress(ProgressSink):
    """A single rewritten status line on a terminal stream.

    Renders at most once per ``interval`` seconds (plus a final render
    at close), so a fast batch is not throttled by terminal writes.
    The line is plain ``\\r``-overwrite + erase-to-EOL; no curses, no
    threads.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        interval: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._clock = clock
        self._started = clock()
        self._last_render = -1e9
        self._counts: Dict[str, int] = {}
        self._stragglers = 0
        self._wrote = False

    def emit(self, event: ProgressEvent) -> None:
        if event.kind == KIND_STRAGGLER:
            self._stragglers += 1
        else:
            self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        now = self._clock()
        if now - self._last_render >= self.interval:
            self._render(now)

    def _done(self) -> int:
        return sum(self._counts.get(kind, 0) for kind in TERMINAL_KINDS)

    def render_line(self) -> str:
        done = self._done()
        elapsed = max(1e-9, self._clock() - self._started)
        parts = [f"batch {done}/{self.total}"]
        for kind in (KIND_FINISHED, KIND_CACHED, KIND_FAILED, KIND_QUARANTINED):
            count = self._counts.get(kind, 0)
            if count:
                parts.append(f"{kind}={count}")
        parts.append(f"{done / elapsed:.1f} loops/s")
        parts.append(f"elapsed {elapsed:.1f}s")
        if self._stragglers:
            parts.append(f"stragglers={self._stragglers}")
        return "  ".join(parts)

    def _render(self, now: float) -> None:
        try:
            self.stream.write("\r" + self.render_line() + "\x1b[K")
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go quiet
            return
        self._last_render = now
        self._wrote = True

    def close(self) -> None:
        if not self._wrote and not self._counts:
            return
        self._render(self._clock())
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass


# ----------------------------------------------------------------------
# Straggler watchdog
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Straggler:
    """One flagged job (terminal or still in flight when flagged)."""

    job: int
    loop: str
    seconds: float
    ratio: float  # seconds over the median at flag time
    in_flight: bool  # True when flagged before its result landed


class StragglerWatchdog:
    """Rolling k×median latency check over finished-job latencies.

    The median is maintained over every terminal latency seen so far
    (insertion into a sorted list: corpora are thousands, not billions).
    A job is flagged at most once, either when its result lands slow or
    while it is still running past the threshold — whichever the event
    stream notices first.  Nothing is flagged until ``min_samples``
    latencies exist and the threshold clears ``min_seconds``, so tiny
    corpora and micro-jobs cannot spam warnings.
    """

    def __init__(
        self,
        factor: float = 4.0,
        min_samples: int = 5,
        min_seconds: float = 0.05,
    ):
        if factor <= 1.0:
            raise ValueError(f"straggler factor must exceed 1.0, got {factor}")
        self.factor = factor
        self.min_samples = min_samples
        self.min_seconds = min_seconds
        self._latencies: List[float] = []

    def observe(self, seconds: float) -> None:
        bisect.insort(self._latencies, seconds)

    @property
    def median(self) -> Optional[float]:
        if len(self._latencies) < self.min_samples:
            return None
        n = len(self._latencies)
        mid = self._latencies[n // 2]
        if n % 2 == 0:
            mid = (mid + self._latencies[n // 2 - 1]) / 2.0
        return mid

    def threshold(self) -> Optional[float]:
        """Latency above which a job counts as a straggler (None while
        the sample is too small to judge)."""
        median = self.median
        if median is None:
            return None
        return max(self.min_seconds, self.factor * median)

    def ratio(self, seconds: float) -> Optional[float]:
        """``seconds`` over the current median when past the threshold."""
        threshold = self.threshold()
        if threshold is None or seconds <= threshold:
            return None
        return seconds / max(1e-12, self.median)


class ProgressTracker:
    """The batch's progress hub: fan-out, counts, straggler watchdog.

    ``emit`` is what backends call (their ``progress=`` parameter).  It
    updates counters, runs the watchdog (flagging both slow results and
    still-running jobs on every event arrival), then forwards the event
    — plus any synthetic ``straggler`` events — to every sink.
    """

    def __init__(
        self,
        total: int,
        sinks: Sequence[ProgressSink] = (),
        metrics=None,  # Optional[MetricsRegistry]
        watchdog: Optional[StragglerWatchdog] = None,
    ):
        self.total = total
        self.sinks = [sink for sink in sinks if sink is not None and sink.enabled]
        self.metrics = metrics
        self.watchdog = watchdog or StragglerWatchdog()
        self.counts: Dict[str, int] = {}
        self.stragglers: List[Straggler] = []
        self._flagged: Dict[int, bool] = {}
        self._running: Dict[int, ProgressEvent] = {}  # job -> started event

    # -- the backend-facing callback ----------------------------------
    def emit(self, event: ProgressEvent) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if event.kind == KIND_STARTED:
            self._running[event.job] = event
        elif event.kind in TERMINAL_KINDS:
            self._running.pop(event.job, None)
        self._forward(event)
        if event.kind in (KIND_FINISHED, KIND_FAILED) and event.seconds:
            self._judge(event, in_flight=False)
            self.watchdog.observe(event.seconds)
        self._sweep_running(event.ts)

    def _forward(self, event: ProgressEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def _judge(self, event: ProgressEvent, in_flight: bool) -> None:
        if self._flagged.get(event.job):
            return
        ratio = self.watchdog.ratio(event.seconds or 0.0)
        if ratio is None:
            return
        self._flagged[event.job] = True
        straggler = Straggler(
            job=event.job,
            loop=event.loop,
            seconds=event.seconds or 0.0,
            ratio=ratio,
            in_flight=in_flight,
        )
        self.stragglers.append(straggler)
        self._forward(
            ProgressEvent(
                kind=KIND_STRAGGLER,
                job=event.job,
                loop=event.loop,
                ts=event.ts,
                status=event.status,
                seconds=event.seconds,
                ratio=ratio,
            )
        )
        if self.metrics is not None:
            self.metrics.counter("service.stragglers.flagged").inc()
            self.metrics.gauge("service.stragglers.worst_ratio").set(
                max(ratio, max((s.ratio for s in self.stragglers), default=0.0))
            )
            median = self.watchdog.median
            if median is not None:
                self.metrics.gauge("service.stragglers.median_seconds").set(median)

    def _sweep_running(self, now_ts: float) -> None:
        """Flag still-running jobs that have already blown the budget."""
        if not self._running:
            return
        threshold = self.watchdog.threshold()
        if threshold is None:
            return
        # _judge only touches _flagged/stragglers, so no copy is needed.
        for job, started in self._running.items():
            if self._flagged.get(job):
                continue
            elapsed = now_ts - started.ts
            if elapsed > threshold:
                self._judge(
                    ProgressEvent(
                        kind=KIND_STARTED,
                        job=job,
                        loop=started.loop,
                        ts=now_ts,
                        seconds=elapsed,
                    ),
                    in_flight=True,
                )

    # -- wrap-up -------------------------------------------------------
    def record_metrics(self) -> None:
        """Mirror final progress counters into ``service.progress.*``."""
        if self.metrics is None:
            return
        for kind, count in sorted(self.counts.items()):
            self.metrics.counter(f"service.progress.{kind}").inc(count)

    def close(self) -> None:
        self.record_metrics()
        for sink in self.sinks:
            sink.close()

    def straggler_summary(self) -> Optional[str]:
        """One warning line for the batch wrap-up, or None when clean."""
        if not self.stragglers:
            return None
        worst = max(self.stragglers, key=lambda s: s.ratio)
        return (
            f"stragglers: {len(self.stragglers)} job(s) exceeded "
            f"{self.watchdog.factor:g}x median latency "
            f"(worst {worst.loop} at {worst.ratio:.1f}x, {worst.seconds:.2f}s)"
        )


def lifecycle_sequence(events: Sequence[ProgressEvent]) -> Dict[int, List[str]]:
    """Per-job kind sequences with synthetic kinds dropped.

    This is the cross-backend parity view: serial, process and chunked
    runs of the same batch must produce identical mappings (timestamps
    and cross-job interleaving are already gone).
    """
    ordered: Dict[int, List[str]] = {}
    for event in events:
        if event.kind not in LIFECYCLE_KINDS:
            continue
        ordered.setdefault(event.job, []).append(event.kind)
    return ordered
