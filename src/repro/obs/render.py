"""ASCII renderings of scheduler state: MRT occupancy and lifetimes.

Two post-mortem views in the style of the paper's figures:

* :func:`render_mrt_occupancy` — the modulo reservation table as a
  utilization map: one line per unit instance, one column per II row,
  plus the per-unit busy fraction and a flag on saturated (critical)
  units.  This is `Schedule.render_resource_table` with the numbers the
  explain report needs.
* :func:`render_lifetime_chart` — Figure 3: every rotating-register
  value's lifetime as a horizontal bar over cycles, and Figure 4: the
  LiveVector, lifetimes wrapped modulo II, whose peak is MaxLive.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bounds.lifetimes import (
    live_vector,
    rr_values,
    schedule_lifetimes,
)
from repro.core.schedule import Schedule
from repro.ir.ddg import DDG


def render_mrt_occupancy(schedule: Schedule, critical_threshold: float = 0.90) -> str:
    """Occupancy map of the modulo reservation table plus utilization."""
    machine, ii = schedule.machine, schedule.ii
    cells: Dict[tuple, List[str]] = {}
    for class_index, unit_class in enumerate(machine.unit_classes):
        for instance in range(unit_class.count):
            cells[(class_index, instance)] = ["."] * ii
    for op in schedule.loop.real_ops:
        unit = schedule.binding.get(op.oid)
        if unit is None:
            continue
        row = schedule.times[op.oid] % ii
        lane = cells[unit]
        lane[row] = str(op.oid)
        for extra in range(1, min(ii, machine.busy_cycles(op))):
            lane[(row + extra) % ii] = "="
    width = max(2, max((len(c) for lane in cells.values() for c in lane), default=2))
    lines = [f"MRT occupancy (II={ii}, '=' = non-pipelined busy cycle):"]
    lines.append(" " * 24 + " ".join(f"{c:>{width}}" for c in range(ii)))
    for (class_index, instance), lane in sorted(cells.items()):
        name = machine.unit_classes[class_index].name
        used = sum(1 for cell in lane if cell != ".")
        fraction = used / ii
        marker = "  <- critical" if fraction >= critical_threshold else ""
        label = f"{name}[{instance}]"
        body = " ".join(f"{cell:>{width}}" for cell in lane)
        lines.append(f"{label:<18}{fraction:>4.0%}  {body}{marker}")
    return "\n".join(lines)


def render_lifetime_chart(schedule: Schedule, ddg: DDG, max_cycles: int = 72) -> str:
    """Figure-3-style lifetime bars plus the Figure-4 LiveVector."""
    loop, ii = schedule.loop, schedule.ii
    lifetimes = schedule_lifetimes(loop, ddg, schedule.times, ii, rr_values(loop))
    lifetimes = [lt for lt in lifetimes if lt.length > 0]
    lines = [f"value lifetimes (II={ii}, {len(lifetimes)} RR values):"]
    if not lifetimes:
        lines.append("  (no rotating-register lifetimes)")
        return "\n".join(lines)
    horizon = max(lt.end for lt in lifetimes)
    scale = 1 if horizon < max_cycles else (horizon // max_cycles + 1)
    axis = "".join(
        "|" if (column * scale) % ii == 0 else "-"
        for column in range(horizon // scale + 1)
    )
    unit = f" (1 column = {scale} cycles)" if scale > 1 else ""
    lines.append(f"  {'cycle (| = II boundary)':<22}{axis}{unit}")
    for lifetime in sorted(lifetimes, key=lambda lt: (lt.start, lt.end)):
        row = []
        for column in range(horizon // scale + 1):
            cycle = column * scale
            row.append("#" if lifetime.start <= cycle < lifetime.end else ".")
        label = f"{lifetime.value.name} [{lifetime.start},{lifetime.end})"
        lines.append(f"  {label:<22}{''.join(row)}")
    vector = live_vector(lifetimes, ii)
    peak = max(vector)
    lines.append(f"live vector (wrapped mod II, MaxLive={peak}):")
    for row_index, count in enumerate(vector):
        bar = "#" * count
        lines.append(f"  row {row_index:>3}: {bar:<{peak}} {count}")
    return "\n".join(lines)
