"""Lightweight metrics: counters, gauges, timers, histograms.

A :class:`MetricsRegistry` is an opt-in companion to the tracer: where
the trace records individual decisions, metrics aggregate — window-scan
lengths, ejections per operation, MRT occupancy per resource, per-phase
wall time.  Instruments are created on first use and addressed by a
dotted name, so call sites stay one-liners:

    metrics.counter("scheduler.attempts").inc()
    metrics.histogram("scan.window_length").record(scanned)
    with metrics.timer("phase.mindist").time():
        ...

Everything is in-process and dependency-free; ``snapshot()`` returns a
plain dict (JSON-safe) and ``render()`` a human-readable block used by
the CLI's ``--explain`` output.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """Accumulated wall time over any number of timed sections."""

    __slots__ = ("seconds", "count")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.count += 1

    @contextlib.contextmanager
    def time(self):
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - started)


class Histogram:
    """Distribution of observed values (kept exactly; corpora are small).

    Quantiles are computed over the *sorted* recorded values (nearest
    rank), so they are independent of recording order — merging two
    worker dumps in either order exports identical p50/p90/p99.  The
    exact-values representation is what makes that guarantee trivial; a
    sketch would have to prove mergeability instead.
    """

    __slots__ = ("values",)

    #: The latency quantiles exported everywhere (summary, batch exit
    #: line, metrics dump, HTML report).
    EXPORTED_QUANTILES = (0.50, 0.90, 0.99)

    def __init__(self) -> None:
        self.values: List[float] = []

    def record(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    def percentile(self, fraction: float) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def quantiles(self, fractions=EXPORTED_QUANTILES) -> Dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` over sorted values."""
        return {
            f"p{int(fraction * 100)}": self.percentile(fraction)
            for fraction in fractions
        }

    def summary(self) -> dict:
        if not self.values:
            return {
                "count": 0, "min": 0, "max": 0, "mean": 0.0,
                "p50": 0, "p90": 0, "p99": 0,
            }
        return {
            "count": len(self.values),
            "min": min(self.values),
            "max": max(self.values),
            "mean": sum(self.values) / len(self.values),
            **self.quantiles(),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "timers": {
                name: {"seconds": t.seconds, "count": t.count}
                for name, t in sorted(self._timers.items())
            },
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def dump(self) -> dict:
        """Full-fidelity dump for cross-process merging.

        Unlike :meth:`snapshot` (which summarizes histograms for human
        and JSON consumption), ``dump`` keeps raw histogram values so a
        parent process can fold a worker's registry into its own without
        losing distribution data.  Inverse: :meth:`merge_dump`.
        """
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "timers": {
                name: {"seconds": t.seconds, "count": t.count}
                for name, t in sorted(self._timers.items())
            },
            "histogram_values": {
                name: list(h.values) for name, h in sorted(self._histograms.items())
            },
        }

    def merge_dump(self, dump: dict) -> None:
        """Fold a :meth:`dump` (typically from a worker process) in.

        Counters and timers accumulate, histograms extend with the raw
        values, gauges are last-write-wins (callers merge in submission
        order, so the result is deterministic).
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, entry in dump.get("timers", {}).items():
            timer = self.timer(name)
            timer.seconds += entry["seconds"]
            timer.count += entry["count"]
        for name, values in dump.get("histogram_values", {}).items():
            histogram = self.histogram(name)
            for value in values:
                histogram.record(value)

    def render(self) -> str:
        """Readable block: one line per instrument."""
        lines = ["metrics:"]
        for name, counter in sorted(self._counters.items()):
            lines.append(f"  {name:<34} {counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            lines.append(f"  {name:<34} {gauge.value:.3f}")
        for name, timer in sorted(self._timers.items()):
            lines.append(f"  {name:<34} {timer.seconds * 1e3:.2f} ms over {timer.count} section(s)")
        for name, histogram in sorted(self._histograms.items()):
            s = histogram.summary()
            lines.append(
                f"  {name:<34} n={s['count']} min={s['min']:g} "
                f"p50={s['p50']:g} p90={s['p90']:g} p99={s['p99']:g} "
                f"max={s['max']:g} mean={s['mean']:.2f}"
            )
        if len(lines) == 1:
            lines.append("  (no instruments recorded)")
        return "\n".join(lines)


def record_mrt_occupancy(metrics: Optional[MetricsRegistry], schedule) -> None:
    """Gauge the fraction of each unit instance's II rows that are busy.

    Derived from the schedule (not the live MRT) so it can be recorded
    after the fact; matches `Schedule.render_resource_table`'s cells.
    """
    if metrics is None:
        return
    machine, ii = schedule.machine, schedule.ii
    busy: Dict[tuple, int] = {}
    for op in schedule.loop.real_ops:
        unit = schedule.binding.get(op.oid)
        if unit is None:
            continue
        busy[unit] = busy.get(unit, 0) + min(ii, machine.busy_cycles(op))
    for class_index, unit_class in enumerate(machine.unit_classes):
        for instance in range(unit_class.count):
            cells = busy.get((class_index, instance), 0)
            metrics.gauge(
                f"mrt.occupancy.{unit_class.name}[{instance}]"
            ).set(cells / ii)
