"""Recurrence-constrained lower bound on II (paper §3.1).

A recurrence circuit with total latency L and total distance Omega
forces ``II >= ceil(L / Omega)``.  Two independent computations are
provided and cross-checked by the test suite:

* :func:`recmii_by_circuits` enumerates the elementary circuits of the
  dependence graph (Johnson's algorithm, restricted to each strongly
  connected component) and scans them — the paper's approach, citing
  Tiernan.
* :func:`recmii_by_feasibility` finds the smallest II for which the cost
  graph ``latency - II * omega`` has no positive cycle — the minimum
  cost-to-time-ratio view the paper cites from Lawler.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.bounds.mindist import is_feasible_ii
from repro.ir.ddg import DDG, Arc, ArcKind


class StaticCycleError(ValueError):
    """A dependence circuit with total distance 0 — the loop body is
    malformed (an operation would depend on itself within one iteration)."""


# ----------------------------------------------------------------------
# Strongly connected components (iterative Tarjan)
# ----------------------------------------------------------------------
def strongly_connected_components(n: int, succs: Sequence[Sequence[int]]) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative to avoid recursion limits."""
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = succs[node]
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if index_of[child] == -1:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _adjacency(ddg: DDG) -> List[List[int]]:
    succs: List[Set[int]] = [set() for _ in range(ddg.n)]
    for arc in ddg.arcs:
        if arc.kind is ArcKind.SEQ:
            continue
        succs[arc.src].add(arc.dst)
    return [sorted(s) for s in succs]


def recurrence_ops(ddg: DDG) -> Set[int]:
    """Oids of operations on *non-trivial* recurrence circuits.

    A trivial recurrence is an arc from an operation to itself (§4);
    non-trivial circuits are exactly the nodes of SCCs of size >= 2.
    """
    succs = _adjacency(ddg)
    ops: Set[int] = set()
    for component in strongly_connected_components(ddg.n, succs):
        if len(component) >= 2:
            ops.update(component)
    return ops


# ----------------------------------------------------------------------
# Elementary circuit enumeration (Johnson's algorithm)
# ----------------------------------------------------------------------
class CircuitLimitExceeded(RuntimeError):
    """Raised when a graph has pathologically many elementary circuits."""


def elementary_circuits(
    n: int, succs: Sequence[Sequence[int]], limit: int = 50_000
) -> Iterator[List[int]]:
    """Yield the elementary circuits of a digraph as node lists.

    Johnson's algorithm run once per SCC.  Self-loops are yielded as
    single-node circuits.  Raises :class:`CircuitLimitExceeded` beyond
    ``limit`` circuits, at which point callers should fall back to the
    feasibility-search RecMII.
    """
    yielded = 0
    for node in range(n):
        if node in succs[node]:
            yield [node]
            yielded += 1
            if yielded > limit:
                raise CircuitLimitExceeded(f"more than {limit} circuits")

    for component in strongly_connected_components(n, succs):
        if len(component) < 2:
            continue
        members = sorted(component)
        member_set = set(members)
        local_succs = {
            node: [child for child in succs[node] if child in member_set and child != node]
            for node in members
        }
        for start in members:
            blocked: Dict[int, bool] = {node: False for node in members}
            blocked_map: Dict[int, Set[int]] = {node: set() for node in members}
            path: List[int] = [start]

            def unblock(node: int) -> None:
                pending = [node]
                while pending:
                    current = pending.pop()
                    if not blocked[current]:
                        continue
                    blocked[current] = False
                    pending.extend(blocked_map[current])
                    blocked_map[current].clear()

            # Iterative Johnson circuit search from `start`, visiting
            # only nodes >= start to enumerate each circuit once.
            blocked[start] = True
            frame_stack: List[Tuple[int, Iterator[int]]] = [
                (start, iter([c for c in local_succs[start] if c >= start]))
            ]
            found_flags: List[bool] = [False]
            while frame_stack:
                node, children = frame_stack[-1]
                emitted = False
                for child in children:
                    if child == start:
                        yield list(path)
                        yielded += 1
                        if yielded > limit:
                            raise CircuitLimitExceeded(f"more than {limit} circuits")
                        found_flags[-1] = True
                    elif not blocked[child]:
                        path.append(child)
                        blocked[child] = True
                        frame_stack.append(
                            (child, iter([c for c in local_succs[child] if c >= start]))
                        )
                        found_flags.append(False)
                        emitted = True
                        break
                if emitted:
                    continue
                frame_stack.pop()
                found = found_flags.pop()
                path.pop()
                if found:
                    unblock(node)
                    if found_flags:
                        found_flags[-1] = True
                else:
                    for child in local_succs[node]:
                        if child >= start:
                            blocked_map[child].add(node)


def _pareto_arcs(candidates: List[Arc]) -> List[Tuple[int, int]]:
    """Non-dominated (latency, omega) pairs among parallel arcs.

    Arc a dominates arc b when it is at least as constraining on every
    circuit through this hop: ``latency_a >= latency_b`` and
    ``omega_a <= omega_b``.  Dominated arcs can never change a circuit's
    maximum ceil(L / Omega).
    """
    pairs = sorted({(arc.latency, arc.omega) for arc in candidates})
    kept: List[Tuple[int, int]] = []
    for latency, omega in pairs:
        kept = [(l, w) for (l, w) in kept if not (latency >= l and omega <= w)]
        if not any(l >= latency and w <= omega for (l, w) in kept):
            kept.append((latency, omega))
    return kept


def _circuit_bound(
    arc_index: Dict[Tuple[int, int], List[Tuple[int, int]]],
    circuit: List[int],
    combo_limit: int = 256,
) -> int:
    """Max ceil(L / Omega) over all arc choices along one circuit.

    Each hop may carry several non-dominated parallel arcs (e.g. a flow
    arc plus a memory-ordering arc); the binding combination cannot be
    found per hop, so the Pareto choices are enumerated, with a cap that
    triggers the feasibility-search fallback on pathological inputs.
    """
    hops = len(circuit)
    choices = [
        arc_index[(circuit[position], circuit[(position + 1) % hops])]
        for position in range(hops)
    ]
    combos = 1
    for hop_choices in choices:
        combos *= len(hop_choices)
        if combos > combo_limit:
            raise CircuitLimitExceeded("too many parallel-arc combinations")
    best = 0
    totals: List[Tuple[int, int]] = [(0, 0)]
    for hop_choices in choices:
        totals = [
            (latency_sum + latency, omega_sum + omega)
            for latency_sum, omega_sum in totals
            for latency, omega in hop_choices
        ]
    for latency_sum, omega_sum in totals:
        if omega_sum == 0:
            raise StaticCycleError(f"zero-distance circuit through oids {circuit}")
        best = max(best, math.ceil(latency_sum / omega_sum))
    return best


def recmii_by_circuits(ddg: DDG, limit: int = 50_000) -> int:
    """RecMII by scanning each elementary circuit (paper's method)."""
    succs = _adjacency(ddg)
    arc_index: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    grouped: Dict[Tuple[int, int], List[Arc]] = {}
    for arc in ddg.arcs:
        if arc.kind is ArcKind.SEQ:
            continue
        grouped.setdefault((arc.src, arc.dst), []).append(arc)
    for key, candidates in grouped.items():
        arc_index[key] = _pareto_arcs(candidates)
    bound = 1
    for circuit in elementary_circuits(ddg.n, succs, limit=limit):
        bound = max(bound, _circuit_bound(arc_index, circuit))
    return bound


def recmii_by_feasibility(ddg: DDG) -> int:
    """RecMII as the smallest II with no positive-cost dependence cycle."""
    lo = 1
    hi = 1 + sum(arc.latency for arc in ddg.arcs if arc.kind is not ArcKind.SEQ)
    if is_feasible_ii(ddg, lo):
        return lo
    if not is_feasible_ii(ddg, hi):
        raise StaticCycleError("no feasible II: the DDG has a zero-distance circuit")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if is_feasible_ii(ddg, mid):
            hi = mid
        else:
            lo = mid
    return hi


def recmii(ddg: DDG, circuit_limit: int = 50_000) -> int:
    """RecMII; prefers circuit scanning, falls back to feasibility search.

    Memoized on the DDG (the arc list is immutable after construction),
    so re-scheduling against a prebuilt graph — the service/bench path —
    does not re-enumerate circuits.
    """
    memo = getattr(ddg, "_recmii_memo", None)
    if memo is None:
        memo = ddg._recmii_memo = {}
    bound = memo.get(circuit_limit)
    if bound is None:
        try:
            bound = recmii_by_circuits(ddg, limit=circuit_limit)
        except CircuitLimitExceeded:
            bound = recmii_by_feasibility(ddg)
        memo[circuit_limit] = bound
    return bound
