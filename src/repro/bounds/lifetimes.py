"""Lifetime bounds and register-pressure measurement (paper §3.2, §5.1).

* ``MinLT(v)``: schedule-independent lower bound on the length of value
  v's lifetime at a given II — ``max over flow uses (omega*II +
  MinDist(def, use))``.
* ``MinAvg = sum(ceil(MinLT(v) / II))``: schedule-independent lower
  bound on the loop's register pressure.
* ``LiveVector`` / ``MaxLive``: for a concrete schedule, the number of
  live values in each of the II columns (lifetimes wrapped modulo II)
  and its maximum — the schedule's register-pressure lower bound, which
  Rau et al.'s allocators almost always achieve.

All functions take an explicit register-file selector so RR pressure
(data variants) and ICR pressure (predicates) can be measured
separately.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Mapping, Optional

from repro.bounds.mindist import MinDist
from repro.ir.ddg import DDG, ArcKind
from repro.ir.loop import LoopBody
from repro.ir.types import DType
from repro.ir.values import Value


def rr_values(loop: LoopBody) -> List[Value]:
    """Loop variants held in the rotating RR file (addresses/ints/floats)."""
    return [v for v in loop.values if v.is_variant and v.dtype is not DType.PRED]


def icr_values(loop: LoopBody) -> List[Value]:
    """Loop-variant predicates held in the rotating ICR file."""
    return [v for v in loop.values if v.is_variant and v.dtype is DType.PRED]


def gpr_count(loop: LoopBody) -> int:
    """Loop invariants kept in the GPR file (constants are immediate)."""
    return sum(1 for v in loop.values if v.is_invariant)


# ----------------------------------------------------------------------
# Schedule-independent bounds
# ----------------------------------------------------------------------
def min_lifetime(value: Value, ddg: DDG, mindist: MinDist, ii: int) -> int:
    """MinLT(v): lower bound on v's lifetime length at this II.

    Includes self-recurrence uses (their contribution is exactly
    ``omega * II``).  A value with no uses has MinLT 0.
    """
    defop = value.defop
    if defop is None:
        raise ValueError(f"{value} is not defined by an operation")
    best = 0
    for arc in ddg.flow_outputs(defop):
        if arc.value is not value:
            continue
        distance = mindist.dist(defop.oid, arc.dst)
        if arc.src == arc.dst:
            distance = 0
        if distance is None:
            continue
        best = max(best, arc.omega * ii + distance)
    return best


def min_avg(loop: LoopBody, ddg: DDG, mindist: MinDist, ii: int) -> int:
    """MinAvg: schedule-independent lower bound on RR pressure."""
    total = 0
    for value in rr_values(loop):
        lifetime = min_lifetime(value, ddg, mindist, ii)
        if lifetime > 0:
            total += math.ceil(lifetime / ii)
    return total


# ----------------------------------------------------------------------
# Schedule-dependent pressure
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Lifetime:
    """A value's lifetime in one concrete schedule: [start, end) cycles."""

    value: Value
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


def schedule_lifetimes(
    loop: LoopBody,
    ddg: DDG,
    times: Mapping[int, int],
    ii: int,
    values: Optional[Iterable[Value]] = None,
) -> List[Lifetime]:
    """Lifetimes induced by a schedule (`times` maps oid -> issue cycle).

    A value's register is reserved from its defining operation's issue
    cycle until the issue cycle of its last use, counting a use ``omega``
    iterations later at ``time(use) + omega * II`` (Figure 3's
    convention).  Values with no uses get zero-length lifetimes and are
    skipped by pressure computations.
    """
    chosen = list(values) if values is not None else rr_values(loop)
    lifetimes = []
    for value in chosen:
        defop = value.defop
        if defop is None or defop.oid not in times:
            continue
        start = times[defop.oid]
        end = start
        for arc in ddg.flow_outputs(defop):
            if arc.value is not value or arc.dst not in times:
                continue
            end = max(end, times[arc.dst] + arc.omega * ii)
        lifetimes.append(Lifetime(value, start, end))
    return lifetimes


def live_vector(lifetimes: Iterable[Lifetime], ii: int) -> List[int]:
    """Wrap lifetimes around a vector of II columns (Figure 4)."""
    vector = [0] * ii
    for lifetime in lifetimes:
        length = lifetime.length
        if length <= 0:
            continue
        full_wraps, remainder = divmod(length, ii)
        if full_wraps:
            for column in range(ii):
                vector[column] += full_wraps
        for offset in range(remainder):
            vector[(lifetime.start + offset) % ii] += 1
    return vector


def max_live(lifetimes: Iterable[Lifetime], ii: int) -> int:
    """MaxLive: the peak of the LiveVector."""
    vector = live_vector(lifetimes, ii)
    return max(vector) if vector else 0


def rr_max_live(loop: LoopBody, ddg: DDG, times: Mapping[int, int], ii: int) -> int:
    """MaxLive of the RR file for one schedule."""
    return max_live(schedule_lifetimes(loop, ddg, times, ii, rr_values(loop)), ii)


def icr_usage(loop: LoopBody, ddg: DDG, times: Mapping[int, int], ii: int) -> int:
    """ICR predicate usage for one schedule.

    Predicate lifetimes wrapped modulo II, plus one iteration-control
    (staging) predicate per pipeline stage — the kernel-only code schema
    needs ``ceil(span / II)`` stage predicates to squash the prologue and
    epilogue (paper §2.2 and [19]).
    """
    pressure = max_live(schedule_lifetimes(loop, ddg, times, ii, icr_values(loop)), ii)
    span = 0
    for op in loop.real_ops:
        if op.oid in times:
            span = max(span, times[op.oid] + 1)
    stages = math.ceil(span / ii) if span else 1
    return pressure + stages
