"""The MinDist relation (paper §4.1).

``MinDist(x, y)`` is the minimum number of cycles (possibly negative) by
which x must precede y in any feasible schedule at a given II, or "no
constraint" if the dependence graph has no path from x to y.  It is the
all-pairs *longest* path under arc costs ``latency - omega * II``;
because ``II >= RecMII`` every dependence cycle has non-positive cost,
so the closure is well defined.

Computed with a vectorized Floyd–Warshall over a numpy int64 matrix
("no path" is a large negative sentinel).  The per-arc (src, dst,
latency, omega) base arrays are cached on the DDG (see
:meth:`repro.ir.ddg.DDG.arc_cost_bases`), so rebuilding the cost matrix
at an escalated II is one vectorized ``latency - omega * II`` update
instead of a Python re-scan of every arc; finished closures are also
memoized per (DDG, II) — the driver's escalation loop, the RecMII
feasibility search, and the evaluation harness all ask for the same
(DDG, II) pairs repeatedly.

The "no path" boundary is owned by this module: every consumer must
test entries through :data:`NO_PATH_CUTOFF` / :func:`is_path` /
:func:`path_mask` rather than hand-rolling a comparison (historically
one caller used ``>`` where this module used ``>=``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ir.ddg import DDG

#: Sentinel for "no path".  Far below any reachable cost, but safe to
#: add to itself inside int64.
NO_PATH = -(2**40)

#: Threshold below which a closure entry is treated as "no path": an
#: entry represents a real path iff it is >= this cutoff.  This is the
#: single boundary every consumer must share (framework dependence
#: checks included), pinned by tests/bounds/test_mindist.py.
NO_PATH_CUTOFF = -(2**39)

#: Backwards-compatible private alias (pre-unification name).
_NO_PATH_CUTOFF = NO_PATH_CUTOFF


def is_path(entry: int) -> bool:
    """True when a closure entry encodes a real path (scalar form)."""
    return entry >= NO_PATH_CUTOFF


def path_mask(entries: np.ndarray) -> np.ndarray:
    """Boolean mask of real-path entries (vectorized form)."""
    return entries >= NO_PATH_CUTOFF


class MinDist:
    """All-pairs minimum-distance matrix for one (DDG, II) pair.

    ``profiler`` (see :mod:`repro.obs.prof`) wraps the O(n^3) closure in
    a ``bounds.mindist`` span; the default costs one truth test.
    """

    def __init__(self, ddg: DDG, ii: int, profiler=None):
        if ii < 1:
            raise ValueError(f"II must be positive, got {ii}")
        self.ddg = ddg
        self.ii = ii
        self.n = ddg.n
        prof = profiler if (profiler is not None and profiler.enabled) else None
        if prof is None:
            self.matrix, self.feasible = _closure_cached(ddg, ii)
        else:
            cached = ii in getattr(ddg, "_mindist_closures", {})
            with prof.span("bounds.mindist"):
                self.matrix, self.feasible = _closure_cached(ddg, ii)
            if cached:
                prof.count("mindist.cache_hits")
            else:
                prof.count("mindist.closures")
                prof.count("mindist.closure_nodes", self.n)

    def dist(self, src: int, dst: int) -> Optional[int]:
        """MinDist(src, dst) in cycles, or None if unconstrained."""
        entry = int(self.matrix[src, dst])
        if not is_path(entry):
            return None
        return entry

    def has_path(self, src: int, dst: int) -> bool:
        return is_path(int(self.matrix[src, dst]))

    def __repr__(self) -> str:
        return f"MinDist(n={self.n}, ii={self.ii}, feasible={self.feasible})"


def _closure(ddg: DDG, ii: int) -> "tuple[np.ndarray, bool]":
    n = ddg.n
    src, dst, latency, omega = ddg.arc_cost_bases()
    dist = np.full((n, n), NO_PATH, dtype=np.int64)
    # Max over parallel arcs; only the -omega*II term depends on II.
    np.maximum.at(dist, (src, dst), latency - omega * ii)
    for k in range(n):
        via = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.maximum(dist, via, out=dist)
    diagonal = np.diagonal(dist)
    feasible = bool(np.all((diagonal <= 0) | ~path_mask(diagonal)))
    # The paper sets MinDist(x, x) = 0 for every operation.
    np.fill_diagonal(dist, 0)
    return dist, feasible


def _closure_cached(ddg: DDG, ii: int) -> "tuple[np.ndarray, bool]":
    """Memoized closure: one matrix per (DDG, II), shared read-only."""
    cache = getattr(ddg, "_mindist_closures", None)
    if cache is None:
        cache = ddg._mindist_closures = {}
    entry = cache.get(ii)
    if entry is None:
        matrix, feasible = _closure(ddg, ii)
        matrix.setflags(write=False)
        entry = cache[ii] = (matrix, feasible)
    return entry


def is_feasible_ii(ddg: DDG, ii: int) -> bool:
    """True if no dependence circuit has positive cost at this II.

    This is the Lawler-style feasibility predicate underlying RecMII:
    the smallest feasible II over this predicate *is* RecMII.
    """
    _, feasible = _closure_cached(ddg, ii)
    return feasible
