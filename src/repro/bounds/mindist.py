"""The MinDist relation (paper §4.1).

``MinDist(x, y)`` is the minimum number of cycles (possibly negative) by
which x must precede y in any feasible schedule at a given II, or "no
constraint" if the dependence graph has no path from x to y.  It is the
all-pairs *longest* path under arc costs ``latency - omega * II``;
because ``II >= RecMII`` every dependence cycle has non-positive cost,
so the closure is well defined.

Computed with a vectorized Floyd–Warshall over a numpy int64 matrix
("no path" is a large negative sentinel).  Recomputed for each attempted
II, exactly as the paper does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ir.ddg import DDG

#: Sentinel for "no path".  Far below any reachable cost, but safe to
#: add to itself inside int64.
NO_PATH = -(2**40)

#: Threshold below which a closure entry is treated as "no path".
_NO_PATH_CUTOFF = -(2**39)


class MinDist:
    """All-pairs minimum-distance matrix for one (DDG, II) pair.

    ``profiler`` (see :mod:`repro.obs.prof`) wraps the O(n^3) closure in
    a ``bounds.mindist`` span; the default costs one truth test.
    """

    def __init__(self, ddg: DDG, ii: int, profiler=None):
        if ii < 1:
            raise ValueError(f"II must be positive, got {ii}")
        self.ddg = ddg
        self.ii = ii
        self.n = ddg.n
        prof = profiler if (profiler is not None and profiler.enabled) else None
        if prof is None:
            self.matrix, self.feasible = _closure(ddg, ii)
        else:
            with prof.span("bounds.mindist"):
                self.matrix, self.feasible = _closure(ddg, ii)
            prof.count("mindist.closures")
            prof.count("mindist.closure_nodes", self.n)

    def dist(self, src: int, dst: int) -> Optional[int]:
        """MinDist(src, dst) in cycles, or None if unconstrained."""
        entry = int(self.matrix[src, dst])
        if entry < _NO_PATH_CUTOFF:
            return None
        return entry

    def has_path(self, src: int, dst: int) -> bool:
        return int(self.matrix[src, dst]) >= _NO_PATH_CUTOFF

    def __repr__(self) -> str:
        return f"MinDist(n={self.n}, ii={self.ii}, feasible={self.feasible})"


def _closure(ddg: DDG, ii: int) -> "tuple[np.ndarray, bool]":
    n = ddg.n
    dist = np.full((n, n), NO_PATH, dtype=np.int64)
    for arc in ddg.arcs:
        cost = arc.latency - arc.omega * ii
        if cost > dist[arc.src, arc.dst]:
            dist[arc.src, arc.dst] = cost
    for k in range(n):
        via = dist[:, k : k + 1] + dist[k : k + 1, :]
        np.maximum(dist, via, out=dist)
    diagonal = np.diagonal(dist)
    feasible = bool(np.all((diagonal <= 0) | (diagonal < _NO_PATH_CUTOFF)))
    # The paper sets MinDist(x, x) = 0 for every operation.
    np.fill_diagonal(dist, 0)
    return dist, feasible


def is_feasible_ii(ddg: DDG, ii: int) -> bool:
    """True if no dependence circuit has positive cost at this II.

    This is the Lawler-style feasibility predicate underlying RecMII:
    the smallest feasible II over this predicate *is* RecMII.
    """
    _, feasible = _closure(ddg, ii)
    return feasible
