"""Absolute lower bounds on II and register pressure (paper §3)."""

from repro.bounds.lifetimes import (
    Lifetime,
    gpr_count,
    icr_usage,
    icr_values,
    live_vector,
    max_live,
    min_avg,
    min_lifetime,
    rr_max_live,
    rr_values,
    schedule_lifetimes,
)
from repro.bounds.mindist import MinDist, is_feasible_ii
from repro.bounds.recmii import (
    CircuitLimitExceeded,
    StaticCycleError,
    elementary_circuits,
    recmii,
    recmii_by_circuits,
    recmii_by_feasibility,
    recurrence_ops,
    strongly_connected_components,
)
from repro.bounds.resmii import critical_unit_instances, resmii, unit_requirements


def mii(loop, ddg, machine) -> int:
    """MII = max(ResMII, RecMII): the absolute lower bound on II."""
    return max(resmii(loop, machine), recmii(ddg))


__all__ = [
    "Lifetime",
    "gpr_count",
    "icr_usage",
    "icr_values",
    "live_vector",
    "max_live",
    "min_avg",
    "min_lifetime",
    "rr_max_live",
    "rr_values",
    "schedule_lifetimes",
    "MinDist",
    "is_feasible_ii",
    "CircuitLimitExceeded",
    "StaticCycleError",
    "elementary_circuits",
    "recmii",
    "recmii_by_circuits",
    "recmii_by_feasibility",
    "recurrence_ops",
    "strongly_connected_components",
    "critical_unit_instances",
    "resmii",
    "unit_requirements",
    "mii",
]
