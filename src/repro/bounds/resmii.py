"""Resource-constrained lower bound on II (paper §3.1).

If one iteration needs N busy-cycles of a resource of which the machine
supplies R instances, then ``II >= ceil(N / R)``; ResMII is the maximum
such ratio over all resources.  Non-pipelined units (the divider)
contribute their full latency per operation.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.ir.loop import LoopBody
from repro.machine.machine import Machine


def unit_requirements(loop: LoopBody, machine: Machine) -> Dict[int, int]:
    """Busy cycles required per iteration, keyed by unit-class index."""
    needs: Dict[int, int] = {}
    for op in loop.ops:
        class_index = machine.unit_class_index(op.opcode)
        if class_index is None:
            continue
        needs[class_index] = needs.get(class_index, 0) + machine.busy_cycles(op)
    return needs


def resmii(loop: LoopBody, machine: Machine) -> int:
    """The resource-constrained minimum initiation interval (>= 1)."""
    bound = 1
    for class_index, busy in unit_requirements(loop, machine).items():
        count = machine.unit_classes[class_index].count
        bound = max(bound, math.ceil(busy / count))
    return bound


def critical_unit_instances(
    loop: LoopBody,
    machine: Machine,
    binding: Dict[int, Tuple[int, int]],
    ii: int,
    threshold: float = 0.90,
) -> "set[Tuple[int, int]]":
    """Unit instances that one iteration keeps busy >= threshold * II.

    The paper marks an operation *critical* if it uses a critical
    resource; critical resources are recomputed just before each
    attempted II (§4.3).
    """
    usage: Dict[Tuple[int, int], int] = {}
    for op in loop.ops:
        unit = binding.get(op.oid)
        if unit is None:
            continue
        usage[unit] = usage.get(unit, 0) + machine.busy_cycles(op)
    return {unit for unit, busy in usage.items() if busy >= threshold * ii}
