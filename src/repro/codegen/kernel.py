"""Kernel-only code generation for modulo-scheduled loops.

With rotating register files and predicated execution, a
modulo-scheduled loop needs *one* copy of the kernel — no prologue or
epilogue code (paper §2.2 / §2.3, schema from Rau et al. MICRO-25).
Each kernel row holds the operations issuing at that cycle mod II; an
operation scheduled at time ``t`` sits in row ``t mod II`` at stage
``t // II`` and is guarded by that stage's staging predicate, so the
pipeline fills and drains by enabling/disabling stages.

Register specifier encoding: for a value allocated rotating specifier
``s`` (see :mod:`repro.regalloc.rotating`), the *encoded* specifier is

* at its definition (stage sigma_def):  ``s + sigma_def``
* at a use ``back`` iterations later (stage sigma_use): ``s + sigma_use + back``

because the file rotates once per kernel iteration: by the time the use
issues, ``(sigma_use - sigma_def) + back`` rotations separate it from
the write.  The register-level simulator and the emitted assembly share
this encoding.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.ir.loop import LoopBody
from repro.ir.operations import Operation
from repro.ir.types import DType
from repro.ir.values import Operand, Value
from repro.core.schedule import Schedule
from repro.regalloc.files import RegisterAssignment, allocate_registers


@dataclasses.dataclass(frozen=True)
class KernelOperand:
    """A register/immediate reference in kernel code.

    kind: "rr" (rotating data), "icr" (rotating predicate), "gpr"
    (invariant), or "imm" (literal folded into the instruction).
    """

    kind: str
    vid: int
    spec: int = 0  # encoded rotating specifier (rr/icr) or GPR index
    literal: Optional[float] = None

    def render(self) -> str:
        if self.kind == "imm":
            return f"#{self.literal}"
        if self.kind == "gpr":
            return f"gpr[{self.spec}]"
        return f"{self.kind}[p+{self.spec}]"


@dataclasses.dataclass(frozen=True)
class KernelOp:
    """One operation slotted into the kernel."""

    op: Operation
    row: int
    stage: int
    unit: str
    dest: Optional[KernelOperand]
    operands: List[KernelOperand]
    predicate: Optional[KernelOperand]


@dataclasses.dataclass
class KernelCode:
    """A complete kernel: II rows of operations plus register-file sizes."""

    loop: LoopBody
    schedule: Schedule
    assignment: RegisterAssignment
    rows: List[List[KernelOp]]

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def stages(self) -> int:
        return self.schedule.stages

    def all_ops(self) -> List[KernelOp]:
        return [kop for row in self.rows for kop in row]


class CodegenError(RuntimeError):
    """The schedule/allocation pair cannot be lowered to a kernel."""


def generate_kernel(
    schedule: Schedule,
    assignment: Optional[RegisterAssignment] = None,
) -> KernelCode:
    """Lower a schedule (plus a register assignment) to kernel-only code."""
    loop = schedule.loop
    machine = schedule.machine
    if assignment is None:
        assignment = allocate_registers(schedule)
    ii = schedule.ii
    rows: List[List[KernelOp]] = [[] for _ in range(ii)]

    for op in loop.real_ops:
        time = schedule.times[op.oid]
        row, stage = time % ii, time // ii
        unit_class = machine.unit_class(op.opcode)
        unit = unit_class.name if unit_class is not None else "-"
        dest = _dest_operand(op.dest, stage, assignment) if op.dest is not None else None
        operands = [_use_operand(o, stage, assignment) for o in op.operands]
        predicate = (
            _use_operand(op.predicate, stage, assignment)
            if op.predicate is not None
            else None
        )
        rows[row].append(
            KernelOp(
                op=op,
                row=row,
                stage=stage,
                unit=unit,
                dest=dest,
                operands=operands,
                predicate=predicate,
            )
        )
    for row in rows:
        row.sort(key=lambda kop: (kop.unit, kop.op.oid))
    return KernelCode(loop=loop, schedule=schedule, assignment=assignment, rows=rows)


def _file_of(value: Value) -> str:
    if value.is_constant:
        return "imm"
    if value.is_invariant:
        return "gpr"
    return "icr" if value.dtype is DType.PRED else "rr"


def _base_specifier(value: Value, assignment: RegisterAssignment) -> int:
    """Base ISA specifier for a rotating value.

    The allocator places value arcs at ``start - s_alloc * II`` on the
    circle; the hardware's physical map is ``(s - k) mod R``, whose
    consistent arc position is ``start + s * II`` — so the ISA specifier
    is the *negated* allocator specifier.
    """
    table = assignment.icr.specifiers if value.dtype is DType.PRED else assignment.rr.specifiers
    try:
        return -table[value.vid]
    except KeyError:
        raise CodegenError(f"{value} has no rotating register assignment") from None


def _dest_operand(value: Value, stage: int, assignment: RegisterAssignment) -> KernelOperand:
    kind = _file_of(value)
    if kind != "rr" and kind != "icr":
        raise CodegenError(f"operation destination {value} must be a rotating variant")
    spec = _base_specifier(value, assignment) + stage
    return KernelOperand(kind=kind, vid=value.vid, spec=spec)


def _use_operand(operand: Operand, stage: int, assignment: RegisterAssignment) -> KernelOperand:
    value = operand.value
    kind = _file_of(value)
    if kind == "imm":
        return KernelOperand(kind="imm", vid=value.vid, literal=value.literal)
    if kind == "gpr":
        return KernelOperand(kind="gpr", vid=value.vid, spec=assignment.gpr[value.vid])
    spec = _base_specifier(value, assignment) + stage + operand.back
    return KernelOperand(kind=kind, vid=value.vid, spec=spec)
