"""Kernel-only code generation and textual emission."""

from repro.codegen.emit import emit_kernel
from repro.codegen.kernel import (
    CodegenError,
    KernelCode,
    KernelOp,
    KernelOperand,
    generate_kernel,
)

__all__ = [
    "emit_kernel",
    "CodegenError",
    "KernelCode",
    "KernelOp",
    "KernelOperand",
    "generate_kernel",
]
