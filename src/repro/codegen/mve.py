"""Modulo variable expansion (MVE) — pipelining without rotating files.

On a conventional machine, a value live longer than II cycles cannot
target the same register in adjacent iterations (§2.3).  Without the
Cydra's rotating files, the loop must be *unrolled* and register
specifiers renamed: value v needs ``q_v = ceil(lifetime_v / II)``
distinct names, and the kernel is replicated U times so each copy can
refer to its iteration's name statically.  The paper (citing Rau et al.
'92 and Lam) notes this "can result in a large amount of code
expansion" — which is precisely what the rotating register file avoids.

Two classic naming policies are provided:

* ``minimal``: U = lcm of all q_v; value v cycles through exactly q_v
  names (copy k uses name ``k mod q_v``).  Fewest registers, but U can
  blow up (lcm of mixed widths).
* ``uniform``: U = max of all q_v; every value gets U names (copy k uses
  name ``k mod U``).  Bounded unrolling, most registers.
* ``power2``: each q_v rounds up to the next power of two, so
  U = max(q'_v) and every width divides U — the classic compromise
  (bounded unrolling, modestly more registers than minimal).

Code size accounting includes the prologue and epilogue a
non-predicated machine needs (stages-1 partial copies each), giving the
code-expansion factor the paper's Figure-2 discussion alludes to:

    expansion = (prologue + U * kernel + epilogue) / kernel
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.bounds.lifetimes import rr_values, schedule_lifetimes
from repro.ir.ddg import DDG, build_ddg
from repro.ir.loop import LoopBody
from repro.core.schedule import Schedule


def _lcm(values: List[int]) -> int:
    result = 1
    for value in values:
        result = result * value // math.gcd(result, value)
    return result


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


@dataclasses.dataclass
class MVEPlan:
    """Register-naming plan for one modulo-variable-expanded loop."""

    loop: LoopBody
    schedule: Schedule
    policy: str
    unroll: int  # U: kernel replication factor
    names_per_value: Dict[int, int]  # vid -> q_v (or U under "uniform")
    base_name: Dict[int, int]  # vid -> first register name index

    @property
    def total_registers(self) -> int:
        """Static registers needed for the expanded loop variants."""
        return sum(self.names_per_value.values())

    def name_of(self, vid: int, iteration: int) -> int:
        """Register name holding value ``vid``'s iteration-``iteration``
        instance."""
        width = self.names_per_value[vid]
        return self.base_name[vid] + (iteration % width)

    # ------------------------------------------------------------------
    # Code-size accounting
    # ------------------------------------------------------------------
    @property
    def kernel_ops(self) -> int:
        return len(self.loop.real_ops)

    @property
    def stages(self) -> int:
        return self.schedule.stages

    @property
    def prologue_ops(self) -> int:
        """Ramp-up code: stage s of the prologue issues the ops of
        stages 0..s, for s = 0..stages-2."""
        per_stage = self._ops_per_stage()
        return sum(
            sum(per_stage[: s + 1]) for s in range(self.stages - 1)
        )

    @property
    def epilogue_ops(self) -> int:
        """Ramp-down code: mirrors the prologue with trailing stages."""
        per_stage = self._ops_per_stage()
        return sum(
            sum(per_stage[s + 1 :]) for s in range(self.stages - 1)
        )

    def _ops_per_stage(self) -> List[int]:
        counts = [0] * self.stages
        for op in self.loop.real_ops:
            counts[self.schedule.times[op.oid] // self.schedule.ii] += 1
        return counts

    @property
    def total_ops(self) -> int:
        return self.prologue_ops + self.unroll * self.kernel_ops + self.epilogue_ops

    @property
    def expansion(self) -> float:
        """Emitted ops relative to one kernel copy (kernel-only = 1.0)."""
        return self.total_ops / max(1, self.kernel_ops)


def plan_mve(
    schedule: Schedule,
    ddg: Optional[DDG] = None,
    policy: str = "minimal",
    unroll_cap: int = 512,
) -> MVEPlan:
    """Compute the modulo-variable-expansion plan for a schedule.

    Raises ValueError for an unknown policy, or RuntimeError when the
    ``minimal`` policy's lcm exceeds ``unroll_cap`` (the degenerate case
    rotating files exist to avoid).
    """
    if policy not in ("minimal", "uniform", "power2"):
        raise ValueError(f"unknown MVE policy {policy!r}")
    loop = schedule.loop
    if ddg is None:
        ddg = build_ddg(loop, schedule.machine)
    ii = schedule.ii
    lifetimes = schedule_lifetimes(loop, ddg, schedule.times, ii, rr_values(loop))

    widths: Dict[int, int] = {}
    for lifetime in lifetimes:
        if lifetime.length <= 0:
            continue
        widths[lifetime.value.vid] = max(1, math.ceil(lifetime.length / ii))
    if not widths:
        widths = {}
    q_values = list(widths.values()) or [1]

    if policy == "minimal":
        unroll = _lcm(q_values)
        if unroll > unroll_cap:
            raise RuntimeError(
                f"minimal MVE of {loop.name} needs {unroll}x unrolling "
                f"(cap {unroll_cap}); use the power2/uniform policy or a "
                "rotating file"
            )
        names = dict(widths)
    elif policy == "power2":
        names = {vid: _next_power_of_two(q) for vid, q in widths.items()}
        unroll = max(names.values(), default=1)
    else:
        unroll = max(q_values)
        names = {vid: unroll for vid in widths}

    base: Dict[int, int] = {}
    cursor = 0
    for vid in sorted(names):
        base[vid] = cursor
        cursor += names[vid]
    return MVEPlan(
        loop=loop,
        schedule=schedule,
        policy=policy,
        unroll=unroll,
        names_per_value=names,
        base_name=base,
    )


def validate_mve_naming(plan: MVEPlan, ddg: Optional[DDG] = None) -> List[str]:
    """Check that no two simultaneously-live instances share a name.

    Instance (v, k) holds name ``name_of(v, k)`` during
    ``[start_v + k*II, end_v + k*II)``; the plan is correct iff all
    same-name intervals are disjoint.  Checking one full naming period
    (U + stages extra iterations) against all overlapping neighbors is
    exhaustive because the pattern repeats with period U.
    """
    loop, schedule = plan.loop, plan.schedule
    if ddg is None:
        ddg = build_ddg(loop, schedule.machine)
    ii = schedule.ii
    lifetimes = [
        lt
        for lt in schedule_lifetimes(loop, ddg, schedule.times, ii, rr_values(loop))
        if lt.length > 0
    ]
    horizon = plan.unroll + schedule.stages + 2
    intervals: List[Tuple[int, int, int, str]] = []
    for lifetime in lifetimes:
        vid = lifetime.value.vid
        for k in range(horizon):
            intervals.append(
                (
                    plan.name_of(vid, k),
                    lifetime.start + k * ii,
                    lifetime.end + k * ii,
                    f"{lifetime.value.name}@{k}",
                )
            )
    violations = []
    by_name: Dict[int, List[Tuple[int, int, str]]] = {}
    for name, start, end, tag in intervals:
        by_name.setdefault(name, []).append((start, end, tag))
    for name, spans in by_name.items():
        spans.sort()
        for (s1, e1, t1), (s2, e2, t2) in zip(spans, spans[1:]):
            if s2 < e1:
                violations.append(
                    f"register r{name}: {t1} [{s1},{e1}) overlaps {t2} [{s2},{e2})"
                )
    return violations


def emit_mve_summary(plan: MVEPlan) -> str:
    """Readable summary of the expansion plan."""
    return "\n".join(
        [
            f"; modulo variable expansion for loop '{plan.loop.name}' "
            f"({plan.policy} policy)",
            f"; II = {plan.schedule.ii}, stages = {plan.stages}, "
            f"unroll U = {plan.unroll}",
            f"; static loop-variant registers: {plan.total_registers}",
            f"; code size: prologue {plan.prologue_ops} + kernel "
            f"{plan.unroll} x {plan.kernel_ops} + epilogue {plan.epilogue_ops} "
            f"= {plan.total_ops} ops",
            f"; expansion vs kernel-only code: {plan.expansion:.2f}x",
        ]
    )
