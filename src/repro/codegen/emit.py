"""Textual VLIW assembly emission for kernel-only code."""

from __future__ import annotations

from typing import List

from repro.codegen.kernel import KernelCode, KernelOp


def _render_op(kop: KernelOp) -> str:
    op = kop.op
    dest = f"{kop.dest.render()} = " if kop.dest is not None else ""
    args = ", ".join(o.render() for o in kop.operands)
    guard = f" if {kop.predicate.render()}" if kop.predicate is not None else ""
    memory = ""
    if op.is_memory and "array" in op.attrs:
        if op.attrs.get("gather"):
            memory = f"  ; {op.attrs['array']}[indirect]"
        else:
            memory = f"  ; {op.attrs['array']}[i{op.attrs['disp']:+d}]"
    return (
        f"[{kop.unit:<12}] {dest}{op.opcode.value}({args}){guard}"
        f"  ; stage {kop.stage}{memory}"
    )


def emit_kernel(kernel: KernelCode) -> str:
    """Readable kernel listing: one block per row, one line per op."""
    schedule = kernel.schedule
    lines: List[str] = [
        f"; kernel-only code for loop '{kernel.loop.name}'",
        f"; II = {kernel.ii} cycles, {kernel.stages} stage(s), span {schedule.span}",
        f"; RR file: {kernel.assignment.rr_registers} rotating registers "
        f"(MaxLive {kernel.assignment.rr.max_live})",
        f"; ICR file: {kernel.assignment.icr_registers} rotating predicates",
        f"; GPR file: {kernel.assignment.gpr_registers} loop invariants",
    ]
    for row_index, row in enumerate(kernel.rows):
        lines.append(f"row {row_index}:")
        if not row:
            lines.append("    nop")
        for kop in row:
            lines.append(f"    {_render_op(kop)}")
    return "\n".join(lines)
