"""Data-dependence graph (DDG) over a finalized loop body.

Each arc ``(src, dst, latency, omega)`` constrains any feasible modulo
schedule with initiation interval II by::

    time(dst) >= time(src) + latency - omega * II

where ``omega`` is the minimum number of iterations separating the two
operations (the dependence *distance*; paper §3.1).  Flow arcs also
remember the value they carry so lifetime heuristics (§5.2) can reason
about which lifetimes an operation's placement stretches.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.ir.loop import LoopBody
from repro.ir.operations import Operation
from repro.ir.values import Value


class ArcKind(enum.Enum):
    FLOW = "flow"  # register flow dependence (def -> use)
    MEM = "mem"  # memory-ordering dependence
    SEQ = "seq"  # Start/Stop sequencing arcs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArcKind.{self.name}"


@dataclasses.dataclass(frozen=True)
class Arc:
    """A dependence arc between two operations (by oid)."""

    src: int
    dst: int
    latency: int
    omega: int
    kind: ArcKind
    value: Optional[Value] = None

    @property
    def is_self(self) -> bool:
        return self.src == self.dst

    def __repr__(self) -> str:
        tag = f" {self.value.name}" if self.value is not None else ""
        return f"Arc({self.src}->{self.dst}, lat={self.latency}, omega={self.omega}, {self.kind.value}{tag})"


class DDG:
    """Dependence graph with adjacency indexes.

    Build with :func:`build_ddg`; ``n`` equals the loop body's operation
    count (including Start/Stop), and oids index directly into the
    adjacency lists.
    """

    def __init__(self, loop: LoopBody, arcs: List[Arc]):
        self.loop = loop
        self.n = loop.n_ops
        self.arcs = arcs
        self.succs: List[List[Arc]] = [[] for _ in range(self.n)]
        self.preds: List[List[Arc]] = [[] for _ in range(self.n)]
        for arc in arcs:
            self.succs[arc.src].append(arc)
            self.preds[arc.dst].append(arc)
        #: Lazy caches owned by repro.bounds.mindist: the per-arc cost
        #: base arrays and the per-II closure memo.  Both assume the arc
        #: list is immutable after construction (it is).
        self._cost_bases = None
        self._mindist_closures: dict = {}
        #: Lazy II-lower-bound stashes (repro.bounds.{resmii,recmii} and
        #: the driver/framework fill these): both depend only on the
        #: immutable loop/machine/arcs this graph was built from.
        self._resmii = None
        self._recmii_memo: dict = {}
        self._binding = None

    def arc_cost_bases(self):
        """Per-arc (src, dst, latency, omega) int64 arrays, cached.

        The MinDist cost matrix at any II is ``latency - omega * II``
        maximized over parallel arcs; only the ``-omega * II`` term
        changes as the scheduling driver escalates II, so these base
        arrays are built once per DDG and every closure rebuild becomes
        a single vectorized expression instead of a Python arc scan.
        """
        if self._cost_bases is None:
            count = len(self.arcs)
            src = np.fromiter((a.src for a in self.arcs), dtype=np.int64, count=count)
            dst = np.fromiter((a.dst for a in self.arcs), dtype=np.int64, count=count)
            latency = np.fromiter(
                (a.latency for a in self.arcs), dtype=np.int64, count=count
            )
            omega = np.fromiter(
                (a.omega for a in self.arcs), dtype=np.int64, count=count
            )
            self._cost_bases = (src, dst, latency, omega)
        return self._cost_bases

    def flow_arcs(self) -> Iterator[Arc]:
        return (arc for arc in self.arcs if arc.kind is ArcKind.FLOW)

    def flow_inputs(self, op: Operation) -> List[Arc]:
        """Flow arcs feeding ``op`` (its operand lifetimes)."""
        return [arc for arc in self.preds[op.oid] if arc.kind is ArcKind.FLOW]

    def flow_outputs(self, op: Operation) -> List[Arc]:
        """Flow arcs leaving ``op`` (uses of the value it defines)."""
        return [arc for arc in self.succs[op.oid] if arc.kind is ArcKind.FLOW]

    def neighbors(self, op: Operation) -> Tuple[List[int], List[int]]:
        """Immediate (predecessor oids, successor oids), excluding
        Start/Stop sequencing arcs and self arcs."""
        preds = sorted(
            {arc.src for arc in self.preds[op.oid] if arc.kind is not ArcKind.SEQ and arc.src != op.oid}
        )
        succs = sorted(
            {arc.dst for arc in self.succs[op.oid] if arc.kind is not ArcKind.SEQ and arc.dst != op.oid}
        )
        return preds, succs

    def __repr__(self) -> str:
        return f"DDG({self.loop.name!r}, {self.n} ops, {len(self.arcs)} arcs)"


def build_ddg(loop: LoopBody, machine: "Machine") -> DDG:  # noqa: F821
    """Construct the DDG for a finalized loop body on a given machine.

    Arcs:
      * FLOW: from each variant operand's defining op to the user, with
        ``latency = machine latency of the def`` and ``omega = operand.back``.
      * MEM: the front end's memory-ordering deps.
      * SEQ: ``Start -> op`` (latency 0) and ``op -> Stop`` (latency =
        op latency) for every real op, so Stop's issue time is the
        schedule length.
    """
    if not loop.finalized:
        raise ValueError("loop body must be finalized before building a DDG")
    arcs: List[Arc] = []
    start, stop = loop.start, loop.stop
    for op in loop.real_ops:
        arcs.append(Arc(start.oid, op.oid, 0, 0, ArcKind.SEQ))
        arcs.append(Arc(op.oid, stop.oid, machine.latency(op), 0, ArcKind.SEQ))
        for operand in op.inputs():
            value = operand.value
            if not value.is_variant:
                continue
            defop = value.defop
            if defop is None:
                raise ValueError(f"variant {value} has no defining op")
            arcs.append(
                Arc(
                    defop.oid,
                    op.oid,
                    machine.latency(defop),
                    operand.back,
                    ArcKind.FLOW,
                    value=value,
                )
            )
    for dep in loop.mem_deps:
        arcs.append(Arc(dep.src, dep.dst, dep.latency, dep.omega, ArcKind.MEM))
    return DDG(loop, arcs)
