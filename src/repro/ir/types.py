"""Scalar data types used by the loop IR.

The target machine (a Cydra-5-like VLIW, see :mod:`repro.machine`) has
three register files, and every IR value is typed so it can be assigned
to the correct file:

* ``INT``, ``FLOAT`` and ``ADDR`` loop variants live in the rotating RR
  file; loop invariants of those types live in the GPR file.
* ``PRED`` (1-bit predicates) live in the rotating ICR file.
"""

from __future__ import annotations

import enum


class DType(enum.Enum):
    """Data type of an IR value."""

    INT = "int"
    FLOAT = "float"
    ADDR = "addr"
    PRED = "pred"

    @property
    def is_predicate(self) -> bool:
        """True for 1-bit predicate values (stored in the ICR file)."""
        return self is DType.PRED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


class ValueKind(enum.Enum):
    """How a value is produced, which decides its register file.

    VARIANT
        Defined anew by an operation on every loop iteration; lives in a
        rotating register file (RR for data, ICR for predicates).
    INVARIANT
        Loop invariant (an incoming scalar, array base address, or other
        quantity that does not change across iterations); lives in the
        GPR file.
    CONSTANT
        A compile-time literal folded into the instruction.
    """

    VARIANT = "variant"
    INVARIANT = "invariant"
    CONSTANT = "constant"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ValueKind.{self.name}"
