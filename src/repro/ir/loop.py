"""Loop body container and builder.

A :class:`LoopBody` is the unit of modulo scheduling: a branch-free,
if-converted, SSA-form loop body (paper §2.2, §5.1).  After
:meth:`LoopBody.finalize` it always contains the two pseudo-operations
``Start`` (oid 0, a predecessor of every operation) and ``Stop`` (the
last oid, a successor of every operation), which make Estart/Lstart well
defined during scheduling (§4.1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.operations import Opcode, Operation
from repro.ir.types import DType, ValueKind
from repro.ir.values import Operand, Origin, Value


@dataclasses.dataclass(frozen=True)
class MemDep:
    """A memory-ordering dependence discovered by the front end.

    Constrains ``dst`` to issue at least ``latency`` cycles after the
    instance of ``src`` from ``omega`` iterations earlier.
    """

    src: int
    dst: int
    omega: int
    latency: int = 1


class LoopBody:
    """A modulo-schedulable loop body plus its builder API.

    Operations and values are created through the ``new_*``/``add_op``
    methods so they receive dense ids; dense ids double as matrix indices
    throughout the bounds and scheduling code.
    """

    def __init__(self, name: str):
        self.name = name
        self.ops: List[Operation] = []
        self.values: List[Value] = []
        self.mem_deps: List[MemDep] = []
        #: Free-form metadata: ``has_conditional``, ``n_basic_blocks``,
        #: ``trip_count``, ``arrays`` (name -> initial list), ``scalars``
        #: (name -> initial float), ``live_out`` (scalar names), ...
        self.meta: Dict[str, object] = {}
        #: Maps live-out scalar names to the value holding the scalar's
        #: running copy (read after the loop exits).
        self.live_out: Dict[str, Value] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------
    def new_value(
        self,
        name: str,
        dtype: DType,
        kind: ValueKind = ValueKind.VARIANT,
        literal: Optional[float] = None,
        origin: Origin = None,
    ) -> Value:
        """Create a fresh value with the next dense id."""
        value = Value(
            vid=len(self.values),
            name=name,
            dtype=dtype,
            kind=kind,
            literal=literal,
            origin=origin,
        )
        self.values.append(value)
        return value

    def invariant(self, name: str, dtype: DType = DType.FLOAT) -> Value:
        """Create (or fetch) a loop-invariant value held in the GPR file."""
        for value in self.values:
            if value.is_invariant and value.name == name and value.dtype == dtype:
                return value
        return self.new_value(name, dtype, ValueKind.INVARIANT)

    def constant(self, literal: float, dtype: DType = DType.FLOAT) -> Value:
        """Create (or fetch) a compile-time constant."""
        for value in self.values:
            if value.is_constant and value.literal == literal and value.dtype == dtype:
                return value
        return self.new_value(f"#{literal}", dtype, ValueKind.CONSTANT, literal=literal)

    def add_op(
        self,
        opcode: Opcode,
        dest: Optional[Value] = None,
        operands: Iterable[Operand] = (),
        predicate: Optional[Operand] = None,
        **attrs: object,
    ) -> Operation:
        """Append an operation; wires up SSA def links."""
        if self._finalized:
            raise RuntimeError("cannot add operations to a finalized loop body")
        op = Operation(
            oid=len(self.ops),
            opcode=opcode,
            dest=dest,
            operands=list(operands),
            predicate=predicate,
            attrs=dict(attrs),
        )
        if dest is not None:
            if not dest.is_variant:
                raise ValueError(f"operation destination must be a variant: {dest}")
            if dest.defop is not None:
                raise ValueError(f"SSA violation: {dest} already defined by {dest.defop}")
            dest.defop = op
        self.ops.append(op)
        return op

    def add_mem_dep(self, src: Operation, dst: Operation, omega: int, latency: int = 1) -> None:
        """Record a memory-ordering dependence between two memory ops."""
        self.mem_deps.append(MemDep(src.oid, dst.oid, omega, latency))

    def finalize(self) -> "LoopBody":
        """Insert Start/Stop pseudo ops and freeze the op list.

        Start becomes oid 0 (all existing oids shift by one) and Stop
        becomes the final oid.  Returns ``self`` for chaining.
        """
        if self._finalized:
            return self
        start = Operation(oid=0, opcode=Opcode.START)
        for op in self.ops:
            op.oid += 1
        self.mem_deps = [
            MemDep(dep.src + 1, dep.dst + 1, dep.omega, dep.latency)
            for dep in self.mem_deps
        ]
        self.ops.insert(0, start)
        stop = Operation(oid=len(self.ops), opcode=Opcode.STOP)
        self.ops.append(stop)
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def start(self) -> Operation:
        if not self._finalized:
            raise RuntimeError("loop body is not finalized")
        return self.ops[0]

    @property
    def stop(self) -> Operation:
        if not self._finalized:
            raise RuntimeError("loop body is not finalized")
        return self.ops[-1]

    @property
    def real_ops(self) -> List[Operation]:
        """Operations excluding the Start/Stop pseudo ops."""
        if not self._finalized:
            return list(self.ops)
        return self.ops[1:-1]

    @property
    def n_ops(self) -> int:
        """Total operation count including pseudo ops once finalized."""
        return len(self.ops)

    def uses_of(self, value: Value) -> List[Tuple[Operation, Operand]]:
        """All (operation, operand) pairs reading ``value``."""
        found = []
        for op in self.ops:
            for operand in op.inputs():
                if operand.value is value:
                    found.append((op, operand))
        return found

    def brtop(self) -> Optional[Operation]:
        """The loop-closing branch, if the body has one."""
        for op in self.ops:
            if op.is_branch:
                return op
        return None

    def eliminate_dead_code(self) -> int:
        """Remove operations whose results are never used.

        Must be called before :meth:`finalize`.  Returns the number of
        operations removed.  Side-effecting operations and definitions of
        live-out values are always kept.
        """
        if self._finalized:
            raise RuntimeError("cannot run DCE on a finalized loop body")
        live_values = set(self.live_out.values())
        removed_total = 0
        while True:
            used = set(live_values)
            for op in self.ops:
                for operand in op.inputs():
                    used.add(operand.value)
            dead = [
                op
                for op in self.ops
                if not op.has_side_effect and op.dest is not None and op.dest not in used
            ]
            if not dead:
                break
            dead_set = set(dead)
            self.ops = [op for op in self.ops if op not in dead_set]
            removed_total += len(dead)
        # Remap memory deps through op identity before renumbering, then
        # drop any that lost an endpoint (possible for loads whose result
        # turned out dead).
        surviving = {op.oid: op for op in self.ops}
        remapped = [
            (surviving.get(dep.src), surviving.get(dep.dst), dep.omega, dep.latency)
            for dep in self.mem_deps
        ]
        # Re-number ops densely and drop orphaned values.
        for oid, op in enumerate(self.ops):
            op.oid = oid
        self.mem_deps = [
            MemDep(src.oid, dst.oid, omega, latency)
            for src, dst, omega, latency in remapped
            if src is not None and dst is not None
        ]
        alive_ops = set(self.ops)
        self.values = [
            value
            for value in self.values
            if not value.is_variant or value.defop in alive_ops
        ]
        for vid, value in enumerate(self.values):
            value.vid = vid
        return removed_total

    def dump(self) -> str:
        """Readable multi-line listing of the loop body."""
        lines = [f"loop {self.name}:"]
        for op in self.ops:
            lines.append(f"  {op!r}")
        for dep in self.mem_deps:
            lines.append(f"  memdep {dep.src} -> {dep.dst} (omega={dep.omega})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"LoopBody({self.name!r}, {len(self.ops)} ops, {len(self.values)} values)"
