"""SSA values and operand references for the loop IR.

The loop body is kept in static single assignment form (paper §5.1):
each :class:`Value` has exactly one defining operation, which gives every
value a unique lifetime and a precise set of flow dependencies.  A use of
a value produced ``back`` iterations earlier is represented by an
:class:`Operand` with ``back > 0``; the corresponding flow-dependence arc
in the DDG carries ``omega == back``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.ir.types import DType, ValueKind


@dataclasses.dataclass(frozen=True)
class ArrayElementOrigin:
    """The value equals ``array[stride * j + offset]`` in iteration j.

    ``offset`` is an *absolute* element index (the loop's start index is
    already folded in).  The front end attaches this to values flowing
    through load/store elimination so a simulator can fetch initial
    (pre-loop) array contents for loop-carried uses whose producing
    iteration precedes the loop.
    """

    array: str
    stride: int
    offset: int

    def element(self, iteration: int) -> int:
        return self.stride * iteration + self.offset


@dataclasses.dataclass(frozen=True)
class AddressOrigin:
    """The value equals ``base + stride * j`` in iteration j.

    Used for address induction variables (``array`` names the array the
    address walks) and for the loop index itself (``array`` is None,
    stride 1, base = the loop's start index).
    """

    array: Optional[str]
    stride: int
    base: int

    def at(self, iteration: int) -> int:
        return self.base + self.stride * iteration


@dataclasses.dataclass(frozen=True)
class ScalarOrigin:
    """Records that a value carries the running copy of scalar ``name``."""

    name: str


Origin = Union[ArrayElementOrigin, AddressOrigin, ScalarOrigin, None]


@dataclasses.dataclass(eq=False)
class Value:
    """A single SSA value.

    Attributes:
        vid: Dense integer id, unique within one :class:`~repro.ir.loop.LoopBody`.
        name: Human-readable name (used in dumps and emitted assembly).
        dtype: Scalar type, which also selects the register file.
        kind: VARIANT / INVARIANT / CONSTANT (see :class:`ValueKind`).
        literal: Constant payload for CONSTANT values.
        defop: The defining operation for VARIANT values (set by the
            :class:`~repro.ir.loop.LoopBody` when the def is added).
        origin: Optional note of which source-level entity the value
            carries, used to seed loop-carried live-in values.
    """

    vid: int
    name: str
    dtype: DType
    kind: ValueKind = ValueKind.VARIANT
    literal: Optional[float] = None
    defop: Optional["Operation"] = None  # noqa: F821 - forward ref
    origin: Origin = None

    @property
    def is_variant(self) -> bool:
        return self.kind is ValueKind.VARIANT

    @property
    def is_invariant(self) -> bool:
        return self.kind is ValueKind.INVARIANT

    @property
    def is_constant(self) -> bool:
        return self.kind is ValueKind.CONSTANT

    @property
    def in_rotating_file(self) -> bool:
        """True if the value occupies a rotating register (RR or ICR)."""
        return self.is_variant

    def __repr__(self) -> str:
        return f"Value({self.vid}:{self.name}:{self.dtype.value})"


@dataclasses.dataclass(frozen=True)
class Operand:
    """A use of a value, possibly from an earlier iteration.

    ``back`` is the iteration distance: an operand ``(v, back=2)`` read in
    iteration ``k`` refers to the instance of ``v`` defined in iteration
    ``k - 2``.  Invariants and constants always use ``back == 0``.
    """

    value: Value
    back: int = 0

    def __post_init__(self) -> None:
        if self.back < 0:
            raise ValueError(f"operand distance must be >= 0, got {self.back}")
        if self.back and not self.value.is_variant:
            raise ValueError("only loop variants can be read across iterations")

    @property
    def is_loop_carried(self) -> bool:
        return self.back > 0

    def __repr__(self) -> str:
        if self.back:
            return f"{self.value.name}[-{self.back}]"
        return self.value.name
