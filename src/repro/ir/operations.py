"""Operations of the loop IR.

Opcodes are machine-neutral; the machine description
(:mod:`repro.machine`) maps each opcode to a functional-unit class and a
latency (Table 1 of the paper).  ``START``/``STOP`` are the
pseudo-operations the scheduler adds so that Estart/Lstart are well
defined for every operation (paper §4.1); ``BRTOP`` is the Cydra-style
loop-closing branch that also rotates the register files (§2.1).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.ir.values import Operand, Value


class Opcode(enum.Enum):
    """Machine-neutral operation codes."""

    # Pseudo ops (consume no machine resources).
    START = "start"
    STOP = "stop"

    # Address arithmetic (Address ALU).
    ADDR_ADD = "addra"
    ADDR_SUB = "subba"
    ADDR_MUL = "mula"

    # Integer / logical / float add-class ops (Adder).
    ADD_I = "addi"
    SUB_I = "subi"
    AND_B = "and"
    OR_B = "or"
    XOR_B = "xor"
    NOT_B = "not"
    ADD_F = "addf"
    SUB_F = "subf"
    ABS_F = "absf"
    NEG_F = "negf"
    MIN_F = "minf"
    MAX_F = "maxf"
    SELECT = "select"  # conditional move: dest = p ? a : b
    CMP_LT = "cmplt"
    CMP_LE = "cmple"
    CMP_GT = "cmpgt"
    CMP_GE = "cmpge"
    CMP_EQ = "cmpeq"
    CMP_NE = "cmpne"

    # Multiplies (Multiplier).
    MUL_I = "muli"
    MUL_F = "mulf"

    # Divider (non-pipelined).
    DIV_I = "divi"
    DIV_F = "divf"
    MOD_I = "modi"
    SQRT_F = "sqrtf"

    # Memory port.
    LOAD = "load"
    STORE = "store"

    # Branch unit.
    BRTOP = "brtop"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Opcodes that compare two numbers and produce a predicate.
COMPARE_OPCODES = frozenset(
    {
        Opcode.CMP_LT,
        Opcode.CMP_LE,
        Opcode.CMP_GT,
        Opcode.CMP_GE,
        Opcode.CMP_EQ,
        Opcode.CMP_NE,
    }
)

#: Opcodes with side effects (may never be dead-code eliminated).
SIDE_EFFECT_OPCODES = frozenset({Opcode.STORE, Opcode.BRTOP, Opcode.START, Opcode.STOP})

#: Opcodes executed by the non-pipelined divider.
DIVIDER_OPCODES = frozenset({Opcode.DIV_I, Opcode.DIV_F, Opcode.MOD_I, Opcode.SQRT_F})


@dataclasses.dataclass(eq=False)
class Operation:
    """One operation of the loop body.

    Attributes:
        oid: Dense integer id, unique within a loop body; doubles as the
            operation's row/column index in DDG matrices.
        opcode: What the operation does.
        dest: The SSA value it defines, or ``None`` (stores, branches,
            pseudo ops).
        operands: Input operands in positional order.
        predicate: Optional guarding predicate operand (ICR).  A false
            predicate squashes the operation (paper §2.2).
        attrs: Free-form metadata.  Used keys include ``array`` and
            ``disp`` on LOAD/STORE (the symbolic array being accessed and
            the constant displacement folded into the access), and
            ``src_stmt`` for provenance.
    """

    oid: int
    opcode: Opcode
    dest: Optional[Value] = None
    operands: List[Operand] = dataclasses.field(default_factory=list)
    predicate: Optional[Operand] = None
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def is_pseudo(self) -> bool:
        return self.opcode in (Opcode.START, Opcode.STOP)

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BRTOP

    @property
    def uses_divider(self) -> bool:
        return self.opcode in DIVIDER_OPCODES

    @property
    def has_side_effect(self) -> bool:
        return self.opcode in SIDE_EFFECT_OPCODES

    def inputs(self) -> List[Operand]:
        """All value inputs, including the guarding predicate if any."""
        if self.predicate is None:
            return list(self.operands)
        return list(self.operands) + [self.predicate]

    def __repr__(self) -> str:
        dest = f"{self.dest.name} = " if self.dest is not None else ""
        args = ", ".join(repr(o) for o in self.operands)
        pred = f" if {self.predicate!r}" if self.predicate is not None else ""
        return f"[{self.oid}] {dest}{self.opcode.value}({args}){pred}"
