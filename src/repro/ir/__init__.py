"""Loop intermediate representation: SSA values, operations, dependence graph."""

from repro.ir.ddg import DDG, Arc, ArcKind, build_ddg
from repro.ir.loop import LoopBody, MemDep
from repro.ir.operations import (
    COMPARE_OPCODES,
    DIVIDER_OPCODES,
    SIDE_EFFECT_OPCODES,
    Opcode,
    Operation,
)
from repro.ir.types import DType, ValueKind
from repro.ir.values import (
    AddressOrigin,
    ArrayElementOrigin,
    Operand,
    ScalarOrigin,
    Value,
)

__all__ = [
    "DDG",
    "Arc",
    "ArcKind",
    "build_ddg",
    "LoopBody",
    "MemDep",
    "Opcode",
    "Operation",
    "COMPARE_OPCODES",
    "DIVIDER_OPCODES",
    "SIDE_EFFECT_OPCODES",
    "DType",
    "ValueKind",
    "AddressOrigin",
    "ArrayElementOrigin",
    "Operand",
    "ScalarOrigin",
    "Value",
]
