"""The client half of scheduling-as-a-service.

:class:`ServerClient` is a tiny JSON-over-HTTP client for a ``repro
serve`` daemon (stdlib ``urllib`` only), with per-request timeouts and
bounded retry-with-backoff on transport failures.

:class:`HTTPCache` wraps it into a :class:`repro.service.cache
.CacheBackend`, so ``repro batch --cache-url http://host:8537`` runs
the entire existing batch machinery against the daemon's shared warm
cache.  Degradation is graceful by design:

- Transport failures (refused, DNS, timeout) trip a **circuit
  breaker**: for ``cooldown`` seconds every operation goes straight to
  the local fallback cache (or degrades to recompute when there is
  none).  A cache is an accelerator; an unreachable server must never
  fail a batch.
- Reads and writes **write through** to the fallback, so a client that
  loses the server mid-run keeps its own warm copy, and a fallback hit
  after a server miss is pushed back up — the fleet re-warms the
  shared cache instead of diverging from it.
- ``entries()``/``remove()`` operate on the fallback only: eviction of
  the shared store is the server operator's job (``batch --gc``
  against the server's own cache location), not any one client's.

Conditional gets ride on the canonical keys: every ``GET
/v1/cache/<key>`` response carries ``ETag: "<key>"``, and the content
under a key never changes (the key covers every input and the
scheduler is deterministic), so a 304 is pure bandwidth saving.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional, Tuple

from repro.canonical import canonical_bytes
from repro.experiments.metrics import LoopMetrics
from repro.service.cache import (
    CacheBackend,
    CacheEntry,
    CacheStats,
    metrics_to_payload,
    payload_to_metrics,
)


class ServerUnreachable(Exception):
    """The daemon could not be reached (after retries)."""


class ServerClient:
    """Minimal JSON client for one ``repro serve`` base URL."""

    def __init__(
        self,
        base_url: str,
        auth_token: Optional[str] = None,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.25,
    ):
        self.base_url = base_url.rstrip("/")
        self.auth_token = auth_token
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff

    def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, bytes]:
        """One HTTP round trip -> ``(status, headers, body_bytes)``.

        HTTP error statuses are *responses*, returned like any other;
        only transport failures raise — :class:`ServerUnreachable`,
        after ``retries`` attempts with exponential backoff.
        """
        data = canonical_bytes(body) if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method
        )
        request.add_header("Accept", "application/json")
        if data is not None:
            request.add_header("Content-Type", "application/json")
        if self.auth_token:
            request.add_header("Authorization", f"Bearer {self.auth_token}")
        for name, value in (headers or {}).items():
            request.add_header(name, value)

        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                    return reply.status, dict(reply.headers), reply.read()
            except urllib.error.HTTPError as error:
                # An HTTP status is an answer, not an outage.
                with error:
                    return error.code, dict(error.headers or {}), error.read()
            except (urllib.error.URLError, OSError) as error:
                last_error = error
                if attempt < self.retries:
                    time.sleep(self.backoff * (2 ** attempt))
        raise ServerUnreachable(
            f"{method} {self.base_url}{path}: {last_error}"
        ) from last_error

    def request_json(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, Optional[dict]]:
        status, reply_headers, raw = self.request(method, path, body, headers)
        payload: Optional[dict] = None
        if raw:
            try:
                payload = json.loads(raw)
            except ValueError:
                payload = None
        return status, reply_headers, payload

    # Convenience wrappers for the endpoints tests and the bench use.
    def healthz(self) -> Optional[dict]:
        return self.request_json("GET", "/healthz")[2]

    def metricz(self) -> Optional[dict]:
        return self.request_json("GET", "/metricz")[2]

    def schedule(self, body: dict, headers: Optional[dict] = None):
        return self.request("POST", "/v1/schedule", body, headers)

    def batch(self, body: dict, headers: Optional[dict] = None):
        return self.request("POST", "/v1/batch", body, headers)


class HTTPCache(CacheBackend):
    """A CacheBackend served by a remote daemon, with local degradation."""

    def __init__(
        self,
        base_url: str,
        fallback: Optional[CacheBackend] = None,
        auth_token: Optional[str] = None,
        timeout: float = 10.0,
        retries: int = 1,
        backoff: float = 0.2,
        cooldown: float = 30.0,
    ):
        self.client = ServerClient(
            base_url, auth_token=auth_token, timeout=timeout,
            retries=retries, backoff=backoff,
        )
        self.fallback = fallback
        self.cooldown = cooldown
        self.stats = CacheStats()
        #: Degradation events: transport failures that tripped (or
        #: re-armed) the circuit breaker.
        self.degraded = 0
        self._down_until = 0.0

    def describe(self) -> str:
        label = f"http:{self.client.base_url}"
        if self.fallback is not None:
            label += f" (fallback {self.fallback.describe()})"
        return label

    # -- circuit breaker ----------------------------------------------
    def _remote_available(self) -> bool:
        return time.monotonic() >= self._down_until

    def _trip(self) -> None:
        self.degraded += 1
        self._down_until = time.monotonic() + self.cooldown

    # -- CacheBackend protocol ----------------------------------------
    def get(self, key: str) -> Optional[LoopMetrics]:
        metrics = self._remote_get(key) if self._remote_available() else None
        if metrics is not None:
            self.stats.hits += 1
            if self.fallback is not None:
                self.fallback.put(key, metrics)  # keep the local copy warm
            return metrics
        if self.fallback is not None:
            metrics = self.fallback.get(key)
            if metrics is not None:
                self.stats.hits += 1
                # Entries are content-addressed and deterministic, so a
                # local hit is always valid upstream: re-warm the
                # shared cache with it (best-effort).
                if self._remote_available():
                    self._remote_put(key, metrics)
                return metrics
        self.stats.misses += 1
        return None

    def _remote_get(self, key: str) -> Optional[LoopMetrics]:
        try:
            status, _, raw = self.client.request("GET", f"/v1/cache/{key}")
        except ServerUnreachable:
            self._trip()
            return None
        if status != 200:
            if status in (401, 403):
                self._trip()  # a bad token fails every request; back off
            return None
        try:
            return payload_to_metrics(json.loads(raw))
        except (ValueError, TypeError):
            self.stats.corrupt += 1
            return None

    def put(self, key: str, metrics: LoopMetrics) -> bool:
        stored = False
        if self._remote_available():
            stored = self._remote_put(key, metrics)
        if self.fallback is not None:
            stored = self.fallback.put(key, metrics) or stored
        if stored:
            self.stats.writes += 1
        else:
            self.stats.write_errors += 1
        return stored

    def _remote_put(self, key: str, metrics: LoopMetrics) -> bool:
        try:
            status, _, _ = self.client.request(
                "PUT", f"/v1/cache/{key}", metrics_to_payload(key, metrics)
            )
        except ServerUnreachable:
            self._trip()
            return False
        if status in (401, 403):
            self._trip()
        return status == 204

    def entries(self) -> Iterator[CacheEntry]:
        # Client-side enumeration covers only the local fallback:
        # eviction of the shared store is server-side policy.
        if self.fallback is not None:
            yield from self.fallback.entries()

    def remove(self, key: str) -> bool:
        if self.fallback is not None:
            return self.fallback.remove(key)
        return False

    def close(self) -> None:
        if self.fallback is not None:
            self.fallback.close()
