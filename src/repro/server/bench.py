"""The ``server`` bench scenario: the daemon under concurrent clients.

Boots a real :class:`repro.server.app.ScheduleServer` (in-process, on
an ephemeral port, with a fresh directory cache) and drives it with
``clients`` concurrent threads, each a :class:`repro.server.httpcache
.ServerClient`, over the paper corpus rendered back to loop-DSL
sources:

- a **cold** sweep populates the cache and measures miss-path latency;
- **warm** sweeps (``repeats`` of them) measure hit-path latency and
  throughput, and assert the protocol's central invariant — every warm
  response is byte-identical to its cold counterpart;
- a **conditional** sweep replays the warm requests with
  ``If-None-Match`` set to the response ETags and counts the 304s.

Wall-clock numbers are ``kind="time"`` (reported, not gated); the
cache-hit ratio, byte-identity flag, 304 ratio and request-error count
are deterministic and gate ``--fail-on-regress``.  The payload lands
in ``BENCH_server.json`` and flows into the bench history store like
every other scenario.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.experiments.metrics import LoopMetrics


def _render_sources(corpus_size: int) -> List[str]:
    from repro.frontend.printer import render_loop
    from repro.workloads import paper_corpus

    return [render_loop(program) for program in paper_corpus(corpus_size)]


def _sweep(
    url: str,
    sources: List[str],
    clients: int,
    headers_for: Optional[Dict[int, dict]] = None,
    machine_wire: Optional[dict] = None,
) -> List[Tuple[int, int, dict, bytes, float]]:
    """Issue one POST /v1/schedule per source across client threads.

    ``machine_wire`` (a :meth:`repro.machine.MachineSpec.wire` payload)
    rides along in every request body, exercising the server's machine
    negotiation.  Returns ``(index, status, headers, body, seconds)``
    per request, ordered by index.  A transport failure records
    status 0.
    """
    from repro.server.httpcache import ServerClient, ServerUnreachable

    results: List[Tuple[int, int, dict, bytes, float]] = []
    lock = threading.Lock()

    def worker(worker_index: int) -> None:
        client = ServerClient(url, retries=0)
        for index in range(worker_index, len(sources), clients):
            extra = (headers_for or {}).get(index)
            body_payload = {"source": sources[index]}
            if machine_wire is not None:
                body_payload["machine"] = machine_wire
            started = time.perf_counter()
            try:
                status, headers, body = client.schedule(
                    body_payload, headers=extra
                )
            except ServerUnreachable:
                status, headers, body = 0, {}, b""
            seconds = time.perf_counter() - started
            with lock:
                results.append((index, status, headers, body, seconds))

    threads = [
        threading.Thread(target=worker, args=(i,), name=f"bench-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return sorted(results)


def _latency_quantiles_ms(samples: List[float]) -> Dict[str, float]:
    from repro.obs.metrics import Histogram

    histogram = Histogram()
    for seconds in samples:
        histogram.record(seconds)
    return {
        name: seconds * 1e3 for name, seconds in histogram.quantiles().items()
    }


def run_server_bench(
    scenario,
    corpus_size: int = 60,
    repeats: int = 3,
    warmup: int = 1,
    profile: bool = True,
    memory: bool = False,
    machine=None,
    clients: int = 4,
) -> dict:
    """Benchmark the daemon; matches the bench runner signature."""
    from repro.obs.bench import (
        BENCH_SCHEMA,
        corpus_aggregates,
        metric,
        sample_stats,
        wrap_payload,
    )
    from repro.server.app import ScheduleServer  # noqa: F401 - import check
    from repro.server.app import ServerConfig, running_server

    machine_wire = None
    if machine is not None:
        spec = getattr(machine, "spec", None)
        if spec is None:
            raise ValueError(
                "server bench needs a registry machine (Machine.spec is "
                "None); build it via repro.machine.build_machine"
            )
        machine_wire = spec.wire()
    sources = _render_sources(corpus_size)
    repeats = max(1, repeats)
    cache_root = tempfile.mkdtemp(prefix="repro-bench-server-")
    errors = 0
    byte_identical = True
    cache_hits = 0
    warm_requests = 0
    not_modified = 0
    warm_walls: List[float] = []
    warm_latencies: List[float] = []
    try:
        config = ServerConfig(host="127.0.0.1", port=0, cache_dir=cache_root)
        with running_server(config) as server:
            url = server.url

            started = time.perf_counter()
            cold = _sweep(url, sources, clients, machine_wire=machine_wire)
            cold_wall = time.perf_counter() - started
            cold_bodies = {}
            cold_latencies = []
            for index, status, _, body, seconds in cold:
                cold_latencies.append(seconds)
                if status != 200:
                    errors += 1
                else:
                    cold_bodies[index] = body

            for _ in range(repeats):
                started = time.perf_counter()
                warm = _sweep(url, sources, clients, machine_wire=machine_wire)
                warm_walls.append(time.perf_counter() - started)
                for index, status, headers, body, seconds in warm:
                    warm_requests += 1
                    warm_latencies.append(seconds)
                    if status != 200:
                        errors += 1
                        continue
                    if headers.get("X-Repro-Cache") == "hit":
                        cache_hits += 1
                    if body != cold_bodies.get(index):
                        byte_identical = False

            # Conditional sweep: replay with If-None-Match = the ETag
            # each warm response carried; every one should be a 304.
            etags = {
                index: {"If-None-Match": headers["ETag"]}
                for index, status, headers, _, _ in warm
                if status == 200 and "ETag" in headers
            }
            for _, status, _, _, _ in _sweep(
                url, sources, clients, etags, machine_wire=machine_wire
            ):
                if status == 304:
                    not_modified += 1
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    loop_metrics = []
    for index in sorted(cold_bodies):
        record = json.loads(cold_bodies[index])["metrics"]
        loop_metrics.append(LoopMetrics(**record))

    warm_stats = sample_stats(warm_walls)
    warm_wall = warm_stats["median"]
    cold_quantiles = _latency_quantiles_ms(cold_latencies)
    warm_quantiles = _latency_quantiles_ms(warm_latencies)
    hit_ratio = cache_hits / warm_requests if warm_requests else 0.0
    metrics = {
        "wall_time_s": metric(
            warm_wall, "s", direction="lower", kind="time",
            iqr=warm_stats["iqr"],
        ),
        "cold_wall_s": metric(cold_wall, "s", direction="lower", kind="time"),
        "cold_latency_p50_ms": metric(
            cold_quantiles["p50"], "ms", direction="lower", kind="time"
        ),
        "cold_latency_p99_ms": metric(
            cold_quantiles["p99"], "ms", direction="lower", kind="time"
        ),
        "warm_latency_p50_ms": metric(
            warm_quantiles["p50"], "ms", direction="lower", kind="time"
        ),
        "warm_latency_p99_ms": metric(
            warm_quantiles["p99"], "ms", direction="lower", kind="time"
        ),
        "requests_per_s": metric(
            len(sources) / warm_wall if warm_wall else 0.0,
            "req/s", direction="higher", kind="time",
        ),
        "cache_hit_ratio": metric(
            hit_ratio, "fraction", direction="higher"
        ),
        "warm_byte_identical": metric(
            1.0 if byte_identical else 0.0, "bool", direction="higher"
        ),
        "conditional_304_ratio": metric(
            not_modified / len(sources) if sources else 0.0,
            "fraction", direction="higher",
        ),
        "request_errors": metric(errors, "errors", direction="lower"),
    }
    metrics.update(corpus_aggregates(loop_metrics))
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": scenario.name,
            "description": scenario.description,
            "algorithm": scenario.algorithm,
            "machine": getattr(machine, "name", None),
            "corpus_size": len(sources),
            "repeats": repeats,
            "warmup": warmup,
            "clients": clients,
            "warm_wall_samples_s": warm_walls,
            "metrics": metrics,
            "profile": None,
        },
    )
