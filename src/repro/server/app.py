"""The scheduling daemon: ``python -m repro serve``.

A stdlib-only, long-lived ``ThreadingHTTPServer`` serving the wire
protocol in :mod:`repro.server.protocol`.  Design points:

- **One shared cache, many request threads.**  The server owns a
  single :class:`~repro.service.cache.CacheBackend` (directory or WAL
  sqlite) behind a lock (:class:`LockedCache`), so every client — and
  the ``/v1/batch`` path, which runs the whole existing
  :func:`repro.service.batch.run_batch` machinery against it — sees
  one warm cache.
- **Deterministic bodies.**  Responses are canonical JSON
  (:mod:`repro.canonical`); a warm ``POST /v1/schedule`` is
  byte-identical to the cold response that populated the cache, and
  the ``ETag`` is the canonical request key, so ``If-None-Match``
  short-circuits repeat requests to a 304 before any scheduling work.
- **Graceful shutdown.**  SIGTERM/SIGINT stop the accept loop, drain
  in-flight request threads (``server_close`` joins them), flush the
  metrics snapshot, and exit 0 — so a supervisor restart never tears a
  request mid-flight.
- **Measured, not asserted.**  Every request lands in a
  :class:`~repro.obs.metrics.MetricsRegistry` (request counters +
  per-route latency histograms with p50/p90/p99), exposed at
  ``GET /metricz`` and load-tested by ``python -m repro bench
  --scenario server``.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import hmac
import json
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, List, Optional
from urllib.parse import urlsplit

from repro.canonical import canonical_bytes, canonical_dump
from repro.obs.metrics import MetricsRegistry
from repro.server import protocol
from repro.service.cache import (
    CacheBackend,
    CacheEntry,
    DirectoryCache,
    SQLiteCache,
    metrics_to_payload,
    payload_to_metrics,
)

#: Default TCP port (0x2159 would be too cute; this is "HUFF" on a phone
#: pad, truncated to the registered-port range).
DEFAULT_PORT = 8537

#: Largest request body the daemon will read.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Route tags used for metrics; everything else lands in "other".
_ROUTES = (
    "healthz", "metricz", "schedule", "batch", "cache.get", "cache.put",
)


@dataclasses.dataclass
class ServerConfig:
    """Everything ``serve_main`` configures on the daemon."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT  # 0 = ephemeral (the OS picks; see .url)
    cache_dir: Optional[str] = None
    cache_db: Optional[str] = None
    auth_token: Optional[str] = None
    jobs: int = 1  # /v1/batch worker processes
    job_timeout: Optional[float] = None  # /v1/batch per-job budget
    backend: str = "auto"  # /v1/batch execution backend
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    verbose: bool = False


class LockedCache(CacheBackend):
    """Serialize any CacheBackend for many request threads.

    The underlying backends are process-safe (atomic renames, WAL) but
    not thread-safe: ``CacheStats`` increments race and one sqlite
    connection must not be used concurrently.  One lock around every
    operation keeps the hot path simple; scheduling dominates request
    time, so the serialization is invisible next to it.
    """

    def __init__(self, inner: CacheBackend):
        self.inner = inner
        self._lock = threading.Lock()

    @property
    def stats(self):
        return self.inner.stats

    def get(self, key: str):
        with self._lock:
            return self.inner.get(key)

    def put(self, key: str, metrics) -> bool:
        with self._lock:
            return self.inner.put(key, metrics)

    def entries(self) -> Iterator[CacheEntry]:
        with self._lock:
            return iter(list(self.inner.entries()))

    def remove(self, key: str) -> bool:
        with self._lock:
            return self.inner.remove(key)

    def close(self) -> None:
        with self._lock:
            self.inner.close()

    def describe(self) -> str:
        return self.inner.describe()


def _open_server_cache(config: ServerConfig) -> Optional[CacheBackend]:
    if config.cache_dir is not None and config.cache_db is not None:
        raise ValueError("pass either cache_dir or cache_db, not both")
    if config.cache_db is not None:
        # One connection shared across request threads, serialized by
        # the LockedCache wrapper.
        return LockedCache(SQLiteCache(config.cache_db, threadsafe=True))
    if config.cache_dir is not None:
        return LockedCache(DirectoryCache(config.cache_dir))
    return None


class ScheduleServer(ThreadingHTTPServer):
    """The daemon: shared cache + metrics registry + request handler."""

    # ThreadingHTTPServer defaults: daemon request threads (a hung
    # request cannot block process exit) but block_on_close=True, so
    # server_close() joins in-flight threads — the drain guarantee.
    allow_reuse_address = True

    def __init__(self, config: ServerConfig):
        self.config = config
        self.cache = _open_server_cache(config)
        self.registry = MetricsRegistry()
        self.registry_lock = threading.Lock()
        self.started_unix = time.time()
        super().__init__((config.host, config.port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- instrumentation ----------------------------------------------
    def observe(self, route: str, status: int, seconds: float) -> None:
        with self.registry_lock:
            self.registry.counter("server.requests.total").inc()
            self.registry.counter(f"server.requests.{route}").inc()
            self.registry.counter(f"server.responses.{status // 100}xx").inc()
            self.registry.histogram(f"server.latency.{route}").record(seconds)

    def metricz_body(self) -> dict:
        with self.registry_lock:
            snapshot = self.registry.snapshot()
        cache_block = None
        if self.cache is not None:
            cache_block = {
                "location": self.cache.describe(),
                **dataclasses.asdict(self.cache.stats),
            }
        return {
            "schema": protocol.METRICZ_SCHEMA,
            "schema_version": protocol.SERVER_PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_unix,
            "cache": cache_block,
            "metrics": snapshot,
        }

    def close_cache(self) -> None:
        if self.cache is not None:
            self.cache.close()


class _Handler(BaseHTTPRequestHandler):
    server: ScheduleServer  # narrowed for type checkers
    server_version = "repro-server/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.config.verbose:
            super().log_message(format, *args)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        etag: Optional[str] = None,
        cache_state: Optional[str] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", f'"{etag}"')
        if cache_state is not None:
            self.send_header("X-Repro-Cache", cache_state)
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, **kwargs) -> None:
        self._send_bytes(status, canonical_bytes(payload), **kwargs)

    def _send_error_body(self, status: int, message: str) -> None:
        self._send_json(status, protocol.error_body(status, message))

    def _send_not_modified(self, etag: str) -> None:
        self.send_response(304)
        self.send_header("ETag", f'"{etag}"')
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _etag_matches(self, etag: str) -> bool:
        header = self.headers.get("If-None-Match")
        if not header:
            return False
        candidates = {tag.strip().strip('"') for tag in header.split(",")}
        return "*" in candidates or etag in candidates

    def _authorized(self) -> bool:
        token = self.server.config.auth_token
        if token is None:
            return True
        header = self.headers.get("Authorization", "")
        return hmac.compare_digest(header, f"Bearer {token}")

    def _read_json_body(self) -> dict:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise protocol.ProtocolError(411, "Content-Length required")
        try:
            length = int(length_header)
        except ValueError:
            raise protocol.ProtocolError(400, "bad Content-Length") from None
        if length < 0:
            raise protocol.ProtocolError(400, "bad Content-Length")
        if length > self.server.config.max_body_bytes:
            raise protocol.ProtocolError(
                413,
                f"body exceeds {self.server.config.max_body_bytes} bytes",
            )
        data = self.rfile.read(length)
        if len(data) != length:
            raise protocol.ProtocolError(400, "truncated body")
        try:
            return json.loads(data)
        except (ValueError, UnicodeDecodeError):
            raise protocol.ProtocolError(400, "body is not valid JSON") from None

    # -- routing -------------------------------------------------------
    def _route(self, method: str) -> None:
        path = urlsplit(self.path).path
        route = "other"
        started = time.perf_counter()
        status = 500
        try:
            if path == "/healthz" and method == "GET":
                route = "healthz"
                status = self._handle_healthz()
                return
            if not self._authorized():
                status = 401
                self._send_error_body(401, "missing or bad bearer token")
                return
            if path == "/metricz" and method == "GET":
                route = "metricz"
                status = self._handle_metricz()
            elif path == "/v1/schedule" and method == "POST":
                route = "schedule"
                status = self._handle_schedule()
            elif path == "/v1/batch" and method == "POST":
                route = "batch"
                status = self._handle_batch()
            elif path.startswith("/v1/cache/"):
                key = path[len("/v1/cache/"):]
                if method == "GET":
                    route = "cache.get"
                    status = self._handle_cache_get(key)
                elif method == "PUT":
                    route = "cache.put"
                    status = self._handle_cache_put(key)
                else:
                    status = 405
                    self._send_error_body(405, f"{method} not allowed here")
            elif path in ("/healthz", "/metricz", "/v1/schedule", "/v1/batch"):
                status = 405
                self._send_error_body(405, f"{method} not allowed on {path}")
            else:
                status = 404
                self._send_error_body(404, f"no route {method} {path}")
        except protocol.ProtocolError as error:
            status = error.status
            self._send_error_body(error.status, error.message)
        except BrokenPipeError:  # client went away mid-response
            status = 499
        except Exception as error:  # noqa: BLE001 - the daemon must survive
            status = 500
            try:
                self._send_error_body(500, f"internal error: {error}")
            except BrokenPipeError:
                pass
        finally:
            self.server.observe(route, status, time.perf_counter() - started)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._route("PUT")

    # -- endpoints -----------------------------------------------------
    def _handle_healthz(self) -> int:
        self._send_json(
            200,
            {
                "schema": protocol.HEALTH_SCHEMA,
                "schema_version": protocol.SERVER_PROTOCOL_VERSION,
                "status": "ok",
                # Machine negotiation: which targets (and parameters)
                # this server's registry will accept on /v1/schedule.
                "machines": protocol.machine_catalog(),
            },
        )
        return 200

    def _handle_metricz(self) -> int:
        self._send_json(200, self.server.metricz_body())
        return 200

    def _handle_schedule(self) -> int:
        from repro.experiments.runner import measure_loop
        from repro.service.keys import cache_key

        request = protocol.parse_schedule_request(self._read_json_body())
        key = cache_key(
            request.program, request.machine, request.algorithm, request.options
        )
        if self._etag_matches(key):
            self._send_not_modified(key)
            return 304
        cache = self.server.cache if request.use_cache else None
        metrics = cache.get(key) if cache is not None else None
        if metrics is not None:
            cache_state = "hit"
        else:
            metrics = measure_loop(
                request.program,
                request.machine,
                algorithm=request.algorithm,
                options=request.options,
            )
            if cache is not None:
                cache.put(key, metrics)
                cache_state = "miss"
            else:
                cache_state = "bypass"
        body = protocol.schedule_response_body(
            key, metrics, protocol.schedule_extras(request)
        )
        self._send_json(200, body, etag=key, cache_state=cache_state)
        return 200

    def _handle_batch(self) -> int:
        from repro.service.batch import run_batch

        request = protocol.parse_batch_request(self._read_json_body())
        config = self.server.config
        cache = self.server.cache if request.use_cache else None
        before = (
            dataclasses.replace(cache.stats) if cache is not None else None
        )
        report = run_batch(
            request.programs,
            machine=request.machine,
            algorithm=request.algorithm,
            options=request.options,
            jobs=config.jobs,
            timeout=config.job_timeout,
            backend=config.backend,
            cache=cache,
            use_cache=cache is not None,
        )
        cache_delta = None
        if cache is not None and before is not None:
            after = cache.stats
            cache_delta = {
                field.name: getattr(after, field.name) - getattr(before, field.name)
                for field in dataclasses.fields(after)
            }
        self._send_json(200, protocol.batch_response_body(report, cache_delta))
        return 200

    def _require_cache(self) -> CacheBackend:
        cache = self.server.cache
        if cache is None:
            raise protocol.ProtocolError(
                503, "no cache configured on this server"
            )
        return cache

    @staticmethod
    def _validate_key(key: str) -> str:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise protocol.ProtocolError(
                400, "cache key must be 64 lowercase hex characters"
            )
        return key

    def _handle_cache_get(self, key: str) -> int:
        cache = self._require_cache()
        key = self._validate_key(key)
        if self._etag_matches(key):
            self._send_not_modified(key)
            return 304
        metrics = cache.get(key)
        if metrics is None:
            self._send_error_body(404, f"no cache entry {key}")
            return 404
        self._send_json(
            200, metrics_to_payload(key, metrics), etag=key, cache_state="hit"
        )
        return 200

    def _handle_cache_put(self, key: str) -> int:
        cache = self._require_cache()
        key = self._validate_key(key)
        payload = self._read_json_body()
        try:
            metrics = payload_to_metrics(payload)
        except (ValueError, TypeError) as error:
            raise protocol.ProtocolError(400, f"bad envelope: {error}") from error
        if payload.get("key") != key:
            raise protocol.ProtocolError(
                400, "envelope key does not match the request path"
            )
        if not cache.put(key, metrics):
            self._send_error_body(500, "cache write failed")
            return 500
        self._send_bytes(204, b"", etag=key)
        return 204


# ----------------------------------------------------------------------
# Embedding (tests, the bench scenario)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def running_server(config: ServerConfig):
    """Boot a daemon on a background thread; drain and close on exit."""
    server = ScheduleServer(config)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-server",
        daemon=True,
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join()
        server.server_close()  # joins in-flight request threads
        server.close_cache()


# ----------------------------------------------------------------------
# CLI (python -m repro serve ...)
# ----------------------------------------------------------------------
def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the scheduling daemon: POST loops, get canonical "
        "metrics JSON back, share one warm result cache over HTTP.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port; 0 picks an ephemeral port (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="directory result cache root (default .repro-cache; mutually "
        "exclusive with --cache-db)",
    )
    parser.add_argument(
        "--cache-db",
        metavar="PATH",
        help="single-file sqlite result cache (WAL mode)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="serve without any cache"
    )
    parser.add_argument(
        "--auth-token",
        metavar="TOKEN",
        default=os.environ.get("REPRO_SERVER_TOKEN"),
        help="require 'Authorization: Bearer TOKEN' on every endpoint "
        "except /healthz (default: $REPRO_SERVER_TOKEN, else no auth)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="/v1/batch worker processes (default 1 = serial in-process)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        metavar="SECONDS",
        help="/v1/batch per-job wall-clock budget (default: unlimited)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the final /metricz snapshot here on shutdown",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_serve_parser().parse_args(argv)
    if args.cache_dir is not None and args.cache_db is not None:
        print(
            "error: pass either --cache-dir or --cache-db, not both",
            file=sys.stderr,
        )
        return 2
    cache_dir = args.cache_dir
    if args.no_cache:
        cache_dir = cache_db = None
    else:
        cache_db = args.cache_db
        if cache_dir is None and cache_db is None:
            from repro.service.batch import DEFAULT_CACHE_DIR

            cache_dir = DEFAULT_CACHE_DIR
    if args.jobs < 1:
        print("error: --jobs must be positive", file=sys.stderr)
        return 2

    config = ServerConfig(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        cache_db=cache_db,
        auth_token=args.auth_token,
        jobs=args.jobs,
        job_timeout=args.job_timeout,
        verbose=args.verbose,
    )
    try:
        server = ScheduleServer(config)
    except (OSError, ValueError) as error:
        print(f"error: cannot bind {args.host}:{args.port}: {error}", file=sys.stderr)
        return 2

    # The announce lines are a tiny machine-readable contract: tests and
    # wrappers parse the URL (ephemeral --port 0 resolves here).
    print(f"serving on {server.url}", flush=True)
    print(
        "cache: "
        + (server.cache.describe() if server.cache is not None else "disabled"),
        flush=True,
    )
    if config.auth_token:
        print("auth: bearer token required", flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    old_handlers = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-server",
        daemon=True,
    )
    thread.start()
    try:
        stop.wait()
    finally:
        for signum, handler in old_handlers.items():
            signal.signal(signum, handler)
    print("shutdown: draining in-flight requests", file=sys.stderr, flush=True)
    server.shutdown()
    thread.join()
    server.server_close()  # drain: joins every in-flight request thread

    snapshot = server.metricz_body()
    if args.metrics_out:
        try:
            canonical_dump(snapshot, args.metrics_out)
        except OSError as error:
            print(
                f"error: cannot write metrics to {args.metrics_out}: {error}",
                file=sys.stderr,
            )
            # Still a clean drain; don't fail the shutdown over telemetry.
    served = snapshot["metrics"]["counters"].get("server.requests.total", 0)
    line = f"served {served} request(s)"
    if server.cache is not None:
        stats = server.cache.stats
        line += f"; cache: {stats.hits} hits, {stats.misses} misses"
    print(line, flush=True)
    server.close_cache()
    return 0
