"""The scheduling server's wire protocol: requests in, envelopes out.

Everything on the wire is JSON.  Requests are plain objects validated
strictly — an unknown field, a wrong type or an out-of-range value is a
400 with a one-line reason, never a silent default — and responses are
canonical (sorted-key, compact) JSON from :mod:`repro.canonical`, so
the same request always produces byte-identical bytes:

- a ``POST /v1/schedule`` answered from the cache is byte-identical to
  the response that populated it (the cache preserves the original
  run's timing fields, and the envelope carries nothing per-request);
- the response ``ETag`` is the canonical SHA-256 request key from
  :mod:`repro.service.keys`, so ``If-None-Match`` turns a repeat
  request into a 304 before any scheduling work happens.

This module is transport-free (no sockets, no threads) so both the
daemon (:mod:`repro.server.app`) and tests can use it directly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

#: Envelope identifiers.  Bump the version when a response's structure
#: changes incompatibly; clients refuse versions they don't know.
SERVER_PROTOCOL_VERSION = 1
SCHEDULE_SCHEMA = "repro.server.schedule"
BATCH_SCHEMA = "repro.server.batch"
ERROR_SCHEMA = "repro.server.error"
HEALTH_SCHEMA = "repro.server.health"
METRICZ_SCHEMA = "repro.server.metricz"

#: Extras a schedule request may ask for.  Both are recomputed per
#: request (the cache stores only metrics), deterministically — the
#: scheduler is deterministic, so repeat requests still match bytes.
INCLUDE_CHOICES = ("schedule", "explain")

#: Abuse bounds: one oversized request must not take the daemon down.
MAX_SOURCE_BYTES = 256 * 1024
MAX_BATCH_LOOPS = 2048

def machine_names() -> Tuple[str, ...]:
    """The machines a request may name — the registry's families.

    Registering a new :class:`repro.machine.registry.MachineFamily`
    makes it immediately servable over ``/v1/schedule``/``/v1/batch``;
    nothing here hardcodes a target list.
    """
    from repro.machine.registry import machine_names as registry_names

    return registry_names()


def __getattr__(name: str):
    # MACHINE_NAMES stays importable (and always current) without
    # paying the machine-model import at protocol import time.
    if name == "MACHINE_NAMES":
        return machine_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def machine_catalog() -> List[dict]:
    """Machine negotiation payload (served on ``GET /healthz``).

    Lists every registered family with its parameters, defaults and
    legal ranges, so a client can discover what ``{"machine": ...}``
    objects this server accepts before posting work.
    """
    from repro.machine.registry import families

    return [
        {
            "name": family.name,
            "description": family.description,
            "default_machine": family.spec().name,
            "params": [
                {
                    "name": param.name,
                    "default": param.default,
                    "min": param.minimum,
                    "max": param.maximum,
                }
                for param in family.params
            ],
        }
        for family in families()
    ]


class ProtocolError(Exception):
    """A request the server refuses; carries the HTTP status to send."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def error_body(status: int, message: str) -> dict:
    return {
        "schema": ERROR_SCHEMA,
        "schema_version": SERVER_PROTOCOL_VERSION,
        "status": status,
        "error": message,
    }


# ----------------------------------------------------------------------
# Field validation helpers
# ----------------------------------------------------------------------
def _require_object(payload, what: str) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError(400, f"{what} must be a JSON object")
    return payload


def _reject_unknown(payload: dict, known: Tuple[str, ...], what: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ProtocolError(
            400,
            f"unknown {what} field(s) {', '.join(unknown)}; "
            f"known: {', '.join(known)}",
        )


def parse_machine(spec) -> "object":
    """``{"name": "cydra5", "load_latency": 13}`` -> a Machine.

    The name is resolved against the machine registry and every other
    field is validated as one of that family's declared parameters —
    unknown names and out-of-range values are strict 400s whose
    messages list the registry's current contents.
    """
    from repro.machine.registry import MachineParamError, get_family

    if spec is None:
        return get_family("cydra5").build()
    spec = _require_object(spec, "machine")
    name = spec.get("name", "cydra5")
    known = machine_names()
    if not isinstance(name, str) or name not in known:
        raise ProtocolError(
            400,
            f"unknown machine {name!r}; known: {', '.join(known)}",
        )
    family = get_family(name)
    _reject_unknown(spec, ("name",) + family.param_names(), "machine")
    params = {}
    for param_name in family.param_names():
        if param_name in spec:
            value = spec[param_name]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(
                    400, f"machine.{param_name} must be an integer"
                )
            params[param_name] = value
    try:
        return family.build(**params)
    except MachineParamError as error:
        raise ProtocolError(400, f"machine.{error}") from error


def parse_options(spec) -> Optional[object]:
    """A SchedulerOptions field subset -> SchedulerOptions (None = defaults)."""
    from repro.core import SchedulerOptions

    if spec is None:
        return None
    spec = _require_object(spec, "options")
    fields = {field.name for field in dataclasses.fields(SchedulerOptions)}
    _reject_unknown(spec, tuple(sorted(fields)), "options")
    for name, value in spec.items():
        if value is not None and not isinstance(value, (bool, int, float)):
            raise ProtocolError(400, f"options.{name} must be a number or bool")
    try:
        return SchedulerOptions(**spec)
    except TypeError as error:  # pragma: no cover - fields checked above
        raise ProtocolError(400, f"bad options: {error}") from error


def parse_algorithm(value) -> str:
    from repro.core import ALGORITHMS

    if value is None:
        return "slack"
    if not isinstance(value, str) or value not in ALGORITHMS:
        raise ProtocolError(
            400,
            f"unknown algorithm {value!r}; "
            f"known: {', '.join(sorted(ALGORITHMS))}",
        )
    return value


def _parse_source(text, what: str = "source"):
    from repro.frontend.parser import ParseError, parse_loop

    if not isinstance(text, str):
        raise ProtocolError(400, f"{what} must be a string of loop DSL")
    if len(text.encode("utf-8", errors="replace")) > MAX_SOURCE_BYTES:
        raise ProtocolError(413, f"{what} exceeds {MAX_SOURCE_BYTES} bytes")
    try:
        return parse_loop(text)
    except (ParseError, ValueError) as error:
        raise ProtocolError(400, f"{what}: {error}") from error


# ----------------------------------------------------------------------
# POST /v1/schedule
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ScheduleRequest:
    """One validated scheduling request, ready to key and execute."""

    program: object  # DoLoop
    machine: object  # Machine
    algorithm: str
    options: Optional[object]
    include: Tuple[str, ...] = ()
    use_cache: bool = True


_SCHEDULE_FIELDS = ("source", "machine", "algorithm", "options", "include", "cache")


def parse_schedule_request(payload) -> ScheduleRequest:
    payload = _require_object(payload, "request body")
    _reject_unknown(payload, _SCHEDULE_FIELDS, "request")
    if "source" not in payload:
        raise ProtocolError(400, "request is missing 'source'")
    include = payload.get("include", [])
    if not isinstance(include, list) or not all(
        isinstance(item, str) for item in include
    ):
        raise ProtocolError(400, "include must be a list of strings")
    bad = sorted(set(include) - set(INCLUDE_CHOICES))
    if bad:
        raise ProtocolError(
            400,
            f"unknown include item(s) {', '.join(bad)}; "
            f"known: {', '.join(INCLUDE_CHOICES)}",
        )
    use_cache = payload.get("cache", True)
    if not isinstance(use_cache, bool):
        raise ProtocolError(400, "cache must be a boolean")
    return ScheduleRequest(
        program=_parse_source(payload["source"]),
        machine=parse_machine(payload.get("machine")),
        algorithm=parse_algorithm(payload.get("algorithm")),
        options=parse_options(payload.get("options")),
        include=tuple(dict.fromkeys(include)),
        use_cache=use_cache,
    )


def schedule_response_body(key: str, metrics, extras: Optional[dict] = None) -> dict:
    """The /v1/schedule envelope (canonicalized by the transport)."""
    body = {
        "schema": SCHEDULE_SCHEMA,
        "schema_version": SERVER_PROTOCOL_VERSION,
        "key": key,
        "metrics": dataclasses.asdict(metrics),
    }
    if extras:
        body.update(extras)
    return body


def schedule_extras(request: ScheduleRequest) -> dict:
    """Recompute the requested extras (schedule render / explain).

    The cache stores metrics only, so extras are recomputed on every
    request that asks for them — deterministically, because the
    scheduler is: two identical requests render identical text.
    """
    if not request.include:
        return {}
    from repro.core import modulo_schedule
    from repro.frontend import compile_loop
    from repro.ir import build_ddg
    from repro.obs import CollectingTracer, explain

    loop = compile_loop(request.program)
    ddg = build_ddg(loop, request.machine)
    tracer = CollectingTracer() if "explain" in request.include else None
    result = modulo_schedule(
        loop,
        request.machine,
        algorithm=request.algorithm,
        options=request.options,
        ddg=ddg,
        tracer=tracer,
    )
    extras: dict = {}
    if "schedule" in request.include:
        extras["schedule"] = (
            result.schedule.render() if result.success else None
        )
    if "explain" in request.include:
        extras["explain"] = explain(result, tracer.events, ddg=ddg)
    return extras


# ----------------------------------------------------------------------
# POST /v1/batch
# ----------------------------------------------------------------------
@dataclasses.dataclass
class BatchRequest:
    """One validated batch request: many programs, one configuration."""

    programs: List[object]
    machine: object
    algorithm: str
    options: Optional[object]
    use_cache: bool = True


_BATCH_FIELDS = (
    "sources", "corpus", "seed", "machine", "algorithm", "options", "cache",
)


def parse_batch_request(payload) -> BatchRequest:
    payload = _require_object(payload, "request body")
    _reject_unknown(payload, _BATCH_FIELDS, "request")
    sources = payload.get("sources")
    corpus = payload.get("corpus")
    if (sources is None) == (corpus is None):
        raise ProtocolError(400, "pass exactly one of 'sources' and 'corpus'")
    if sources is not None:
        if not isinstance(sources, list) or not sources:
            raise ProtocolError(400, "sources must be a non-empty list")
        if len(sources) > MAX_BATCH_LOOPS:
            raise ProtocolError(413, f"at most {MAX_BATCH_LOOPS} loops per batch")
        programs = [
            _parse_source(text, what=f"sources[{index}]")
            for index, text in enumerate(sources)
        ]
    else:
        if not isinstance(corpus, int) or isinstance(corpus, bool):
            raise ProtocolError(400, "corpus must be an integer")
        if not 1 <= corpus <= MAX_BATCH_LOOPS:
            raise ProtocolError(400, f"corpus must be in 1..{MAX_BATCH_LOOPS}")
        seed = payload.get("seed", 1993)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(400, "seed must be an integer")
        from repro.workloads import paper_corpus

        programs = paper_corpus(corpus, seed=seed)
    use_cache = payload.get("cache", True)
    if not isinstance(use_cache, bool):
        raise ProtocolError(400, "cache must be a boolean")
    return BatchRequest(
        programs=programs,
        machine=parse_machine(payload.get("machine")),
        algorithm=parse_algorithm(payload.get("algorithm")),
        options=parse_options(payload.get("options")),
        use_cache=use_cache,
    )


def batch_response_body(report, cache_delta: Optional[dict] = None) -> dict:
    """The /v1/batch envelope from a :class:`BatchReport`.

    ``cache_delta`` is this request's share of the shared cache's
    counters (the backend outlives requests, so raw stats would be
    cumulative across clients).
    """
    pool = report.pool
    return {
        "schema": BATCH_SCHEMA,
        "schema_version": SERVER_PROTOCOL_VERSION,
        "ok": report.ok,
        "counts": report.counts(),
        "wall_seconds": report.wall_seconds,
        "cache": cache_delta,
        "pool": {
            "backend": pool.backend or ("serial" if pool.fallback_serial else ""),
            "workers": pool.workers,
            "fallback_serial": pool.fallback_serial,
            "retries": pool.retries,
        },
        "latency_quantiles": report.latency_quantiles(),
        "results": [
            {
                "name": result.name,
                "status": result.status,
                "error": result.error,
                "metrics": (
                    dataclasses.asdict(result.metrics)
                    if result.metrics is not None
                    else None
                ),
            }
            for result in report.results
        ],
    }
