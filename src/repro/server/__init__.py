"""Scheduling-as-a-service: a long-lived HTTP daemon + shared cache.

``python -m repro serve`` boots a stdlib-only HTTP server exposing the
slack scheduler over a small JSON protocol:

- ``POST /v1/schedule`` — one loop (DSL source) + machine config in,
  canonical metrics/schedule/explain JSON out, idempotently cached
  under the canonical SHA-256 request key;
- ``POST /v1/batch``    — many loops in, a batch-report envelope out,
  executed through the existing :mod:`repro.service` backends;
- ``GET/PUT /v1/cache/<key>`` — the shared warm cache over HTTP, with
  ETag conditional gets and optional bearer-token auth;
- ``GET /healthz`` / ``GET /metricz`` — liveness and a metrics
  snapshot with p50/p90/p99 request-latency histograms.

The client half, :class:`repro.server.httpcache.HTTPCache`, implements
the :class:`repro.service.cache.CacheBackend` protocol so
``repro batch --cache-url`` lets many clients and CI shards share one
warm cache, degrading gracefully to a local directory cache when the
server is unreachable.
"""

from repro.server.app import ScheduleServer, ServerConfig, serve_main
from repro.server.httpcache import HTTPCache, ServerClient
from repro.server.protocol import (
    BATCH_SCHEMA,
    SCHEDULE_SCHEMA,
    SERVER_PROTOCOL_VERSION,
    ProtocolError,
)

__all__ = [
    "BATCH_SCHEMA",
    "HTTPCache",
    "ProtocolError",
    "SCHEDULE_SCHEMA",
    "SERVER_PROTOCOL_VERSION",
    "ScheduleServer",
    "ServerClient",
    "ServerConfig",
    "serve_main",
]
