"""Render DoLoop programs back to loop-language source.

The inverse of :mod:`repro.frontend.parser` (up to the inherent
ambiguity that an indirect access whose index happens to be affine in
``i`` prints identically to an affine reference).  Used to export
generated corpora as human-readable ``.loop`` files and to round-trip
test the parser.
"""

from __future__ import annotations

from typing import List

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    DoLoop,
    ExitIf,
    Expr,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Stmt,
    Unary,
)

#: Binding strength for parenthesization decisions.
_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def _number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value)) + ".0"
    return repr(float(value))


def _subscript(stride: int, offset: int) -> str:
    parts = "i" if stride == 1 else f"{stride}*i"
    if offset > 0:
        return f"{parts} + {offset}"
    if offset < 0:
        return f"{parts} - {-offset}"
    return parts


def render_expr(expr: Expr, parent_precedence: int = 0) -> str:
    """Render one expression, parenthesizing only where needed."""
    if isinstance(expr, Const):
        return _number(expr.value)
    if isinstance(expr, Scalar):
        return expr.name
    if isinstance(expr, Index):
        return "i"
    if isinstance(expr, ArrayRef):
        return f"{expr.array}({_subscript(expr.stride, expr.offset)})"
    if isinstance(expr, Gather):
        return f"{expr.array}({render_expr(expr.index)})"
    if isinstance(expr, Unary):
        if expr.op == "neg":
            return f"-{render_expr(expr.operand, 3)}"
        return f"{expr.op}({render_expr(expr.operand)})"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({render_expr(expr.left)}, {render_expr(expr.right)})"
        mine = _PRECEDENCE[expr.op]
        left = render_expr(expr.left, mine)
        # Right operand needs parens at equal precedence: a - (b - c).
        right = render_expr(expr.right, mine + 1)
        text = f"{left} {expr.op} {right}"
        if mine < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, Compare):
        return f"{render_expr(expr.left)} {expr.op} {render_expr(expr.right)}"
    raise TypeError(f"cannot render {expr!r}")


def _render_statements(stmts, indent: int, lines: List[str]) -> None:
    pad = "    " * indent
    for stmt in stmts:
        if isinstance(stmt, Assign):
            target = stmt.target
            if isinstance(target, Scalar):
                lhs = target.name
            elif isinstance(target, ArrayRef):
                lhs = f"{target.array}({_subscript(target.stride, target.offset)})"
            elif isinstance(target, Scatter):
                lhs = f"{target.array}({render_expr(target.index)})"
            else:
                raise TypeError(f"cannot render target {target!r}")
            lines.append(f"{pad}{lhs} = {render_expr(stmt.expr)}")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if ({render_expr(stmt.cond)}) then")
            _render_statements(stmt.then, indent + 1, lines)
            if stmt.orelse:
                lines.append(f"{pad}else")
                _render_statements(stmt.orelse, indent + 1, lines)
            lines.append(f"{pad}end if")
        elif isinstance(stmt, ExitIf):
            lines.append(f"{pad}if ({render_expr(stmt.cond)}) exit")
        else:
            raise TypeError(f"cannot render statement {stmt!r}")


def render_loop(program: DoLoop) -> str:
    """Render a whole DoLoop as loop-language source."""
    lines: List[str] = [f"loop {program.name}"]
    for name in sorted(program.arrays):
        lines.append(f"array {name} {program.arrays[name]}")
    for name in sorted(program.scalars):
        lines.append(f"scalar {name} {program.scalars[name]}")
    if program.live_out:
        lines.append("liveout " + " ".join(program.live_out))
    lines.append(f"do i = {program.start}, {program.start + program.trip - 1}")
    _render_statements(program.body, 1, lines)
    lines.append("end do")
    return "\n".join(lines) + "\n"


def save_corpus(programs, directory: str) -> List[str]:
    """Write each program to ``directory/<name>.loop``; returns paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    paths = []
    for program in programs:
        path = os.path.join(directory, f"{program.name}.loop")
        with open(path, "w") as handle:
            handle.write(render_loop(program))
        paths.append(path)
    return paths
