"""Source-level loop transformations.

The paper's §3.1 observes that MII's ceiling hides *fractional* lower
bounds: a loop whose exact minimum is II = 3/2 must settle for II = 2 —
unless the compiler unrolls it once and schedules the unrolled body at
II = 3, recovering the fractional rate.  The paper's compiler "does not
perform any such loop transformations"; this module adds the missing
piece so the effect can be measured (see
``benchmarks/bench_extension_unroll.py``).

:func:`unroll` rewrites a DoLoop by factor F: the new loop runs
``trip / F`` iterations, each executing F shifted copies of the body.
An affine reference ``a(s*i + d)`` in copy u becomes
``a(s*F*j + (s*(start+u) + d))`` over the new index j (which starts at
0), the loop index expression ``i`` becomes ``F*j + (start + u)``, and
statements stay in copy order so scalar recurrences keep their exact
sequential semantics.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    DoLoop,
    Expr,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Stmt,
    Unary,
)


class UnrollError(ValueError):
    """The loop cannot be unrolled by the requested factor."""


def unroll(program: DoLoop, factor: int) -> DoLoop:
    """Unroll ``program`` by ``factor``; trip must divide evenly."""
    if factor < 1:
        raise UnrollError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return program
    if program.trip % factor != 0:
        raise UnrollError(
            f"trip count {program.trip} is not a multiple of factor {factor}"
        )
    body: List[Stmt] = []
    for copy in range(factor):
        body.extend(
            _shift_stmt(stmt, program.start, factor, copy) for stmt in program.body
        )
    return DoLoop(
        name=f"{program.name}_x{factor}",
        body=body,
        arrays=dict(program.arrays),
        scalars=dict(program.scalars),
        start=0,
        trip=program.trip // factor,
        live_out=list(program.live_out),
    )


def _shift_stmt(stmt: Stmt, start: int, factor: int, copy: int) -> Stmt:
    if isinstance(stmt, Assign):
        target = stmt.target
        if isinstance(target, ArrayRef):
            target = _shift_ref(target, start, factor, copy)
        elif isinstance(target, Scatter):
            target = Scatter(target.array, _shift_expr(target.index, start, factor, copy))
        return Assign(target, _shift_expr(stmt.expr, start, factor, copy))
    if isinstance(stmt, If):
        return If(
            _shift_expr(stmt.cond, start, factor, copy),
            then=[_shift_stmt(s, start, factor, copy) for s in stmt.then],
            orelse=[_shift_stmt(s, start, factor, copy) for s in stmt.orelse],
        )
    raise UnrollError(f"cannot unroll statement {stmt!r}")


def _shift_ref(ref: ArrayRef, start: int, factor: int, copy: int) -> ArrayRef:
    # a(s*i + d) with i = start + k*factor + copy over new index j = k
    # (new start 0): stride s*factor, offset s*(start + copy) + d.
    return ArrayRef(
        ref.array,
        offset=ref.stride * (start + copy) + ref.offset,
        stride=ref.stride * factor,
    )


def _shift_expr(expr: Expr, start: int, factor: int, copy: int) -> Expr:
    if isinstance(expr, (Const, Scalar)):
        return expr
    if isinstance(expr, Index):
        # old i = factor*j + (start + copy), with the new loop's start=0.
        return BinOp(
            "+",
            BinOp("*", Index(), Const(float(factor))),
            Const(float(start + copy)),
        )
    if isinstance(expr, ArrayRef):
        return _shift_ref(expr, start, factor, copy)
    if isinstance(expr, Gather):
        return Gather(expr.array, _shift_expr(expr.index, start, factor, copy))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _shift_expr(expr.left, start, factor, copy),
            _shift_expr(expr.right, start, factor, copy),
        )
    if isinstance(expr, Unary):
        return Unary(expr.op, _shift_expr(expr.operand, start, factor, copy))
    if isinstance(expr, Compare):
        return Compare(
            expr.op,
            _shift_expr(expr.left, start, factor, copy),
            _shift_expr(expr.right, start, factor, copy),
        )
    raise UnrollError(f"cannot unroll expression {expr!r}")
