"""A small FORTRAN-DO-loop language.

The paper's compiler modulo schedules FORTRAN77 DO loops whose bodies
are branch-free after if-conversion.  This module gives the same class
of programs a programmatic surface: innermost counted loops over 1-D
arrays with affine subscripts (``a(s*i + k)``), scalar recurrences,
conditionals (if-converted by the compiler), and indirect gathers and
scatters (which receive conservative memory dependences).

Example — the paper's Figure 1::

    loop = DoLoop(
        name="sample",
        start=2,
        trip=100,
        body=[
            Assign(ArrayRef("x"), ArrayRef("x", -1) + ArrayRef("y", -2)),
            Assign(ArrayRef("y"), ArrayRef("y", -1) + ArrayRef("x", -2)),
        ],
        arrays={"x": 102, "y": 102},
    )

``start`` plays the role of the FORTRAN lower bound: iteration k
accesses element ``stride * (start + k) + offset``, so a big enough
``start`` keeps every subscript in bounds (exactly like ``do i = 3, n``
in the paper's sample).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union


class Expr:
    """Base class for expressions; supports operator overloading."""

    def __add__(self, other):
        return BinOp("+", self, _wrap(other))

    def __radd__(self, other):
        return BinOp("+", _wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, _wrap(other))

    def __rsub__(self, other):
        return BinOp("-", _wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, _wrap(other))

    def __rmul__(self, other):
        return BinOp("*", _wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, _wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", _wrap(other), self)

    def __neg__(self):
        return Unary("neg", self)

    def __lt__(self, other):
        return Compare("<", self, _wrap(other))

    def __le__(self, other):
        return Compare("<=", self, _wrap(other))

    def __gt__(self, other):
        return Compare(">", self, _wrap(other))

    def __ge__(self, other):
        return Compare(">=", self, _wrap(other))


def _wrap(operand) -> "Expr":
    if isinstance(operand, Expr):
        return operand
    if isinstance(operand, (int, float)):
        return Const(float(operand))
    raise TypeError(f"cannot use {operand!r} in a loop expression")


@dataclasses.dataclass(frozen=True)
class Const(Expr):
    """A floating-point literal."""

    value: float


@dataclasses.dataclass(frozen=True)
class Scalar(Expr):
    """A scalar variable.  Loop-invariant unless assigned in the body."""

    name: str


@dataclasses.dataclass(frozen=True)
class Index(Expr):
    """The loop index ``i`` (an integer induction variable)."""


@dataclasses.dataclass(frozen=True)
class ArrayRef(Expr):
    """An affine array reference ``name(stride * i + offset)``."""

    array: str
    offset: int = 0
    stride: int = 1


@dataclasses.dataclass(frozen=True)
class Gather(Expr):
    """An indirect load ``name(index_expr)`` (conservative mem deps)."""

    array: str
    index: Expr


@dataclasses.dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic: op in {'+', '-', '*', '/', 'min', 'max'}."""

    op: str
    left: Expr
    right: Expr


@dataclasses.dataclass(frozen=True)
class Unary(Expr):
    """Unary: op in {'neg', 'abs', 'sqrt'}."""

    op: str
    operand: Expr


@dataclasses.dataclass(frozen=True)
class Compare(Expr):
    """Comparison producing a predicate: op in {'<','<=','>','>=','==','!='}."""

    op: str
    left: Expr
    right: Expr


class Stmt:
    """Base class for statements."""


@dataclasses.dataclass(frozen=True)
class Assign(Stmt):
    """``target = expr`` where target is a Scalar, ArrayRef or Scatter."""

    target: Union[Scalar, ArrayRef, "Scatter"]
    expr: Expr


@dataclasses.dataclass(frozen=True)
class Scatter:
    """An indirect store target ``name(index_expr)``."""

    array: str
    index: Expr


@dataclasses.dataclass(frozen=True)
class If(Stmt):
    """A structured conditional (if-converted to predicated code)."""

    cond: Compare
    then: Sequence[Stmt]
    orelse: Sequence[Stmt] = ()


@dataclasses.dataclass(frozen=True)
class ExitIf(Stmt):
    """An early exit: leave the loop when the condition holds.

    The paper's §6 notes such loops can be modulo scheduled (citing
    Tirumalai et al.) though its experiments did not use the feature.
    The compiler reproduces the predicated schema: a loop-carried "live"
    predicate gates every later side effect, so iterations issued
    speculatively after the exit condition fires are squashed.
    """

    cond: Compare


@dataclasses.dataclass
class DoLoop:
    """A complete DO loop: body plus its data environment.

    Attributes:
        name: Loop identifier (used in reports).
        body: Statement list.
        arrays: array name -> size in elements (contents are seeded by
            the workload / simulator).
        scalars: scalar name -> initial value.  Scalars assigned in the
            body become loop-carried recurrences; the rest are
            invariants.
        start: FORTRAN-style lower bound; iteration k touches element
            ``stride * (start + k) + offset``.
        trip: Iteration count used by the simulators.
        live_out: Scalars whose final values are read after the loop.
    """

    name: str
    body: List[Stmt]
    arrays: Dict[str, int] = dataclasses.field(default_factory=dict)
    scalars: Dict[str, float] = dataclasses.field(default_factory=dict)
    start: int = 2
    trip: int = 20
    live_out: List[str] = dataclasses.field(default_factory=list)

    def max_element(self, array: str) -> int:
        """Largest element index the loop can touch in ``array`` through
        affine references (used to size simulation arrays)."""
        worst = 0
        for ref in _walk_refs(self.body):
            if isinstance(ref, ArrayRef) and ref.array == array:
                worst = max(worst, ref.stride * (self.start + self.trip) + ref.offset)
        return worst


def _walk_refs(stmts: Sequence[Stmt]):
    for stmt in stmts:
        if isinstance(stmt, Assign):
            yield from _walk_expr_refs(stmt.expr)
            if isinstance(stmt.target, ArrayRef):
                yield stmt.target
            elif isinstance(stmt.target, Scatter):
                yield from _walk_expr_refs(stmt.target.index)
        elif isinstance(stmt, If):
            yield from _walk_expr_refs(stmt.cond)
            yield from _walk_refs(stmt.then)
            yield from _walk_refs(stmt.orelse)
        elif isinstance(stmt, ExitIf):
            yield from _walk_expr_refs(stmt.cond)


def _walk_expr_refs(expr: Expr):
    if isinstance(expr, (ArrayRef,)):
        yield expr
    elif isinstance(expr, Gather):
        yield expr
        yield from _walk_expr_refs(expr.index)
    elif isinstance(expr, BinOp):
        yield from _walk_expr_refs(expr.left)
        yield from _walk_expr_refs(expr.right)
    elif isinstance(expr, Unary):
        yield from _walk_expr_refs(expr.operand)
    elif isinstance(expr, Compare):
        yield from _walk_expr_refs(expr.left)
        yield from _walk_expr_refs(expr.right)
