"""A textual surface syntax for DO-loop programs.

Lets loops be written as plain text (files or strings) instead of
Python AST constructors — the adoption path for users coming from the
paper's FORTRAN world::

    loop sample
    array x 60
    array y 60
    scalar q 0.5
    scalar s 0.0
    liveout s
    do i = 2, 41
        x(i) = x(i-1) + q * y(i-2)
        if (y(i) > 1.0) then
            s = s + x(i)
        end if
    end do

Grammar (informal):

* header: ``loop NAME``, then any number of ``array NAME SIZE``,
  ``scalar NAME VALUE``, ``liveout NAME [NAME...]`` lines;
* ``do i = START, END`` ... ``end do`` brackets the body
  (trip = END - START + 1);
* statements: ``lhs = expr`` and
  ``if (cond) then ... [else ...] end if``;
* expressions: ``+ - * /`` with usual precedence, parentheses, unary
  minus, calls ``sqrt(e) abs(e) min(a,b) max(a,b)``, numbers, scalar
  names, the loop index ``i``, and subscripts ``name(affine-of-i)``.
  A subscript that is affine in ``i`` (``x(i)``, ``x(i-2)``,
  ``x(2*i+1)``) is an affine reference; any other subscript
  (``x(ix(i))``, ``x(i*i)``) becomes an indirect gather/scatter.
* comments run from ``!`` or ``#`` to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    DoLoop,
    ExitIf,
    Expr,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Stmt,
    Unary,
)


class ParseError(ValueError):
    """Syntax or semantic error in loop-language source."""

    def __init__(self, message: str, line: Optional[int] = None):
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)
        self.line = line


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*|\.\d+|\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|==|!=|[-+*/(),<>=]))"
)


def _tokenize(text: str, line: int) -> List[Tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip():
                raise ParseError(f"unexpected character {text[position]!r}", line)
            break
        position = match.end()
        for kind in ("number", "name", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _ExprParser:
    """Recursive-descent expression parser over one statement's tokens."""

    def __init__(self, tokens: List[Tuple[str, str]], line: int, index_name: str):
        self.tokens = tokens
        self.position = 0
        self.line = line
        self.index_name = index_name

    # -- token helpers --------------------------------------------------
    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression", self.line)
        self.position += 1
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.position += 1
            return True
        return False

    def expect(self, value: str) -> None:
        if not self.accept(value):
            found = self.peek()[1] if self.peek() else "end of line"
            raise ParseError(f"expected {value!r}, found {found!r}", self.line)

    def at_end(self) -> bool:
        return self.position >= len(self.tokens)

    # -- grammar --------------------------------------------------------
    def parse_compare(self) -> Expr:
        left = self.parse_sum()
        token = self.peek()
        if token is not None and token[1] in ("<", "<=", ">", ">=", "==", "!="):
            operator = self.next()[1]
            right = self.parse_sum()
            return Compare(operator, left, right)
        return left

    def parse_sum(self) -> Expr:
        expr = self.parse_term()
        while True:
            if self.accept("+"):
                expr = BinOp("+", expr, self.parse_term())
            elif self.accept("-"):
                expr = BinOp("-", expr, self.parse_term())
            else:
                return expr

    def parse_term(self) -> Expr:
        expr = self.parse_unary()
        while True:
            if self.accept("*"):
                expr = BinOp("*", expr, self.parse_unary())
            elif self.accept("/"):
                expr = BinOp("/", expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> Expr:
        if self.accept("-"):
            return Unary("neg", self.parse_unary())
        if self.accept("+"):
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        kind, value = self.next()
        if kind == "number":
            return Const(float(value))
        if kind == "op" and value == "(":
            inner = self.parse_compare()
            self.expect(")")
            return inner
        if kind != "name":
            raise ParseError(f"unexpected token {value!r}", self.line)
        if value in ("sqrt", "abs") and self.accept("("):
            operand = self.parse_compare()
            self.expect(")")
            return Unary(value, operand)
        if value in ("min", "max") and self.accept("("):
            left = self.parse_compare()
            self.expect(",")
            right = self.parse_compare()
            self.expect(")")
            return BinOp(value, left, right)
        if value == self.index_name and not (self.peek() and self.peek()[1] == "("):
            return Index()
        if self.accept("("):
            subscript = self.parse_compare()
            self.expect(")")
            affine = _as_affine(subscript)
            if affine is not None:
                stride, offset = affine
                return ArrayRef(value, offset=offset, stride=stride)
            return Gather(value, subscript)
        return Scalar(value)


def _as_affine(expr: Expr) -> Optional[Tuple[int, int]]:
    """Recognize ``s*i + k`` shapes; returns (stride, offset) or None."""

    def affine(node: Expr) -> Optional[Tuple[int, int]]:
        if isinstance(node, Index):
            return (1, 0)
        if isinstance(node, Const):
            if float(node.value).is_integer():
                return (0, int(node.value))
            return None
        if isinstance(node, Unary) and node.op == "neg":
            inner = affine(node.operand)
            if inner is None:
                return None
            return (-inner[0], -inner[1])
        if isinstance(node, BinOp):
            left, right = affine(node.left), affine(node.right)
            if left is None or right is None:
                return None
            if node.op == "+":
                return (left[0] + right[0], left[1] + right[1])
            if node.op == "-":
                return (left[0] - right[0], left[1] - right[1])
            if node.op == "*":
                if left[0] == 0:
                    return (left[1] * right[0], left[1] * right[1])
                if right[0] == 0:
                    return (left[0] * right[1], left[1] * right[1])
                return None
        return None

    result = affine(expr)
    if result is None:
        return None
    stride, offset = result
    if stride < 1:
        return None  # negative/zero strides fall back to indirect access
    return (stride, offset)


def parse_loop(source: str) -> DoLoop:
    """Parse loop-language source into a DoLoop program."""
    raw_lines = source.splitlines()
    lines: List[Tuple[int, str]] = []
    for number, raw in enumerate(raw_lines, start=1):
        stripped = re.split(r"[!#]", raw, maxsplit=1)[0].strip()
        if stripped:
            lines.append((number, stripped))
    if not lines:
        raise ParseError("empty program")

    name = "loop"
    arrays = {}
    scalars = {}
    live_out: List[str] = []
    position = 0

    while position < len(lines):
        number, text = lines[position]
        lowered = text.lower()
        if lowered.startswith("loop "):
            name = text.split(None, 1)[1].strip()
        elif lowered.startswith("array "):
            parts = text.split()
            if len(parts) != 3:
                raise ParseError("expected: array NAME SIZE", number)
            arrays[parts[1]] = int(parts[2])
        elif lowered.startswith("scalar "):
            parts = text.split()
            if len(parts) != 3:
                raise ParseError("expected: scalar NAME VALUE", number)
            scalars[parts[1]] = float(parts[2])
        elif lowered.startswith("liveout"):
            live_out.extend(text.split()[1:])
        elif lowered.startswith("do "):
            break
        else:
            raise ParseError(f"unexpected declaration {text!r}", number)
        position += 1

    if position >= len(lines):
        raise ParseError("missing 'do' header")
    number, header = lines[position]
    match = re.match(
        r"do\s+([A-Za-z_][A-Za-z_0-9]*)\s*=\s*(-?\d+)\s*,\s*(-?\d+)$", header
    )
    if match is None:
        raise ParseError("expected: do i = START, END", number)
    index_name, start_text, end_text = match.groups()
    start, end = int(start_text), int(end_text)
    if end < start:
        raise ParseError("loop upper bound below lower bound", number)
    position += 1

    body, position = _parse_statements(lines, position, index_name, terminators=("end do",))
    if position >= len(lines) or lines[position][1].lower() != "end do":
        raise ParseError("missing 'end do'")
    position += 1
    if position != len(lines):
        raise ParseError("trailing text after 'end do'", lines[position][0])

    return DoLoop(
        name=name,
        body=body,
        arrays=arrays,
        scalars=scalars,
        start=start,
        trip=end - start + 1,
        live_out=live_out,
    )


def _parse_statements(
    lines: List[Tuple[int, str]],
    position: int,
    index_name: str,
    terminators: Tuple[str, ...],
) -> Tuple[List[Stmt], int]:
    statements: List[Stmt] = []
    while position < len(lines):
        number, text = lines[position]
        lowered = text.lower()
        if lowered in terminators or lowered in ("else", "end if"):
            return statements, position
        exit_match = re.match(r"if\s*\((.*)\)\s*exit$", text, flags=re.IGNORECASE)
        if exit_match is not None:
            parser = _ExprParser(_tokenize(exit_match.group(1), number), number, index_name)
            condition = parser.parse_compare()
            if not parser.at_end() or not isinstance(condition, Compare):
                raise ParseError("exit condition must be a comparison", number)
            statements.append(ExitIf(condition))
            position += 1
            continue
        if lowered.startswith("if"):
            statement, position = _parse_if(lines, position, index_name)
            statements.append(statement)
            continue
        statements.append(_parse_assign(number, text, index_name))
        position += 1
    return statements, position


def _parse_if(
    lines: List[Tuple[int, str]], position: int, index_name: str
) -> Tuple[If, int]:
    number, text = lines[position]
    match = re.match(r"if\s*\((.*)\)\s*then$", text, flags=re.IGNORECASE)
    if match is None:
        raise ParseError("expected: if (condition) then", number)
    parser = _ExprParser(_tokenize(match.group(1), number), number, index_name)
    condition = parser.parse_compare()
    if not parser.at_end():
        raise ParseError("trailing tokens in condition", number)
    if not isinstance(condition, Compare):
        raise ParseError("if condition must be a comparison", number)
    position += 1
    then_body, position = _parse_statements(lines, position, index_name, ("end if",))
    else_body: List[Stmt] = []
    if position < len(lines) and lines[position][1].lower() == "else":
        position += 1
        else_body, position = _parse_statements(lines, position, index_name, ("end if",))
    if position >= len(lines) or lines[position][1].lower() != "end if":
        raise ParseError("missing 'end if'", number)
    position += 1
    return If(condition, then=then_body, orelse=else_body), position


def _parse_assign(number: int, text: str, index_name: str) -> Assign:
    tokens = _tokenize(text, number)
    # Find the top-level '=' (not part of <=, >=, ==, !=, handled by the
    # tokenizer as single tokens already).
    depth = 0
    split_at = None
    for token_index, (kind, value) in enumerate(tokens):
        if value == "(":
            depth += 1
        elif value == ")":
            depth -= 1
        elif value == "=" and depth == 0:
            split_at = token_index
            break
    if split_at is None:
        raise ParseError("expected an assignment", number)
    lhs_parser = _ExprParser(tokens[:split_at], number, index_name)
    target_expr = lhs_parser.parse_primary()
    if not lhs_parser.at_end():
        raise ParseError("malformed assignment target", number)
    rhs_parser = _ExprParser(tokens[split_at + 1 :], number, index_name)
    expr = rhs_parser.parse_compare()
    if not rhs_parser.at_end():
        raise ParseError("trailing tokens after expression", number)

    if isinstance(target_expr, Scalar):
        return Assign(target_expr, expr)
    if isinstance(target_expr, ArrayRef):
        return Assign(target_expr, expr)
    if isinstance(target_expr, Gather):
        return Assign(Scatter(target_expr.array, target_expr.index), expr)
    raise ParseError(f"cannot assign to {target_expr!r}", number)
