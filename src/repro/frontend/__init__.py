"""Front end: the DO-loop DSL and its compiler to schedulable loop IR."""

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    DoLoop,
    ExitIf,
    Expr,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Stmt,
    Unary,
)
from repro.frontend.compiler import CompileError, LoopCompiler, compile_loop
from repro.frontend.parser import ParseError, parse_loop
from repro.frontend.printer import render_expr, render_loop, save_corpus
from repro.frontend.transforms import UnrollError, unroll

__all__ = [
    "ArrayRef",
    "Assign",
    "BinOp",
    "Compare",
    "Const",
    "DoLoop",
    "ExitIf",
    "Expr",
    "Gather",
    "If",
    "Index",
    "Scalar",
    "Scatter",
    "Stmt",
    "Unary",
    "CompileError",
    "LoopCompiler",
    "compile_loop",
    "ParseError",
    "parse_loop",
    "render_expr",
    "render_loop",
    "save_corpus",
    "UnrollError",
    "unroll",
]
