"""Compile a :class:`~repro.frontend.ast.DoLoop` to a schedulable loop body.

This reproduces the relevant parts of the Cydrome front end the paper
relies on:

* **If-conversion** (§2.2): conditionals become predicated code.
  Comparisons define ICR predicates; operations in a branch are guarded
  by the branch predicate; scalar assignments merge through ``select``
  operations (the compiler "allocates registers as if all predicates may
  be true", so both arms contribute register pressure, as in the paper).
* **Address induction variables**: each (array, stride) access class
  walks one rotating address register, bumped by an ``addra`` with a
  distance-1 self-recurrence; the per-reference displacement folds into
  the memory operation.  Addresses are modeled in element units.
* **Dependence analysis with exact omegas** (§3.1): affine references to
  the same array yield dependences labeled with their exact iteration
  distance; incommensurable or indirect references get conservative
  ordering arcs.
* **Load/store elimination** (§2.3): a load whose value was stored a
  known number of iterations earlier becomes a register flow dependence
  with that omega — the optimization that creates the long rotating
  lifetimes of Figure 3.  Redundant loads of earlier-read elements are
  likewise replaced by cross-iteration register reuse.
* **Local CSE and dead-code elimination**, SSA construction, and the
  ``brtop`` loop-closing branch.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    DoLoop,
    ExitIf,
    Expr,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Stmt,
    Unary,
)
from repro.ir.loop import LoopBody
from repro.ir.operations import Opcode, Operation
from repro.ir.types import DType, ValueKind
from repro.ir.values import AddressOrigin, ArrayElementOrigin, Operand, ScalarOrigin, Value

_BINOP_FLOAT = {
    "+": Opcode.ADD_F,
    "-": Opcode.SUB_F,
    "*": Opcode.MUL_F,
    "/": Opcode.DIV_F,
    "min": Opcode.MIN_F,
    "max": Opcode.MAX_F,
}
_BINOP_INT = {"+": Opcode.ADD_I, "-": Opcode.SUB_I, "*": Opcode.MUL_I, "/": Opcode.DIV_I}
_UNARY = {"neg": Opcode.NEG_F, "abs": Opcode.ABS_F, "sqrt": Opcode.SQRT_F}
_COMPARE = {
    "<": Opcode.CMP_LT,
    "<=": Opcode.CMP_LE,
    ">": Opcode.CMP_GT,
    ">=": Opcode.CMP_GE,
    "==": Opcode.CMP_EQ,
    "!=": Opcode.CMP_NE,
}


@dataclasses.dataclass
class _MemAccess:
    """One generated memory operation, recorded for dependence analysis."""

    op: Operation
    array: str
    is_store: bool
    stride: Optional[int]  # None for gathers/scatters
    abs_offset: Optional[int]
    order: int


class CompileError(ValueError):
    """The DoLoop program is malformed (e.g. an undeclared scalar)."""


def _intish(operand: Operand) -> bool:
    """True if the operand can participate in integer/address arithmetic."""
    if operand.value.dtype in (DType.INT, DType.ADDR):
        return True
    return bool(
        operand.value.is_constant
        and operand.value.literal is not None
        and float(operand.value.literal).is_integer()
    )


class LoopCompiler:
    """Single-use compiler from one DoLoop to one LoopBody."""

    def __init__(
        self,
        program: DoLoop,
        load_store_elimination: bool = True,
        load_reuse: bool = True,
    ):
        self.program = program
        self.enable_lse = load_store_elimination
        self.enable_reuse = load_reuse
        self.loop = LoopBody(program.name)
        self._assigned = _assigned_scalars(program.body)
        self._env: Dict[str, Operand] = {}
        self._carries: Dict[str, Value] = {}
        self._aliases: Dict[int, Operand] = {}  # placeholder vid -> real operand
        self._cse: Dict[tuple, Value] = {}
        self._address_ivs: Dict[Tuple[str, int], Operand] = {}
        self._index_iv: Optional[Operand] = None
        self._mem_accesses: List[_MemAccess] = []
        self._fresh = 0
        # Load/store elimination bookkeeping (see _prescan_stores).
        self._store_placeholders: Dict[Tuple[str, int, int], Tuple[Value, int]] = {}
        self._reuse_leaders: Dict[Tuple[str, int, int], Tuple[Value, int]] = {}
        self._stored_arrays: set = set()
        self._gathered_arrays: set = set()
        # Early-exit support: a loop-carried "live" predicate gates every
        # side effect once any prior iteration's exit condition fired.
        self._has_exit = _has_early_exit(program.body)
        self._live: Optional[Operand] = None
        self._live_carry: Optional[Value] = None

    # ------------------------------------------------------------------
    def compile(self) -> LoopBody:
        program = self.program
        self._prescan_memory()
        for name in sorted(self._assigned):
            if name not in program.scalars:
                raise CompileError(
                    f"scalar {name!r} is assigned in the loop but has no initial value"
                )
            carry = self.loop.new_value(f"{name}.carry", DType.FLOAT)
            self._carries[name] = carry
            self._env[name] = Operand(carry, back=1)
        if self._has_exit:
            self._live_carry = self.loop.new_value("live.carry", DType.PRED)
            self._live = Operand(self._live_carry, back=1)
        self._gen_statements(program.body, guard=None)
        self._finish_scalars()
        self._finish_live()
        self._resolve_aliases()
        self._add_memory_deps()
        self.loop.eliminate_dead_code()
        self.loop.add_op(Opcode.BRTOP)
        self.loop.meta.update(
            {
                "start": program.start,
                "trip": program.trip,
                "arrays": dict(program.arrays),
                # The live bit enters the loop true; simulators read its
                # initial binding through the scalar environment.
                "scalars": (
                    {**program.scalars, "__live": 1.0}
                    if self._has_exit
                    else dict(program.scalars)
                ),
                "live_out": list(program.live_out),
                "has_conditional": _has_conditional(program.body),
                "has_early_exit": self._has_exit,
                "n_basic_blocks": _basic_blocks(program.body),
            }
        )
        return self.loop.finalize()

    # ------------------------------------------------------------------
    # Pre-scan: which loads can be eliminated or reused
    # ------------------------------------------------------------------
    def _prescan_memory(self) -> None:
        stores: List[Tuple[str, Optional[int], Optional[int], bool, Expr]] = []
        loads: List[Tuple[str, Optional[int], Optional[int], bool]] = []
        scalar_exprs: List[Expr] = []

        def scan(stmts: Sequence[Stmt], guarded: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, Assign):
                    scan_expr(stmt.expr, guarded)
                    target = stmt.target
                    if isinstance(target, Scalar):
                        scalar_exprs.append(stmt.expr)
                    if isinstance(target, ArrayRef):
                        abs_offset = target.stride * self.program.start + target.offset
                        stores.append((target.array, target.stride, abs_offset, guarded, stmt.expr))
                        self._stored_arrays.add(target.array)
                    elif isinstance(target, Scatter):
                        scan_expr(target.index, guarded)
                        stores.append((target.array, None, None, guarded, stmt.expr))
                        self._stored_arrays.add(target.array)
                        self._gathered_arrays.add(target.array)
                elif isinstance(stmt, If):
                    scan_expr(stmt.cond, guarded)
                    scan(stmt.then, True)
                    scan(stmt.orelse, True)
                elif isinstance(stmt, ExitIf):
                    scan_expr(stmt.cond, guarded)

        def scan_expr(expr: Expr, guarded: bool) -> None:
            if isinstance(expr, ArrayRef):
                abs_offset = expr.stride * self.program.start + expr.offset
                loads.append((expr.array, expr.stride, abs_offset, guarded))
            elif isinstance(expr, Gather):
                self._gathered_arrays.add(expr.array)
                scan_expr(expr.index, guarded)
            elif isinstance(expr, (BinOp, Compare)):
                scan_expr(expr.left, guarded)
                scan_expr(expr.right, guarded)
            elif isinstance(expr, Unary):
                scan_expr(expr.operand, guarded)

        scan(self.program.body, False)

        if self.enable_lse:
            # An access class is (array, stride, offset mod stride):
            # classes of the same stride but different residues touch
            # provably disjoint elements.  A class is eliminable when it
            # has exactly one store, that store is unguarded, it computes
            # a compound (fresh) value not stored or scalar-assigned
            # elsewhere, every store to the array shares its stride, and
            # the array sees no indirect accesses.
            by_class: Dict[Tuple[str, int, int], List[Tuple[int, bool, Expr]]] = {}
            strides_by_array: Dict[str, set] = {}
            for array, stride, abs_offset, guarded, expr in stores:
                strides_by_array.setdefault(array, set()).add(stride)
                if stride is None:
                    continue
                key = (array, stride, abs_offset % stride)
                by_class.setdefault(key, []).append((abs_offset, guarded, expr))
            seen_exprs: List[Expr] = []
            for array, stride, abs_offset, guarded, expr in stores:
                if stride is None:
                    continue
                key = (array, stride, abs_offset % stride)
                eligible = (
                    len(by_class[key]) == 1
                    and not guarded
                    and isinstance(expr, (BinOp, Unary))
                    and expr not in seen_exprs
                    and expr not in scalar_exprs  # its value would need two origins
                    and array not in self._gathered_arrays
                    and strides_by_array[array] == {stride}
                )
                seen_exprs.append(expr)
                if eligible:
                    placeholder = self.loop.new_value(
                        f"{array}.stored", DType.FLOAT,
                        origin=ArrayElementOrigin(array, stride, abs_offset),
                    )
                    self._store_placeholders[key] = (placeholder, abs_offset)

        if self.enable_reuse:
            # Loads of array classes with no stores at all can reuse the
            # highest-offset unguarded load of the class across iterations.
            candidates: Dict[Tuple[str, int, int], List[int]] = {}
            for array, stride, abs_offset, guarded in loads:
                if (
                    stride is None
                    or guarded
                    or array in self._stored_arrays
                    or array in self._gathered_arrays
                ):
                    continue
                candidates.setdefault((array, stride, abs_offset % stride), []).append(
                    abs_offset
                )
            for (array, stride, residue), offsets in candidates.items():
                if len(set(offsets)) < 2:
                    continue
                leader_offset = max(offsets)
                placeholder = self.loop.new_value(
                    f"{array}.lead", DType.FLOAT,
                    origin=ArrayElementOrigin(array, stride, leader_offset),
                )
                self._reuse_leaders[(array, stride, residue)] = (placeholder, leader_offset)

    # ------------------------------------------------------------------
    # Expression generation
    # ------------------------------------------------------------------
    def _fresh_name(self, base: str) -> str:
        self._fresh += 1
        return f"{base}{self._fresh}"

    def _guard_key(self, guard: Optional[Operand]):
        return None if guard is None else (guard.value.vid, guard.back)

    def _emit(
        self,
        opcode: Opcode,
        operands: List[Operand],
        dtype: DType,
        guard: Optional[Operand],
        name: str = "t",
        **attrs,
    ) -> Operand:
        """Emit an op with local CSE; returns the result operand."""
        key = (
            opcode,
            tuple((o.value.vid, o.back) for o in operands),
            self._guard_key(guard),
            tuple(sorted(attrs.items())),
        )
        cached = self._cse.get(key)
        if cached is not None:
            return Operand(cached)
        dest = self.loop.new_value(self._fresh_name(name), dtype)
        self.loop.add_op(opcode, dest, operands, predicate=guard, **attrs)
        self._cse[key] = dest
        return Operand(dest)

    def _address_iv(self, array: str, stride: int) -> Operand:
        if stride < 1:
            raise CompileError(f"array strides must be positive, got {stride} on {array!r}")
        key = (array, stride)
        operand = self._address_ivs.get(key)
        if operand is None:
            base = stride * self.program.start
            value = self.loop.new_value(
                f"&{array}.{stride}", DType.ADDR,
                origin=AddressOrigin(array, stride, base),
            )
            step = self.loop.constant(stride, DType.ADDR)
            self.loop.add_op(Opcode.ADDR_ADD, value, [Operand(value, back=1), Operand(step)])
            operand = Operand(value)
            self._address_ivs[key] = operand
        return operand

    def _index_value(self) -> Operand:
        if self._index_iv is None:
            value = self.loop.new_value(
                "i", DType.INT, origin=AddressOrigin(None, 1, self.program.start)
            )
            one = self.loop.constant(1, DType.INT)
            self.loop.add_op(Opcode.ADD_I, value, [Operand(value, back=1), Operand(one)])
            self._index_iv = Operand(value)
        return self._index_iv

    def _record_access(self, op: Operation, array: str, is_store: bool,
                       stride: Optional[int], abs_offset: Optional[int]) -> None:
        self._mem_accesses.append(
            _MemAccess(op, array, is_store, stride, abs_offset, len(self._mem_accesses))
        )
        if is_store:
            self._invalidate_cached_loads(array)

    def _invalidate_cached_loads(self, array: str) -> None:
        """Drop load-CSE entries for ``array``: a load textually after a
        store to the array must re-read memory, not reuse an older load."""
        stale = [
            key
            for key in self._cse
            if key and key[0] is Opcode.LOAD and len(key) >= 4 and key[3] == array
        ]
        for key in stale:
            del self._cse[key]

    def _gen_load(self, ref: ArrayRef, guard: Optional[Operand]) -> Operand:
        abs_offset = ref.stride * self.program.start + ref.offset
        class_key = (ref.array, ref.stride, abs_offset % ref.stride)

        # Store -> load elimination: the value was stored delta iterations ago.
        placeholder_info = self._store_placeholders.get(class_key)
        if placeholder_info is not None and guard is None:
            placeholder, store_abs = placeholder_info
            delta, remainder = divmod(store_abs - abs_offset, ref.stride)
            if remainder == 0 and delta >= 1:
                return Operand(placeholder, back=delta)
            if remainder == 0 and delta == 0 and placeholder.vid in self._aliases:
                # Same-iteration forwarding: the store already executed
                # textually, so the load would read exactly the stored
                # value (important for unrolled recurrences, whose
                # cross-copy flow is same-iteration).
                return Operand(placeholder, back=0)
            # delta == 0 with the store textually later is an
            # anti-dependence: the load reads the *old* value and stays.

        # Load -> load reuse: this element was loaded delta iterations ago.
        leader_info = self._reuse_leaders.get(class_key)
        if leader_info is not None and guard is None:
            leader, leader_abs = leader_info
            delta, remainder = divmod(leader_abs - abs_offset, ref.stride)
            if remainder == 0 and delta >= 1:
                return Operand(leader, back=delta)
            if delta == 0 and remainder == 0:
                # This *is* the leader reference: emit the real load once.
                if leader.defop is None:
                    iv = self._address_iv(ref.array, ref.stride)
                    op = self.loop.add_op(
                        Opcode.LOAD, leader, [iv],
                        array=ref.array, stride=ref.stride,
                        disp=ref.offset, abs=abs_offset,
                    )
                    self._record_access(op, ref.array, False, ref.stride, abs_offset)
                return Operand(leader)

        iv = self._address_iv(ref.array, ref.stride)
        key = (Opcode.LOAD, (iv.value.vid, iv.back), self._guard_key(guard),
               ref.array, ref.stride, ref.offset)
        cached = self._cse.get(key)
        if cached is not None:
            return Operand(cached)
        dest = self.loop.new_value(
            self._fresh_name(f"{ref.array}_"), DType.FLOAT,
            origin=ArrayElementOrigin(ref.array, ref.stride, abs_offset),
        )
        op = self.loop.add_op(
            Opcode.LOAD, dest, [iv], predicate=guard,
            array=ref.array, stride=ref.stride, disp=ref.offset, abs=abs_offset,
        )
        self._record_access(op, ref.array, False, ref.stride, abs_offset)
        self._cse[key] = dest
        return Operand(dest)

    def _gen_gather_address(self, array: str, index: Expr, guard: Optional[Operand]) -> Operand:
        idx = self._gen_expr(index, guard)
        elsize = self.loop.constant(1, DType.ADDR)
        scaled = self._emit(Opcode.ADDR_MUL, [idx, Operand(elsize)], DType.ADDR, guard, name="ga")
        base = self.loop.invariant(f"&{array}", DType.ADDR)
        return self._emit(
            Opcode.ADDR_ADD, [Operand(base), scaled], DType.ADDR, guard, name="ga"
        )

    def _gen_expr(self, expr: Expr, guard: Optional[Operand]) -> Operand:
        if isinstance(expr, Const):
            return Operand(self.loop.constant(expr.value, DType.FLOAT))
        if isinstance(expr, Scalar):
            if expr.name in self._assigned:
                return self._env[expr.name]
            if expr.name not in self.program.scalars:
                raise CompileError(f"scalar {expr.name!r} has no initial value")
            return Operand(self.loop.invariant(expr.name, DType.FLOAT))
        if isinstance(expr, Index):
            return self._index_value()
        if isinstance(expr, ArrayRef):
            return self._gen_load(expr, guard)
        if isinstance(expr, Gather):
            address = self._gen_gather_address(expr.array, expr.index, guard)
            dest = self.loop.new_value(self._fresh_name(f"{expr.array}_g"), DType.FLOAT)
            op = self.loop.add_op(
                Opcode.LOAD, dest, [address], predicate=guard,
                array=expr.array, gather=True,
            )
            self._record_access(op, expr.array, False, None, None)
            return Operand(dest)
        if isinstance(expr, BinOp):
            left = self._gen_expr(expr.left, guard)
            right = self._gen_expr(expr.right, guard)
            int_typed = (
                _intish(left)
                and _intish(right)
                and (
                    left.value.dtype in (DType.INT, DType.ADDR)
                    or right.value.dtype in (DType.INT, DType.ADDR)
                )
            )
            table = _BINOP_INT if int_typed else _BINOP_FLOAT
            opcode = table.get(expr.op) or _BINOP_FLOAT[expr.op]
            dtype = DType.INT if int_typed else DType.FLOAT
            return self._emit(opcode, [left, right], dtype, guard)
        if isinstance(expr, Unary):
            operand = self._gen_expr(expr.operand, guard)
            return self._emit(_UNARY[expr.op], [operand], DType.FLOAT, guard)
        if isinstance(expr, Compare):
            left = self._gen_expr(expr.left, guard)
            right = self._gen_expr(expr.right, guard)
            return self._emit(_COMPARE[expr.op], [left, right], DType.PRED, guard, name="p")
        raise CompileError(f"cannot compile expression {expr!r}")

    # ------------------------------------------------------------------
    # Statement generation (with if-conversion)
    # ------------------------------------------------------------------
    def _gen_statements(self, stmts: Sequence[Stmt], guard: Optional[Operand]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                self._gen_assign(stmt, guard)
            elif isinstance(stmt, If):
                self._gen_if(stmt, guard)
            elif isinstance(stmt, ExitIf):
                self._gen_exit(stmt, guard)
            else:
                raise CompileError(f"cannot compile statement {stmt!r}")

    def _effective_guard(self, guard: Optional[Operand]) -> Optional[Operand]:
        """Fold the early-exit live predicate into a side effect's guard.

        Computation stays speculative (the paper's schema executes
        post-exit iterations and squashes them); only stores and scalar
        merges consult the live bit.
        """
        if self._live is None:
            return guard
        if guard is None:
            return self._live
        return self._emit(Opcode.AND_B, [self._live, guard], DType.PRED, None, name="pl")

    def _gen_exit(self, stmt: ExitIf, guard: Optional[Operand]) -> None:
        condition = self._gen_expr(stmt.cond, guard)
        if guard is not None:
            condition = self._emit(
                Opcode.AND_B, [guard, condition], DType.PRED, None, name="px"
            )
        negated = self._emit(Opcode.NOT_B, [condition], DType.PRED, None, name="nx")
        self._live = self._emit(
            Opcode.AND_B, [self._live, negated], DType.PRED, None, name="lv"
        )

    def _gen_assign(self, stmt: Assign, guard: Optional[Operand]) -> None:
        target = stmt.target
        value = self._gen_expr(stmt.expr, guard)
        effective = self._effective_guard(guard)
        if isinstance(target, Scalar):
            if target.name not in self._assigned:
                raise CompileError(f"scalar {target.name!r} assigned but not tracked")
            if effective is not None:
                value = self._emit(
                    Opcode.SELECT, [effective, value, self._env[target.name]],
                    DType.FLOAT, None, name=f"{target.name}_m",
                )
            self._env[target.name] = value
            return
        if isinstance(target, ArrayRef):
            iv = self._address_iv(target.array, target.stride)
            abs_offset = target.stride * self.program.start + target.offset
            op = self.loop.add_op(
                Opcode.STORE, None, [iv, value], predicate=effective,
                array=target.array, stride=target.stride,
                disp=target.offset, abs=abs_offset,
            )
            self._record_access(op, target.array, True, target.stride, abs_offset)
            placeholder_info = self._store_placeholders.get(
                (target.array, target.stride, abs_offset % target.stride)
            )
            if placeholder_info is not None and guard is None:
                placeholder, store_abs = placeholder_info
                if store_abs == abs_offset and placeholder.vid not in self._aliases:
                    self._aliases[placeholder.vid] = value
                    if value.back == 0 and value.value.origin is None:
                        value.value.origin = ArrayElementOrigin(
                            target.array, target.stride, abs_offset
                        )
            return
        if isinstance(target, Scatter):
            address = self._gen_gather_address(target.array, target.index, guard)
            op = self.loop.add_op(
                Opcode.STORE, None, [address, value], predicate=effective,
                array=target.array, gather=True,
            )
            self._record_access(op, target.array, True, None, None)
            return
        raise CompileError(f"cannot assign to {target!r}")

    def _gen_if(self, stmt: If, guard: Optional[Operand]) -> None:
        cond = self._gen_expr(stmt.cond, guard)
        negated = self._emit(Opcode.NOT_B, [cond], DType.PRED, guard, name="np")
        if guard is None:
            then_guard, else_guard = cond, negated
        else:
            then_guard = self._emit(Opcode.AND_B, [guard, cond], DType.PRED, None, name="p")
            else_guard = self._emit(Opcode.AND_B, [guard, negated], DType.PRED, None, name="p")
        snapshot = dict(self._env)
        self._gen_statements(stmt.then, then_guard)
        then_env = self._env
        self._env = dict(snapshot)
        self._gen_statements(stmt.orelse, else_guard)
        else_env = self._env
        merged = dict(snapshot)
        # Sorted so the join selects are emitted in a fixed order; bare
        # set iteration made op numbering (and hence every downstream
        # schedule) vary with PYTHONHASHSEED from process to process.
        for name in sorted(self._assigned):
            then_val = then_env.get(name, snapshot.get(name))
            else_val = else_env.get(name, snapshot.get(name))
            if then_val == else_val:
                if then_val is not None:
                    merged[name] = then_val
                continue
            # Assigned in both arms: join with one more select.  Each
            # arm's value already falls back to the pre-if value when its
            # own guard is false, so either pick is safe under !guard.
            merged[name] = self._emit(
                Opcode.SELECT, [cond, then_val, else_val], DType.FLOAT, None,
                name=f"{name}_j",
            )
        self._env = merged

    # ------------------------------------------------------------------
    # Post passes
    # ------------------------------------------------------------------
    def _finish_scalars(self) -> None:
        for name, carry in self._carries.items():
            final = self._env[name]
            self._aliases[carry.vid] = final
            if final.back == 0 and final.value.is_variant and final.value.origin is None:
                final.value.origin = ScalarOrigin(name)
            if name in self.program.live_out:
                self.loop.live_out[name] = final.value

    def _finish_live(self) -> None:
        if not self._has_exit:
            return
        final = self._live
        self._aliases[self._live_carry.vid] = final
        if final.back == 0 and final.value.is_variant and final.value.origin is None:
            final.value.origin = ScalarOrigin("__live")

    def _resolve_aliases(self) -> None:
        """Rewrite operands referencing placeholders to the real values.

        Alias chains (a carry resolving to a stored placeholder, say) are
        followed to a fixed point; the placeholder values themselves are
        then dropped from the loop.
        """

        def resolve(operand: Operand) -> Operand:
            back = operand.back
            value = operand.value
            seen = 0
            while value.vid in self._aliases and value.defop is None:
                replacement = self._aliases[value.vid]
                if not replacement.value.is_variant:
                    return Operand(replacement.value, 0)
                back += replacement.back
                value = replacement.value
                seen += 1
                if seen > len(self._aliases) + 1:
                    raise CompileError("circular load/store elimination aliasing")
            return Operand(value, back)

        for op in self.loop.ops:
            op.operands = [resolve(o) for o in op.operands]
            if op.predicate is not None:
                op.predicate = resolve(op.predicate)
        for name, value in list(self.loop.live_out.items()):
            resolved = resolve(Operand(value))
            self.loop.live_out[name] = resolved.value
        placeholder_vids = {
            vid for vid in self._aliases
            if self.loop.values[vid].defop is None
        }
        # Unresolved placeholders (an eliminable store that never executed
        # unguarded) would leave dangling uses; that cannot happen because
        # aliases are registered at the store site found by the pre-scan.
        self.loop.values = [v for v in self.loop.values if v.vid not in placeholder_vids]
        for vid, value in enumerate(self.loop.values):
            value.vid = vid

    def _add_memory_deps(self) -> None:
        accesses = self._mem_accesses
        for i, first in enumerate(accesses):
            for second in accesses[i + 1 :]:
                if first.array != second.array:
                    continue
                if not (first.is_store or second.is_store):
                    continue
                self._add_pair_dep(first, second)

    def _add_pair_dep(self, first: _MemAccess, second: _MemAccess) -> None:
        """Dependence arcs between two may-conflicting accesses, with
        ``first`` textually earlier."""
        if (
            first.stride is not None
            and second.stride == first.stride
            and first.abs_offset is not None
            and second.abs_offset is not None
        ):
            delta, remainder = divmod(first.abs_offset - second.abs_offset, first.stride)
            if remainder != 0:
                return  # provably disjoint elements
            if delta >= 0:
                self.loop.add_mem_dep(first.op, second.op, omega=delta)
            else:
                self.loop.add_mem_dep(second.op, first.op, omega=-delta)
            return
        # Incommensurate strides or indirect accesses: conservative
        # ordering in both directions (omega 0 forward, 1 backward
        # covers every possible distance).
        self.loop.add_mem_dep(first.op, second.op, omega=0)
        self.loop.add_mem_dep(second.op, first.op, omega=1)


def compile_loop(
    program: DoLoop,
    load_store_elimination: bool = True,
    load_reuse: bool = True,
) -> LoopBody:
    """Compile a DoLoop program into a finalized, schedulable LoopBody."""
    return LoopCompiler(
        program,
        load_store_elimination=load_store_elimination,
        load_reuse=load_reuse,
    ).compile()


# ----------------------------------------------------------------------
# Static program facts
# ----------------------------------------------------------------------
def _assigned_scalars(stmts: Sequence[Stmt]) -> set:
    names = set()
    for stmt in stmts:
        if isinstance(stmt, Assign) and isinstance(stmt.target, Scalar):
            names.add(stmt.target.name)
        elif isinstance(stmt, If):
            names |= _assigned_scalars(stmt.then)
            names |= _assigned_scalars(stmt.orelse)
    return names


def _has_early_exit(stmts: Sequence[Stmt]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, ExitIf):
            return True
        if isinstance(stmt, If) and (
            _has_early_exit(stmt.then) or _has_early_exit(stmt.orelse)
        ):
            return True
    return False


def _has_conditional(stmts: Sequence[Stmt]) -> bool:
    # Ifs only nest under Ifs, so a top-level scan is complete.
    return any(isinstance(stmt, If) for stmt in stmts)


def _basic_blocks(stmts: Sequence[Stmt]) -> int:
    """Basic-block count of the un-if-converted body (Table 2 metric)."""
    blocks = 1
    for stmt in stmts:
        if isinstance(stmt, If):
            blocks += _basic_blocks(stmt.then) + _basic_blocks(stmt.orelse) + 1
    return blocks
