"""Simulators: sequential reference semantics and pipelined executors."""

from repro.simulator.dataflow import SimulationError, run_pipelined
from repro.simulator.sequential import run_sequential
from repro.simulator.state import (
    MachineState,
    clamp_element,
    fdiv,
    fsqrt,
    initial_state,
    seeded_value,
)

__all__ = [
    "SimulationError",
    "run_pipelined",
    "run_sequential",
    "MachineState",
    "clamp_element",
    "fdiv",
    "fsqrt",
    "initial_state",
    "seeded_value",
]
