"""Shared machine state and arithmetic semantics for the simulators.

Both the sequential reference interpreter and the pipelined executors
use *exactly* these helpers, so a correctly scheduled loop produces
bit-identical results on both (same operations, same evaluation order
within an expression, same totalization of division/sqrt).
"""

from __future__ import annotations

import dataclasses
import math
import zlib
from typing import Dict, List

from repro.frontend.ast import DoLoop


@dataclasses.dataclass
class MachineState:
    """Memory image and scalar environment for one simulation run."""

    arrays: Dict[str, List[float]]
    scalars: Dict[str, float]

    def copy(self) -> "MachineState":
        return MachineState(
            arrays={name: list(cells) for name, cells in self.arrays.items()},
            scalars=dict(self.scalars),
        )


def seeded_value(array: str, index: int, seed: int = 0) -> float:
    """Deterministic pseudo-random array contents in [0.5, 1.5).

    Values stay near 1.0 so products/divisions neither explode nor
    vanish over a simulated loop, and never hit division by zero.
    """
    key = zlib.crc32(f"{array}:{index}:{seed}".encode())
    return 0.5 + (key % 10_000) / 10_000.0


def initial_state(program: DoLoop, seed: int = 0,
                  array_init: Dict[str, List[float]] = None) -> MachineState:
    """Build the pre-loop machine state for a DoLoop program.

    Arrays are sized to cover both the declared size and every element an
    affine reference can touch, then filled deterministically (or from
    ``array_init`` when given — needed e.g. for index arrays driving
    gathers).
    """
    arrays: Dict[str, List[float]] = {}
    for name, declared in program.arrays.items():
        size = max(int(declared), program.max_element(name) + 2)
        if array_init and name in array_init:
            given = array_init[name]
            cells = [float(given[i % len(given)]) for i in range(size)]
        else:
            cells = [seeded_value(name, i, seed) for i in range(size)]
        arrays[name] = cells
    return MachineState(arrays=arrays, scalars=dict(program.scalars))


# ----------------------------------------------------------------------
# Totalized arithmetic (identical in both simulators)
# ----------------------------------------------------------------------
def fdiv(numerator: float, denominator: float) -> float:
    """Division totalized at 0 (a squashed divide never traps)."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def fsqrt(operand: float) -> float:
    """Square root totalized over negatives via |x|."""
    return math.sqrt(abs(operand))


def clamp_element(cells: List[float], index: float) -> int:
    """Round and clamp an indirect index into the array bounds."""
    position = int(round(index))
    if position < 0:
        return 0
    if position >= len(cells):
        return len(cells) - 1
    return position
