"""Register-level VLIW simulator: executes kernel-only code.

This is the deepest validation layer: it runs the *generated kernel*
(one copy, II rows) against real rotating register files, modeling

* rotation: the file rotates once per kernel iteration, so a value
  written through specifier ``s`` is read ``b`` iterations and
  ``delta-stage`` rows later through ``s + stage_delta + b`` — the
  encoding baked in by :mod:`repro.codegen.kernel`;
* staging: an operation at stage sigma executes in kernel iteration m
  for loop iteration ``k = m - sigma`` and is squashed unless
  ``0 <= k < trip`` (the staging-predicate schema of kernel-only code:
  the pipeline fills for the first ``stages-1`` kernel iterations and
  drains for the last);
* write latency: results commit to their physical register
  ``latency`` cycles after issue, and commits are applied before the
  reads of the cycle they land on;
* live-in values: loop-carried uses whose producing iteration precedes
  the loop are preloaded into the exact physical registers the rotation
  will expose to their consumers (the paper's Figure 3 shows the same
  preloaded live-ins at cycle 0).

Running the kernel and comparing memory plus live-out scalars against
the sequential interpreter validates scheduling, register allocation
and code generation together.  (Affine load/store addresses are
computed from the access attributes; indirect accesses go through the
address registers.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.codegen.kernel import KernelCode, KernelOp, KernelOperand
from repro.ir.operations import Opcode
from repro.simulator.dataflow import InitFn, SimulationError, _invariant_value, _live_in_value, execute_op
from repro.machine.registers import RotatingFile, StaticFile
from repro.simulator.state import MachineState


class _RegisterFiles:
    """The machine's three register files for one simulation run.

    Uses the real :class:`~repro.machine.registers.RotatingFile`
    substrate: the ICP starts at 0 and decrements once per kernel
    iteration (brtop), so reading encoded specifier ``s`` during kernel
    iteration m resolves to physical ``(s - m) mod size`` — the map the
    code generator encoded against.
    """

    def __init__(self, kernel: KernelCode):
        self.rr = RotatingFile("RR", max(1, kernel.assignment.rr_registers))
        self.icr = RotatingFile("ICR", max(1, kernel.assignment.icr_registers))
        self.gpr = StaticFile("GPR", max(1, kernel.assignment.gpr_registers))

    def file_and_size(self, kind: str):
        if kind == "rr":
            return self.rr, self.rr.size
        if kind == "icr":
            return self.icr, self.icr.size
        if kind == "gpr":
            return self.gpr, self.gpr.size
        raise SimulationError(f"no register file {kind!r}")

    def rotate(self) -> None:
        """End-of-kernel-iteration rotation (brtop's ICP decrement)."""
        self.rr.rotate()
        self.icr.rotate()

    def read(self, operand: KernelOperand, m: int):
        if operand.kind == "imm":
            return operand.literal
        register_file, size = self.file_and_size(operand.kind)
        if operand.kind == "gpr":
            return register_file.read(operand.spec % size)
        # The file has rotated m times: ICP == -m mod size, so reading
        # through the rotating map equals physical (spec - m) mod size.
        return register_file.read(operand.spec)

    def write(self, kind: str, physical: int, value) -> None:
        register_file, size = self.file_and_size(kind)
        if kind == "gpr":
            register_file.write(physical % size, value)
        else:
            register_file.write_physical(physical, value)


def run_vliw(
    kernel: KernelCode,
    state: MachineState,
    trip: Optional[int] = None,
    init_fn: Optional[InitFn] = None,
) -> MachineState:
    """Execute kernel-only code for ``trip`` iterations over ``state``."""
    loop = kernel.loop
    machine = kernel.schedule.machine
    ii, stages = kernel.ii, kernel.stages
    iterations = trip if trip is not None else int(loop.meta.get("trip", 0))
    if iterations <= 0:
        raise ValueError("trip count must be positive")

    initial = state.copy()
    for name, binding in loop.meta.get("scalars", {}).items():
        initial.scalars.setdefault(name, binding)
    files = _RegisterFiles(kernel)
    _preload_gprs(kernel, files, initial)
    _preload_live_ins(kernel, files, initial, init_fn)

    # Pending register writes: (commit_cycle, sequence, kind, physical, value).
    pending: List[Tuple[int, int, str, int, object]] = []
    sequence = 0
    live_out_values: Dict[str, object] = {}
    live_out_vids = {value.vid: name for name, value in loop.live_out.items()}
    loop_control = _LoopControl(stages, iterations)

    running = True
    m = 0
    while running:
        for row_index in range(ii):
            cycle = m * ii + row_index
            pending.sort()
            while pending and pending[0][0] <= cycle:
                _, __, kind, physical, value = pending.pop(0)
                files.write(kind, physical, value)
            for kop in kernel.rows[row_index]:
                if kop.op.opcode is Opcode.BRTOP:
                    continue  # handled once per kernel iteration below
                if not loop_control.stage_active(kop.stage, m):
                    continue  # stage predicate (rotating ICR bit) squashes
                k = m - kop.stage
                if not (0 <= k < iterations):  # hardware/bookkeeping cross-check
                    raise SimulationError(
                        f"stage predicate enabled {kop.op!r} for iteration {k} "
                        f"outside [0, {iterations}) — brtop loop control is broken"
                    )
                result = _issue(kop, k, m, files, state)
                if kop.dest is not None:
                    physical = (kop.dest.spec - m) % files.file_and_size(kop.dest.kind)[1]
                    commit = cycle + machine.latency(kop.op)
                    pending.append((commit, sequence, kop.dest.kind, physical, result))
                    sequence += 1
                    if kop.op.dest.vid in live_out_vids and k == iterations - 1:
                        live_out_values[live_out_vids[kop.op.dest.vid]] = result
        running = loop_control.brtop(m)
        files.rotate()  # brtop decrements the ICP once per kernel iteration
        m += 1
        if m > iterations + stages + 2:
            raise SimulationError("brtop failed to terminate the pipeline")

    for name, value in live_out_values.items():
        state.scalars[name] = value
    return state


class _LoopControl:
    """Cydra-style `brtop` loop management (§2.1).

    Hardware state: the loop counter LC (remaining new iterations), the
    epilogue stage counter ESC (kernel iterations needed to drain the
    pipeline), and a small rotating file of *staging predicates*.  Once
    per kernel iteration, brtop either starts a new source iteration
    (LC > 0: write True into next iteration's stage-0 predicate) or
    begins draining (write False); the file rotates with the ICP, so
    the bit written for iteration k is read by its stage-sigma ops as
    specifier sigma, sigma kernel iterations later — which is exactly
    how kernel-only code squashes the pipeline fill and drain without
    prologue or epilogue copies.
    """

    def __init__(self, stages: int, trip: int):
        self.size = stages + 1
        self.bits = [False] * self.size
        self.bits[0] = True  # iteration 0's stage-0 predicate, preset
        self.lc = trip - 1
        self.esc = stages - 1

    def stage_active(self, stage: int, m: int) -> bool:
        return self.bits[(stage - m) % self.size]

    def brtop(self, m: int) -> bool:
        """One brtop execution at kernel iteration m.

        Returns False when the pipeline has fully drained.
        """
        if self.lc > 0:
            self.lc -= 1
            start_next = True
        elif self.esc > 0:
            self.esc -= 1
            start_next = False
        else:
            return False
        # Write iteration (m+1)'s stage-0 predicate: physical slot
        # (0 - (m+1)) mod size under the rotating map.
        self.bits[(0 - (m + 1)) % self.size] = start_next
        return True


def _issue(kop: KernelOp, k: int, m: int, files: _RegisterFiles, state: MachineState):
    op = kop.op
    by_position = {id(ir): enc for ir, enc in zip(op.operands, kop.operands)}
    if op.predicate is not None and kop.predicate is not None:
        by_position[id(op.predicate)] = kop.predicate

    def operand_value(ir_operand, _k):
        encoded = by_position.get(id(ir_operand))
        if encoded is None:
            raise SimulationError(f"operand {ir_operand!r} of {op!r} not encoded")
        value = files.read(encoded, m)
        if value is None and encoded.kind != "imm":
            raise SimulationError(
                f"{op!r} iteration {k}: read of {encoded.render()} "
                f"(physical {(encoded.spec - m) % files.file_and_size(encoded.kind)[1]}) "
                "returned an unwritten register — allocation or codegen is broken"
            )
        return value

    return execute_op(op, k, operand_value, state)


def _preload_gprs(kernel: KernelCode, files: _RegisterFiles, initial: MachineState) -> None:
    for value in kernel.loop.values:
        if value.is_invariant:
            index = kernel.assignment.gpr[value.vid]
            files.write("gpr", index, _invariant_value(value, initial))


def _preload_live_ins(
    kernel: KernelCode,
    files: _RegisterFiles,
    initial: MachineState,
    init_fn: Optional[InitFn],
) -> None:
    """Seed pre-loop value instances into their physical registers.

    Instance (v, j) for j < 0 lives in physical ``(s_phys(v) - j) mod R``
    where ``s_phys`` is the negated allocator specifier — the same map
    the kernel's encoded specifiers resolve through.
    """
    loop = kernel.loop
    max_back: Dict[int, int] = {}
    for op in loop.ops:
        for operand in op.inputs():
            if operand.back > 0 and operand.value.is_variant:
                vid = operand.value.vid
                max_back[vid] = max(max_back.get(vid, 0), operand.back)
    values_by_vid = {value.vid: value for value in loop.values}
    for vid, depth in max_back.items():
        value = values_by_vid[vid]
        kind = "icr" if value.dtype.is_predicate else "rr"
        table = (
            kernel.assignment.icr.specifiers
            if kind == "icr"
            else kernel.assignment.rr.specifiers
        )
        specifier = -table[vid]
        _, size = files.file_and_size(kind)
        for j in range(-depth, 0):
            physical = (specifier - j) % size
            files.write(kind, physical, _live_in_value(value, j, initial, init_fn))
