"""Sequential reference interpreter for DoLoop programs.

Executes the source AST iteration by iteration, exactly as the original
(unpipelined) FORTRAN loop would.  This is the semantic ground truth the
pipelined executors are checked against: a schedule is correct iff
running it leaves memory and live-out scalars identical to this
interpreter's results.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    DoLoop,
    ExitIf,
    Expr,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Unary,
)
from repro.simulator.state import MachineState, clamp_element, fdiv, fsqrt, initial_state

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": fdiv,
    "min": min,
    "max": max,
}
_COMPARES = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}
_UNARIES = {"neg": lambda a: -a, "abs": abs, "sqrt": fsqrt}


class _EarlyExit(Exception):
    """Raised by an ExitIf statement whose condition fired."""


def run_sequential(
    program: DoLoop,
    state: Optional[MachineState] = None,
    trip: Optional[int] = None,
    seed: int = 0,
) -> MachineState:
    """Execute the loop sequentially; returns the final machine state."""
    if state is None:
        state = initial_state(program, seed=seed)
    iterations = program.trip if trip is None else trip
    for k in range(iterations):
        index = program.start + k
        try:
            _run_statements(program.body, program, state, index)
        except _EarlyExit:
            break
    return state


def _run_statements(stmts, program: DoLoop, state: MachineState, index: int) -> None:
    for stmt in stmts:
        if isinstance(stmt, Assign):
            value = _eval(stmt.expr, program, state, index)
            target = stmt.target
            if isinstance(target, Scalar):
                state.scalars[target.name] = value
            elif isinstance(target, ArrayRef):
                cells = state.arrays[target.array]
                cells[target.stride * index + target.offset] = value
            elif isinstance(target, Scatter):
                cells = state.arrays[target.array]
                position = clamp_element(cells, _eval(target.index, program, state, index))
                cells[position] = value
            else:
                raise TypeError(f"cannot assign to {target!r}")
        elif isinstance(stmt, If):
            taken = _eval(stmt.cond, program, state, index)
            branch = stmt.then if taken else stmt.orelse
            _run_statements(branch, program, state, index)
        elif isinstance(stmt, ExitIf):
            if _eval(stmt.cond, program, state, index):
                raise _EarlyExit
        else:
            raise TypeError(f"cannot execute {stmt!r}")


def _eval(expr: Expr, program: DoLoop, state: MachineState, index: int):
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Scalar):
        try:
            return state.scalars[expr.name]
        except KeyError:
            raise KeyError(f"scalar {expr.name!r} has no value") from None
    if isinstance(expr, Index):
        return float(index)
    if isinstance(expr, ArrayRef):
        return state.arrays[expr.array][expr.stride * index + expr.offset]
    if isinstance(expr, Gather):
        cells = state.arrays[expr.array]
        return cells[clamp_element(cells, _eval(expr.index, program, state, index))]
    if isinstance(expr, BinOp):
        left = _eval(expr.left, program, state, index)
        right = _eval(expr.right, program, state, index)
        return _BINOPS[expr.op](left, right)
    if isinstance(expr, Unary):
        return _UNARIES[expr.op](_eval(expr.operand, program, state, index))
    if isinstance(expr, Compare):
        left = _eval(expr.left, program, state, index)
        right = _eval(expr.right, program, state, index)
        return _COMPARES[expr.op](left, right)
    raise TypeError(f"cannot evaluate {expr!r}")
