"""Pipelined dataflow executor: runs a modulo schedule against memory.

Every operation instance ``(op, k)`` of the software pipeline issues at
global cycle ``time(op) + k * II``.  The executor materializes all
instances for the loop's trip count, sorts them by issue cycle (ties by
textual order — latencies >= 1 guarantee producers sort before their
consumers), and executes them against a :class:`MachineState`.

Cross-iteration operands read the producing instance ``(value, k -
back)``; when that instance precedes the loop (``k - back < 0``), the
value comes from the operand value's *origin*: the initial scalar
binding, the initial array contents, or the address-IV formula — exactly
the live-in values the rotating register file holds at cycle 0 in the
paper's Figure 3.

This is the semantic half of schedule verification; pair it with
:func:`repro.core.validate.validate_schedule` (the timing/resource half)
and a :func:`repro.simulator.sequential.run_sequential` run to prove a
pipelined loop correct end to end.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.ir.loop import LoopBody
from repro.ir.operations import Opcode, Operation
from repro.ir.values import AddressOrigin, ArrayElementOrigin, Operand, ScalarOrigin, Value
from repro.core.schedule import Schedule
from repro.simulator.state import MachineState, clamp_element, fdiv, fsqrt

#: Optional hook supplying live-in values for loops built without origins
#: (hand-written IR in tests): (value, iteration < 0) -> float.
InitFn = Callable[[Value, int], float]


class SimulationError(RuntimeError):
    """The schedule or loop body is inconsistent with execution."""


def run_pipelined(
    schedule: Schedule,
    state: MachineState,
    trip: Optional[int] = None,
    init_fn: Optional[InitFn] = None,
) -> MachineState:
    """Execute ``schedule`` for ``trip`` iterations over ``state``.

    Mutates and returns ``state``; live-out scalars are written back to
    ``state.scalars`` after the last iteration.
    """
    loop = schedule.loop
    ii = schedule.ii
    iterations = trip if trip is not None else int(loop.meta.get("trip", 0))
    if iterations <= 0:
        raise ValueError("trip count must be positive")
    initial = state.copy()
    for name, binding in loop.meta.get("scalars", {}).items():
        initial.scalars.setdefault(name, binding)

    instances = [
        (schedule.times[op.oid] + k * ii, op.oid, k)
        for op in loop.real_ops
        for k in range(iterations)
        if op.opcode is not Opcode.BRTOP
    ]
    instances.sort()

    computed: Dict[Tuple[int, int], float] = {}

    def operand_value(operand: Operand, k: int):
        value = operand.value
        if value.is_constant:
            return value.literal
        if value.is_invariant:
            return _invariant_value(value, initial)
        producer = k - operand.back
        if producer < 0:
            return _live_in_value(value, producer, initial, init_fn)
        try:
            return computed[(value.vid, producer)]
        except KeyError:
            raise SimulationError(
                f"{value} consumed in iteration {k} before its instance "
                f"{producer} was computed — the schedule is broken"
            ) from None

    for _, oid, k in instances:
        op = loop.ops[oid]
        result = execute_op(op, k, operand_value, state)
        if op.dest is not None:
            computed[(op.dest.vid, k)] = result

    for name, value in loop.live_out.items():
        if value.is_variant:
            state.scalars[name] = computed[(value.vid, iterations - 1)]
    return state


def _invariant_value(value: Value, initial: MachineState):
    name = value.name
    if name.startswith("&"):
        return 0.0  # array base addresses are modeled in element units
    try:
        return initial.scalars[name]
    except KeyError:
        raise SimulationError(f"invariant {name!r} has no initial binding") from None


def _live_in_value(
    value: Value, iteration: int, initial: MachineState, init_fn: Optional[InitFn]
):
    """Value of a pre-loop instance (iteration < 0), from the origin."""
    origin = value.origin
    if isinstance(origin, ScalarOrigin):
        return initial.scalars[origin.name]
    if isinstance(origin, ArrayElementOrigin):
        cells = initial.arrays[origin.array]
        element = origin.element(iteration)
        if 0 <= element < len(cells):
            return cells[element]
        return 0.0
    if isinstance(origin, AddressOrigin):
        return float(origin.at(iteration))
    if init_fn is not None:
        return init_fn(value, iteration)
    raise SimulationError(
        f"{value} is read {-iteration} iteration(s) before the loop but has "
        "no origin and no init_fn was supplied"
    )


def execute_op(op: Operation, k: int, operand_value, state: MachineState):
    """Execute one operation instance against ``state``.

    ``operand_value(operand, k)`` supplies input values — the dataflow
    executor resolves them through the instance table, the register-level
    VLIW simulator through the rotating register files.  Returns the
    result value (None for stores).
    """
    opcode = op.opcode

    def arg(position: int):
        return operand_value(op.operands[position], k)

    def predicate_true() -> bool:
        if op.predicate is None:
            return True
        return bool(operand_value(op.predicate, k))

    if opcode in (Opcode.ADDR_ADD, Opcode.ADD_I, Opcode.ADD_F):
        return arg(0) + arg(1)
    if opcode in (Opcode.ADDR_SUB, Opcode.SUB_I, Opcode.SUB_F):
        return arg(0) - arg(1)
    if opcode in (Opcode.ADDR_MUL, Opcode.MUL_I, Opcode.MUL_F):
        return arg(0) * arg(1)
    if opcode in (Opcode.DIV_I, Opcode.DIV_F):
        return fdiv(arg(0), arg(1))
    if opcode is Opcode.MOD_I:
        divisor = arg(1)
        return arg(0) % divisor if divisor else 0.0
    if opcode is Opcode.SQRT_F:
        return fsqrt(arg(0))
    if opcode is Opcode.ABS_F:
        return abs(arg(0))
    if opcode is Opcode.NEG_F:
        return -arg(0)
    if opcode is Opcode.MIN_F:
        return min(arg(0), arg(1))
    if opcode is Opcode.MAX_F:
        return max(arg(0), arg(1))
    if opcode is Opcode.SELECT:
        return arg(1) if arg(0) else arg(2)
    if opcode is Opcode.CMP_LT:
        return arg(0) < arg(1)
    if opcode is Opcode.CMP_LE:
        return arg(0) <= arg(1)
    if opcode is Opcode.CMP_GT:
        return arg(0) > arg(1)
    if opcode is Opcode.CMP_GE:
        return arg(0) >= arg(1)
    if opcode is Opcode.CMP_EQ:
        return arg(0) == arg(1)
    if opcode is Opcode.CMP_NE:
        return arg(0) != arg(1)
    if opcode is Opcode.NOT_B:
        return not arg(0)
    if opcode is Opcode.AND_B:
        return bool(arg(0)) and bool(arg(1))
    if opcode is Opcode.OR_B:
        return bool(arg(0)) or bool(arg(1))
    if opcode is Opcode.XOR_B:
        return bool(arg(0)) != bool(arg(1))
    if opcode is Opcode.LOAD:
        cells = state.arrays[op.attrs["array"]]
        return cells[_element_index(op, k, arg, cells)]
    if opcode is Opcode.STORE:
        if predicate_true():
            cells = state.arrays[op.attrs["array"]]
            cells[_element_index(op, k, arg, cells)] = arg(1)
        return None
    raise SimulationError(f"cannot execute opcode {opcode}")


def _element_index(op: Operation, k: int, arg, cells) -> int:
    if op.attrs.get("gather") or "abs" not in op.attrs:
        # Indirect access (or hand-built IR without affine attributes):
        # the address operand *is* the element index, clamped exactly
        # like the sequential interpreter clamps it.
        return clamp_element(cells, arg(0))
    return int(op.attrs["abs"]) + int(op.attrs["stride"]) * k
