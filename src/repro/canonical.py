"""One canonical JSON serializer for every stable-bytes surface.

Several subsystems need "the same object always serializes to the same
bytes": cache keys and machine digests (:mod:`repro.service.keys`),
history rows (:mod:`repro.obs.history`), bench payload files
(:mod:`repro.obs.bench`), on-disk cache envelopes
(:mod:`repro.service.cache`) and the scheduling server's response
bodies (:mod:`repro.server`).  They all used to spell the same
``json.dumps(..., sort_keys=True)`` incantation locally; this module is
the single definition, so "canonical" means exactly one thing:

- keys sorted lexicographically at every level;
- compact separators (``","``/``":"``) unless an ``indent`` is asked
  for (pretty output stays canonical: sorted keys, deterministic
  floats);
- ``allow_nan=False`` — NaN/Infinity are not JSON and would make the
  bytes unparsable to strict readers;
- no trailing whitespace surprises: :func:`canonical_dump` always ends
  the file with exactly one newline.

Anything accepted by ``json.dumps`` can be serialized; callers are
responsible for reducing their objects to plain dict/list/scalar form
first (see ``repro.service.keys`` for the reduction idioms).
"""

from __future__ import annotations

import hashlib
import json
from typing import IO, Optional, Union


def canonical_dumps(obj, indent: Optional[int] = None) -> str:
    """Deterministic JSON text for ``obj`` (sorted keys, no NaN)."""
    return json.dumps(
        obj,
        sort_keys=True,
        indent=indent,
        separators=(",", ": ") if indent is not None else (",", ":"),
        allow_nan=False,
    )


def canonical_bytes(obj, indent: Optional[int] = None) -> bytes:
    """UTF-8 canonical encoding (what digests and HTTP bodies use)."""
    return canonical_dumps(obj, indent=indent).encode("utf-8")


def canonical_dump(
    obj, destination: Union[str, IO[str]], indent: Optional[int] = 2
) -> None:
    """Write canonical JSON (+ trailing newline) to a path or handle."""
    text = canonical_dumps(obj, indent=indent) + "\n"
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            handle.write(text)
    else:
        destination.write(text)


def canonical_digest(obj) -> str:
    """SHA-256 hex digest of the canonical encoding."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()
