"""Experiment harness: corpus measurement and table/figure regeneration."""

from repro.experiments.figures import (
    binned_percentages,
    cumulative_at,
    figure5,
    figure6,
    figure7,
    figure8,
    render_histogram,
)
from repro.experiments.metrics import LoopMetrics, percentile, quantile_row
from repro.experiments.export import metrics_fieldnames, to_csv, to_json, write_csv, write_json
from repro.experiments.report import full_report
from repro.experiments.runner import (
    classify,
    measure_loop,
    run_corpus,
    run_corpus_sweep,
    sweep_layout,
)
from repro.experiments.tables import (
    scheduling_performance,
    section6_effort,
    table2,
    table3,
    table4,
)

__all__ = [
    "binned_percentages",
    "cumulative_at",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "render_histogram",
    "LoopMetrics",
    "full_report",
    "metrics_fieldnames",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
    "percentile",
    "quantile_row",
    "classify",
    "measure_loop",
    "run_corpus",
    "run_corpus_sweep",
    "sweep_layout",
    "scheduling_performance",
    "section6_effort",
    "table2",
    "table3",
    "table4",
]
