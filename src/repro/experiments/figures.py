"""Regenerate the paper's Figures 5-8 (register-pressure distributions).

The paper plots percent-of-loops against register counts.  Here each
figure is produced as (a) the raw binned series, for EXPERIMENTS.md and
tests, and (b) an ASCII rendering for terminal output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.metrics import LoopMetrics


def binned_percentages(values: Sequence[int], bin_width: int = 4, max_bin: int = 96) -> List[Tuple[str, float]]:
    """Histogram of values as percent-of-loops, with a trailing overflow bin."""
    if not values:
        return []
    edges = list(range(0, max_bin + bin_width, bin_width))
    counts = [0] * (len(edges) - 1)
    overflow = 0
    for value in values:
        if value >= max_bin:
            overflow += 1
            continue
        # Negative values (MaxLive can dip below MinAvg's per-value
        # ceilings) land in the first bin: they are "optimal or better".
        counts[min(max(value, 0) // bin_width, len(counts) - 1)] += 1
    total = len(values)
    series = [
        (f"{edges[i]}-{edges[i + 1] - 1}", 100.0 * counts[i] / total)
        for i in range(len(counts))
    ]
    series.append((f">={max_bin}", 100.0 * overflow / total))
    return series


def cumulative_at(values: Sequence[int], threshold: int) -> float:
    """Percent of loops with value <= threshold (the paper's headline
    claims are phrased this way: '92% of the loops use <= 32 RRs')."""
    if not values:
        return 0.0
    return 100.0 * sum(1 for v in values if v <= threshold) / len(values)


def render_histogram(title: str, series_by_label: Dict[str, List[Tuple[str, float]]],
                     width: int = 46) -> str:
    """ASCII rendering of one or more overlaid histogram series."""
    lines = [title]
    for label, series in series_by_label.items():
        lines.append(f"  [{label}]")
        peak = max((pct for _, pct in series), default=0.0) or 1.0
        for bin_label, pct in series:
            bar = "#" * int(round(width * pct / peak))
            lines.append(f"    {bin_label:>8} {pct:5.1f}% {bar}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The four figures
# ----------------------------------------------------------------------
def figure5(new: Sequence[LoopMetrics], old: Sequence[LoopMetrics]) -> str:
    """Figure 5: MaxLive - MinAvg, new (slack) vs old (Cydrome) scheduler."""
    new_gaps = [m.pressure_gap for m in new if m.success]
    old_gaps = [m.pressure_gap for m in old if m.success]
    body = render_histogram(
        "Figure 5: MaxLive - MinAvg (distance from the schedule-independent bound)",
        {
            "New Scheduler": binned_percentages(new_gaps, bin_width=2, max_bin=40),
            "Old Scheduler": binned_percentages(old_gaps, bin_width=2, max_bin=40),
        },
    )
    summary = (
        f"\n  new: {cumulative_at(new_gaps, 0):.0f}% optimal, "
        f"{cumulative_at(new_gaps, 10):.0f}% within 10 RRs of ideal"
        f"\n  old: {cumulative_at(old_gaps, 0):.0f}% optimal, "
        f"{cumulative_at(old_gaps, 10):.0f}% within 10 RRs of ideal"
    )
    return body + summary


def figure6(new: Sequence[LoopMetrics], old: Sequence[LoopMetrics]) -> str:
    """Figure 6: MaxLive (overall RR pressure) for both schedulers."""
    new_live = [m.max_live for m in new if m.success]
    old_live = [m.max_live for m in old if m.success]
    body = render_histogram(
        "Figure 6: MaxLive (rotating RR pressure)",
        {
            "New Scheduler": binned_percentages(new_live),
            "Old Scheduler": binned_percentages(old_live),
        },
    )
    summary = (
        f"\n  new: {cumulative_at(new_live, 32):.0f}% of loops use <= 32 RRs; "
        f"{sum(1 for v in new_live if v > 64)} loops use more than 64"
    )
    return body + summary


def figure7(new: Sequence[LoopMetrics], old: Sequence[LoopMetrics]) -> str:
    """Figure 7: GPR pressure and combined GPRs + MaxLive."""
    gprs = [m.gprs for m in new]
    new_combined = [m.gprs + m.max_live for m in new if m.success]
    old_combined = [m.gprs + m.max_live for m in old if m.success]
    body = render_histogram(
        "Figure 7: GPRs and GPRs + MaxLive",
        {
            "GPRs (either scheduler)": binned_percentages(gprs, bin_width=2, max_bin=48),
            "New GPRs + MaxLive": binned_percentages(new_combined),
            "Old GPRs + MaxLive": binned_percentages(old_combined),
        },
    )
    summary = (
        f"\n  {cumulative_at(gprs, 16):.0f}% of loops use <= 16 GPRs; "
        f"{cumulative_at(new_combined, 32):.0f}% keep RRs + GPRs <= 32; "
        f"{sum(1 for v in new_combined if v > 64)} loops exceed 64 combined"
    )
    return body + summary


def figure8(new: Sequence[LoopMetrics]) -> str:
    """Figure 8: ICR predicate usage (including staging predicates)."""
    icr = [m.icr for m in new if m.success]
    body = render_histogram(
        "Figure 8: ICR Predicate Usage",
        {"New Scheduler": binned_percentages(icr, bin_width=2, max_bin=48)},
    )
    summary = (
        f"\n  {sum(1 for v in icr if v > 32)} loop(s) use more than 32 ICR predicates"
    )
    return body + summary
