"""Per-loop measurement records for the paper's evaluation (§6, §7)."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence


@dataclasses.dataclass
class LoopMetrics:
    """Everything Tables 2-4 and Figures 5-8 need about one loop."""

    name: str
    klass: str  # "conditional" | "recurrence" | "both" | "neither"

    # Table 2 complexity metrics.
    n_basic_blocks: int
    n_ops: int
    n_critical_ops_at_mii: int
    n_recurrence_ops: int
    n_div_ops: int
    rec_mii: int
    res_mii: int
    mii: int
    min_avg_at_mii: int
    gprs: int

    # Scheduling outcome.  On failure (``success`` False) there is no
    # schedule to measure: ``ii`` records the last *attempted* II and
    # the schedule-derived fields below are None — a real measured 0
    # and "no schedule found" must stay distinguishable.
    success: bool
    ii: int  # achieved II (or last attempted on failure)
    span: Optional[int]
    stages: Optional[int]

    # Register pressure of the found schedule (None on failure).
    max_live: Optional[int]
    min_avg: Optional[int]  # MinAvg at the achieved II (Figure 5's baseline)
    icr: Optional[int]

    # Scheduler effort (§6).
    attempts: int
    placements: int
    forced: int
    ejections: int
    mindist_seconds: float
    scheduling_seconds: float
    recmii_seconds: float

    # Why scheduling failed (None on success), e.g. "attempts_exhausted".
    failure_reason: Optional[str] = None

    @property
    def optimal(self) -> bool:
        return self.success and self.ii == self.mii

    @property
    def pressure_gap(self) -> Optional[int]:
        """MaxLive - MinAvg: distance from the absolute pressure bound
        (None when no schedule was found)."""
        if self.max_live is None or self.min_avg is None:
            return None
        return self.max_live - self.min_avg

    @property
    def backtracked(self) -> bool:
        return self.ejections > 0


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def quantile_row(values: List[float]) -> "tuple[float, float, float, float]":
    """(min, median, 90th percentile, max) — the paper's table columns."""
    ordered = sorted(values)
    if not ordered:
        return (0.0, 0.0, 0.0, 0.0)
    return (
        ordered[0],
        percentile(ordered, 0.50),
        percentile(ordered, 0.90),
        ordered[-1],
    )
