"""Export LoopMetrics to CSV/JSON for external analysis and plotting."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Iterable, List

from repro.experiments.metrics import LoopMetrics

#: Derived fields appended to every exported record.
_DERIVED = ("optimal", "pressure_gap", "backtracked")

#: Wall-clock fields, the only nondeterministic part of a LoopMetrics.
#: ``drop_timings=True`` zeroes them (keeping columns stable) so two
#: runs of a deterministic scheduler export byte-identical records —
#: the property the service path's serial-vs-parallel check relies on.
TIMING_FIELDS = ("mindist_seconds", "scheduling_seconds", "recmii_seconds")


def metrics_fieldnames() -> List[str]:
    """Column names, stable across exports (dataclass order + derived)."""
    return [field.name for field in dataclasses.fields(LoopMetrics)] + list(_DERIVED)


def _row(metric: LoopMetrics, drop_timings: bool = False) -> dict:
    record = dataclasses.asdict(metric)
    for name in _DERIVED:
        record[name] = getattr(metric, name)
    if drop_timings:
        for name in TIMING_FIELDS:
            record[name] = 0.0
    return record


def to_csv(metrics: Iterable[LoopMetrics], drop_timings: bool = False) -> str:
    """Render metrics as CSV text (header + one row per loop)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=metrics_fieldnames())
    writer.writeheader()
    for metric in metrics:
        writer.writerow(_row(metric, drop_timings))
    return buffer.getvalue()


def to_json(
    metrics: Iterable[LoopMetrics], indent: int = 2, drop_timings: bool = False
) -> str:
    """Render metrics as a JSON array of records."""
    return json.dumps(
        [_row(metric, drop_timings) for metric in metrics], indent=indent
    )


def write_csv(
    metrics: Iterable[LoopMetrics], path: str, drop_timings: bool = False
) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(metrics, drop_timings))


def write_json(
    metrics: Iterable[LoopMetrics], path: str, drop_timings: bool = False
) -> None:
    with open(path, "w") as handle:
        handle.write(to_json(metrics, drop_timings=drop_timings))
