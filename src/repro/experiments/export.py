"""Export LoopMetrics to CSV/JSON for external analysis and plotting."""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Iterable, List

from repro.experiments.metrics import LoopMetrics

#: Derived fields appended to every exported record.
_DERIVED = ("optimal", "pressure_gap", "backtracked")


def metrics_fieldnames() -> List[str]:
    """Column names, stable across exports (dataclass order + derived)."""
    return [field.name for field in dataclasses.fields(LoopMetrics)] + list(_DERIVED)


def _row(metric: LoopMetrics) -> dict:
    record = dataclasses.asdict(metric)
    for name in _DERIVED:
        record[name] = getattr(metric, name)
    return record


def to_csv(metrics: Iterable[LoopMetrics]) -> str:
    """Render metrics as CSV text (header + one row per loop)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=metrics_fieldnames())
    writer.writeheader()
    for metric in metrics:
        writer.writerow(_row(metric))
    return buffer.getvalue()


def to_json(metrics: Iterable[LoopMetrics], indent: int = 2) -> str:
    """Render metrics as a JSON array of records."""
    return json.dumps([_row(metric) for metric in metrics], indent=indent)


def write_csv(metrics: Iterable[LoopMetrics], path: str) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(metrics))


def write_json(metrics: Iterable[LoopMetrics], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_json(metrics))
