"""Corpus runner: schedule every loop and collect LoopMetrics."""

from __future__ import annotations

import time
from typing import List, Optional, Union

from repro.bounds import (
    MinDist,
    critical_unit_instances,
    gpr_count,
    icr_usage,
    min_avg,
    recmii,
    recurrence_ops,
    resmii,
    rr_max_live,
)
from repro.core import SchedulerOptions, modulo_schedule
from repro.frontend import DoLoop, compile_loop
from repro.ir import DIVIDER_OPCODES, LoopBody, build_ddg
from repro.machine import Machine, cydra5
from repro.obs.metrics import MetricsRegistry
from repro.obs.prof import Profiler
from repro.obs.trace import Tracer
from repro.experiments.metrics import LoopMetrics


def classify(loop: LoopBody, ddg, rec_mii: int) -> str:
    """Table 3's four loop classes.

    "Has recurrence" means the loop carries a *scheduling-relevant*
    recurrence: a non-trivial circuit or a trivial one tight enough to
    constrain II (RecMII > 1).
    """
    has_conditional = bool(loop.meta.get("has_conditional", False))
    has_recurrence = rec_mii > 1 or bool(recurrence_ops(ddg))
    if has_conditional and has_recurrence:
        return "both"
    if has_conditional:
        return "conditional"
    if has_recurrence:
        return "recurrence"
    return "neither"


def measure_loop(
    program: Union[DoLoop, LoopBody],
    machine: Optional[Machine] = None,
    algorithm: str = "slack",
    options: Optional[SchedulerOptions] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
) -> LoopMetrics:
    """Schedule one loop and record every evaluation metric.

    ``tracer``/``metrics``/``profiler`` are forwarded to the scheduling
    driver (repro.obs); per-phase wall times are additionally
    accumulated into the registry so corpus runs expose where the time
    goes.
    """
    machine = machine or cydra5()
    loop = compile_loop(program) if isinstance(program, DoLoop) else program
    ddg = build_ddg(loop, machine)

    started = time.perf_counter()
    rec_mii = recmii(ddg)
    recmii_seconds = time.perf_counter() - started
    if metrics is not None:
        metrics.timer("phase.recmii").add(recmii_seconds)
    res_mii = resmii(loop, machine)
    mii = max(rec_mii, res_mii)

    binding = machine.bind_units(loop)
    critical_units = critical_unit_instances(loop, machine, binding, mii)
    n_critical = sum(1 for oid, unit in binding.items() if unit in critical_units)
    n_div = sum(1 for op in loop.real_ops if op.opcode in DIVIDER_OPCODES)
    mindist_at_mii = MinDist(ddg, mii, profiler=profiler)
    min_avg_mii = min_avg(loop, ddg, mindist_at_mii, mii)

    result = modulo_schedule(
        loop, machine, algorithm=algorithm, options=options, ddg=ddg,
        tracer=tracer, metrics=metrics, profiler=profiler,
    )

    if result.success:
        times = result.schedule.times
        achieved_ii = result.schedule.ii
        mindist_at_ii = (
            mindist_at_mii
            if achieved_ii == mii
            else MinDist(ddg, achieved_ii, profiler=profiler)
        )
        max_live_value = rr_max_live(loop, ddg, times, achieved_ii)
        min_avg_value = min_avg(loop, ddg, mindist_at_ii, achieved_ii)
        icr_value = icr_usage(loop, ddg, times, achieved_ii)
        span, stages = result.schedule.span, result.schedule.stages
        failure_reason = None
    else:
        # No schedule exists: the pressure/shape fields are None (not a
        # fake 0, which would be indistinguishable from a measured 0).
        achieved_ii = result.last_attempted_ii
        max_live_value = min_avg_value = icr_value = None
        span = stages = None
        failure_reason = "attempts_exhausted"

    return LoopMetrics(
        name=loop.name,
        klass=classify(loop, ddg, rec_mii),
        n_basic_blocks=int(loop.meta.get("n_basic_blocks", 1)),
        n_ops=len(loop.real_ops),
        n_critical_ops_at_mii=n_critical,
        n_recurrence_ops=len(recurrence_ops(ddg)),
        n_div_ops=n_div,
        rec_mii=rec_mii,
        res_mii=res_mii,
        mii=mii,
        min_avg_at_mii=min_avg_mii,
        gprs=gpr_count(loop),
        success=result.success,
        ii=achieved_ii,
        span=span,
        stages=stages,
        max_live=max_live_value,
        min_avg=min_avg_value,
        icr=icr_value,
        attempts=result.stats.attempts,
        placements=result.stats.placements,
        forced=result.stats.forced,
        ejections=result.stats.ejections,
        mindist_seconds=result.stats.mindist_seconds,
        scheduling_seconds=result.stats.scheduling_seconds,
        recmii_seconds=recmii_seconds,
        failure_reason=failure_reason,
    )


def run_corpus(
    programs,
    machine: Optional[Machine] = None,
    algorithm: str = "slack",
    options: Optional[SchedulerOptions] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    cache_db: Optional[str] = None,
    timeout: Optional[float] = None,
    machines=None,
    backend: str = "auto",
) -> List[LoopMetrics]:
    """Measure a whole corpus with one scheduler configuration.

    ``jobs`` > 1, a cache location, per-loop ``machines`` or an explicit
    ``backend`` routes the corpus through the batch scheduling service
    (:mod:`repro.service`): worker processes, per-job ``timeout``, and a
    content-addressed result cache (directory or sqlite).  The service
    path returns metrics in the same order with identical values.
    ``tracer``/``profiler`` hooks cross process boundaries via per-job
    spool files merged in submission order, so observability is
    identical at any job count (modulo timestamps); ``metrics``
    additionally receives ``service.*`` aggregates.
    """
    machine = machine or cydra5()
    use_service = (
        jobs != 1
        or cache_dir is not None
        or cache_db is not None
        or machines is not None
        or backend != "auto"
    )
    if use_service:
        from repro.service import run_batch

        report = run_batch(
            programs,
            machine,
            algorithm=algorithm,
            options=options,
            jobs=jobs,
            timeout=timeout,
            cache_dir=cache_dir,
            cache_db=cache_db,
            metrics=metrics,
            machines=machines,
            backend=backend,
            tracer=tracer,
            profiler=profiler,
        )
        missing = [r for r in report.results if r.metrics is None]
        if missing:
            detail = "; ".join(
                f"{r.name}: {r.status} ({r.error})" for r in missing[:5]
            )
            raise RuntimeError(
                f"{len(missing)} corpus loop(s) produced no metrics: {detail}"
            )
        return report.loop_metrics
    return [
        measure_loop(
            program, machine, algorithm=algorithm, options=options,
            tracer=tracer, metrics=metrics, profiler=profiler,
        )
        for program in programs
    ]


def sweep_layout(programs, machines):
    """Flatten a machines x programs grid into one heterogeneous batch.

    Returns ``(flat_programs, flat_machines)`` — every program repeated
    once per machine, machine-major, so ``flat[i * len(programs) +
    j]`` is ``programs[j]`` under ``machines[i]``.  This is the single
    layout both :func:`run_corpus_sweep` and the batch CLI's
    ``--sweep-machine``/``--sweep-load-latency`` grids use, so their
    result ordering (and cache keys) agree.
    """
    programs = list(programs)
    machines = list(machines)
    flat_programs = [program for _ in machines for program in programs]
    flat_machines = [machine for machine in machines for _ in programs]
    return flat_programs, flat_machines


def run_corpus_sweep(
    programs,
    machines,
    algorithm: str = "slack",
    options: Optional[SchedulerOptions] = None,
    metrics: Optional[MetricsRegistry] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    cache_db: Optional[str] = None,
    timeout: Optional[float] = None,
    backend: str = "auto",
) -> List[List[LoopMetrics]]:
    """Measure one corpus under several machines as ONE heterogeneous batch.

    Returns one metrics list per machine, each ordered like ``programs``
    — the same shape as calling :func:`run_corpus` once per machine,
    but submitted as a single batch so the parallel backends interleave
    work across configurations (and the worker-resident machine cache
    holds every machine at once).  Each (program, machine) pair keeps
    its own cache key, so sweeps are warm-cacheable per configuration.
    """
    programs = list(programs)
    machines = list(machines)
    flat_programs, flat_machines = sweep_layout(programs, machines)
    flat = run_corpus(
        flat_programs,
        algorithm=algorithm,
        options=options,
        metrics=metrics,
        jobs=jobs,
        cache_dir=cache_dir,
        cache_db=cache_db,
        timeout=timeout,
        machines=flat_machines,
        backend=backend,
    )
    n = len(programs)
    return [flat[i * n : (i + 1) * n] for i in range(len(machines))]
