"""One-call regeneration of the paper's entire evaluation.

``full_report(n)`` builds an n-loop corpus, measures it under the slack
scheduler and the Cydrome-style baseline, and renders every table and
figure of the paper plus the §6 effort statistics — the programmatic
equivalent of running the whole benchmark suite, for use from the CLI
(``python -m repro --paper-report 300``) or notebooks.
"""

from __future__ import annotations

from typing import Optional

from repro.core import SchedulerOptions
from repro.machine import Machine, cydra5
from repro.workloads import paper_corpus
from repro.experiments.figures import figure5, figure6, figure7, figure8
from repro.experiments.runner import run_corpus
from repro.experiments.tables import section6_effort, table2, table3, table4

_RULE = "=" * 72


def full_report(
    n: int = 300,
    machine: Optional[Machine] = None,
    seed: int = 1993,
    options: Optional[SchedulerOptions] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> str:
    """Render Tables 2-4, Figures 5-8 and the §6 statistics as one string.

    ``jobs``/``cache_dir`` route the two corpus measurements through the
    batch scheduling service (parallel workers + content-addressed
    result cache); the rendered output is identical either way.
    """
    machine = machine or cydra5()
    loops = paper_corpus(n, seed=seed)
    new = run_corpus(
        loops, machine, algorithm="slack", options=options,
        jobs=jobs, cache_dir=cache_dir,
    )
    old = run_corpus(
        loops, machine, algorithm="cydrome", options=options,
        jobs=jobs, cache_dir=cache_dir,
    )

    sections = [
        f"Lifetime-Sensitive Modulo Scheduling — evaluation over {n} loops",
        table2(new),
        table3(new),
        table4(old),
        section6_effort(new),
        figure5(new, old),
        figure6(new, old),
        figure7(new, old),
        figure8(new),
    ]
    return ("\n" + _RULE + "\n").join(sections)
