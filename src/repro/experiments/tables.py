"""Regenerate the paper's Tables 2, 3 and 4 from LoopMetrics records."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.experiments.metrics import LoopMetrics, quantile_row

_CLASS_LABELS = [
    ("conditional", "Has Conditional"),
    ("recurrence", "Has Recurrence"),
    ("both", "Has Both"),
    ("neither", "Has Neither"),
]


def _fmt_quantiles(values: List[float], as_int: bool = True) -> str:
    low, median, p90, high = quantile_row(values)
    if as_int:
        return f"{int(low):>6d} {int(median):>6d} {int(p90):>6d} {int(high):>7d}"
    return f"{low:>6.2f} {median:>6.2f} {p90:>6.2f} {high:>7.2f}"


def table2(metrics: Sequence[LoopMetrics]) -> str:
    """Table 2: measurements from all corpus loops (min/50%/90%/max)."""
    rows: List[Tuple[str, List[float]]] = [
        ("# Basic Blocks", [m.n_basic_blocks for m in metrics]),
        ("# Operations", [m.n_ops for m in metrics]),
        ("# Critical Ops at MII", [m.n_critical_ops_at_mii for m in metrics]),
        ("# Ops on Recurrences", [m.n_recurrence_ops for m in metrics]),
        ("# Div/Mod/Sqrt Ops", [m.n_div_ops for m in metrics]),
        ("RecMII", [m.rec_mii for m in metrics]),
        ("ResMII", [m.res_mii for m in metrics]),
        ("MII", [m.mii for m in metrics]),
        ("MinAvg at MII", [m.min_avg_at_mii for m in metrics]),
        ("# GPRs", [m.gprs for m in metrics]),
    ]
    lines = [
        f"Table 2: Measurements from all {len(metrics)} Loops",
        f"{'Metric':<24} {'Min':>6} {'50%':>6} {'90%':>6} {'Max':>7}",
    ]
    for label, values in rows:
        lines.append(f"{label:<24} {_fmt_quantiles(values)}")
    return "\n".join(lines)


def scheduling_performance(metrics: Sequence[LoopMetrics], title: str) -> str:
    """Tables 3/4: per-class optimality and II totals, plus the
    II > MII sub-table."""
    lines = [
        title,
        f"{'Loop Class':<18} {'Opt':>5} {'All':>5} {'%':>6} "
        f"{'Sum II':>8} {'Sum MII':>8} {'Ratio':>6}",
    ]
    for key, label in _CLASS_LABELS + [(None, "All Loops")]:
        group = [m for m in metrics if key is None or m.klass == key]
        if not group:
            lines.append(f"{label:<18} {0:>5} {0:>5} {'-':>6} {0:>8} {0:>8} {'-':>6}")
            continue
        optimal = sum(1 for m in group if m.optimal)
        sum_ii = sum(m.ii for m in group)
        sum_mii = sum(m.mii for m in group)
        ratio = sum_ii / sum_mii if sum_mii else 0.0
        lines.append(
            f"{label:<18} {optimal:>5} {len(group):>5} "
            f"{100.0 * optimal / len(group):>5.1f}% {sum_ii:>8} {sum_mii:>8} {ratio:>6.3f}"
        )

    suboptimal = [m for m in metrics if not m.optimal]
    failures = [m for m in metrics if not m.success]
    reasons = ""
    if failures:
        tally: dict = {}
        for m in failures:
            reason = m.failure_reason or "unknown"
            tally[reason] = tally.get(reason, 0) + 1
        reasons = "; " + ", ".join(
            f"{reason} x{count}" for reason, count in sorted(tally.items())
        )
    lines.append("")
    lines.append(f"For the {len(suboptimal)} Loops with II > MII "
                 f"({len(failures)} failed to pipeline{reasons})")
    lines.append(f"{'Metric':<12} {'Min':>6} {'50%':>6} {'90%':>6} {'Max':>7}")
    if suboptimal:
        rows = [
            ("II", [m.ii for m in suboptimal]),
            ("MII", [m.mii for m in suboptimal]),
            ("II - MII", [m.ii - m.mii for m in suboptimal]),
            ("II / MII", [m.ii / m.mii for m in suboptimal]),
        ]
        for label, values in rows:
            as_int = label != "II / MII"
            lines.append(f"{label:<12} {_fmt_quantiles(values, as_int=as_int)}")
    else:
        lines.append("(every loop achieved MII)")
    return "\n".join(lines)


def table3(metrics: Sequence[LoopMetrics]) -> str:
    return scheduling_performance(metrics, "Table 3: Slack Scheduling Performance")


def table4(metrics: Sequence[LoopMetrics]) -> str:
    return scheduling_performance(metrics, "Table 4: Cydrome-style Scheduling Performance")


def section6_effort(metrics: Sequence[LoopMetrics]) -> str:
    """§6's compilation-effort statistics for one scheduler run."""
    total_ops = sum(m.n_ops for m in metrics)
    no_backtracking = [m for m in metrics if not m.backtracked]
    backtracking = [m for m in metrics if m.backtracked]
    placements = sum(m.placements for m in metrics)
    ejections = sum(m.ejections for m in metrics)
    forced = sum(m.forced for m in metrics)
    restarts = sum(m.attempts - 1 for m in metrics)
    mindist_s = sum(m.mindist_seconds for m in metrics)
    sched_s = sum(m.scheduling_seconds for m in metrics)
    recmii_s = sum(m.recmii_seconds for m in metrics)
    total_s = mindist_s + sched_s + recmii_s
    lines = [
        "Section 6: Scheduler Effort",
        f"loops scheduled:                {len(metrics)}",
        f"total operations:               {total_ops}",
        f"loops needing no backtracking:  {len(no_backtracking)} "
        f"(covering {sum(m.n_ops for m in no_backtracking)} ops)",
        f"loops that backtracked:         {len(backtracking)}",
        f"central-loop iterations:        {placements}",
        f"step-3 (force) invocations:     {forced}",
        f"operations ejected:             {ejections}",
        f"step-6 restarts (II bumps):     {restarts}",
        f"time: RecMII {recmii_s:.2f}s ({_pct(recmii_s, total_s)}), "
        f"MinDist {mindist_s:.2f}s ({_pct(mindist_s, total_s)}), "
        f"placement+backtracking {sched_s:.2f}s ({_pct(sched_s, total_s)})",
    ]
    return "\n".join(lines)


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "0%"
    return f"{100.0 * part / whole:.0f}%"
