"""Lifetime-Sensitive Modulo Scheduling (Huff, PLDI 1993) — reproduction.

Top-level convenience exports cover the common path:

    >>> from repro import DoLoop, Assign, ArrayRef, compile_loop, cydra5, modulo_schedule
    >>> program = DoLoop("saxpy", body=[Assign(ArrayRef("y"),
    ...     ArrayRef("x") * 2.0 + ArrayRef("y"))], arrays={"x": 32, "y": 32})
    >>> result = modulo_schedule(compile_loop(program), cydra5())
    >>> result.optimal
    True
"""

from repro.core import (
    SchedulerOptions,
    Schedule,
    ScheduleResult,
    modulo_schedule,
    validate_schedule,
)
from repro.frontend import (
    ArrayRef,
    Assign,
    Compare,
    Const,
    DoLoop,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Unary,
    compile_loop,
)
from repro.machine import Machine, cydra5

__version__ = "1.0.0"

__all__ = [
    "SchedulerOptions",
    "Schedule",
    "ScheduleResult",
    "modulo_schedule",
    "validate_schedule",
    "ArrayRef",
    "Assign",
    "Compare",
    "Const",
    "DoLoop",
    "Gather",
    "If",
    "Index",
    "Scalar",
    "Scatter",
    "Unary",
    "compile_loop",
    "Machine",
    "cydra5",
    "__version__",
]
