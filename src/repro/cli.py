"""Command-line interface: pipeline a loop-language file end to end.

    python -m repro path/to/loop.txt
    python -m repro loop.txt --algorithm cydrome --emit --simulate
    python -m repro --demo            # runs the paper's Figure 1 sample
    python -m repro --demo --trace t.jsonl --explain   # observability
    python -m repro bench             # benchmark harness -> BENCH_*.json
    python -m repro batch --corpus 60 --jobs 4         # scheduling service
    python -m repro batch --corpus 60 --jobs 4 --trace t.jsonl --cache-db r.sqlite
    python -m repro batch --gc --max-cache-bytes 500M  # cache eviction
    python -m repro serve --port 8537 --cache-db shared.sqlite  # daemon
    python -m repro batch --corpus 60 --cache-url http://localhost:8537
    python -m repro report --metrics m.json --out report.html  # HTML report
    python -m repro history record --db h.sqlite bench-out/    # bench history
    python -m repro history trend --db h.sqlite                # MAD anomaly scan

Prints lower bounds, the found schedule, register pressure against the
MinAvg bound, optionally the generated kernel-only VLIW code, and
optionally executes the pipeline to verify it against sequential
semantics.

Observability (all opt-in; the default run is quiet and untraced):
``--trace PATH`` records every scheduler decision (``--trace-format``
picks JSONL or Chrome trace-event JSON for chrome://tracing/Perfetto),
``--explain`` prints a post-mortem of the scheduling run,
``--metrics-out PATH`` dumps the MetricsRegistry snapshot as
schema-versioned JSON, and ``--verbose`` enables stdlib-logging
progress lines from the driver.

The ``bench`` subcommand runs named scenarios under a common protocol
(warmup, timed repeats with median/IQR, one profiled pass) and writes
``BENCH_<scenario>.json``; ``bench --compare OLD NEW
[--fail-on-regress]`` diffs two result sets with a noise-aware
threshold (see ``repro.obs.bench`` / ``repro.obs.regress``).

The ``batch`` subcommand schedules corpora as a service: pluggable
execution backends (``--backend serial|process|chunked``, ``--jobs``,
``--chunk-size``), a content-addressed result cache in either a fan-out
directory (``--cache-dir``) or a single sqlite file (``--cache-db``),
cache eviction (``--gc --max-cache-bytes/--max-cache-age``),
heterogeneous machine sweeps (``--sweep-load-latency 2,13,27``), and a
merged cross-process scheduler trace (``--trace``) that is identical at
any ``--jobs`` level.

The ``serve`` subcommand boots a long-lived scheduling daemon
(``repro.server``): ``POST /v1/schedule`` / ``POST /v1/batch`` with
canonical JSON responses, a shared result cache over HTTP
(``GET/PUT /v1/cache/<key>``, ETag conditional gets, optional bearer
auth), and ``/healthz`` + ``/metricz`` probes.  ``batch --cache-url``
points any batch run at that shared warm cache, with graceful
degradation to a local directory cache when the server is down.

The ``history`` subcommand keeps an append-only sqlite store of bench
envelopes and batch summaries: ``record`` ingests BENCH_*.json files,
``trend`` runs a rolling-median + MAD anomaly scan over every metric
series, and ``compare`` diffs two recorded runs with provenance
warnings and span-level regression attribution (see
``repro.obs.history``).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.bounds import MinDist, min_avg, rr_max_live
from repro.codegen import emit_kernel, generate_kernel
from repro.core import ALGORITHMS, modulo_schedule, validate_schedule
from repro.frontend import compile_loop
from repro.frontend.parser import ParseError, parse_loop
from repro.ir import build_ddg
from repro.machine import MachineError, cydra5, machine_from_cli
from repro.obs import (
    CollectingTracer,
    MetricsRegistry,
    explain,
    write_chrome_trace,
    write_jsonl,
)
from repro.regalloc import allocate_registers
from repro.simulator import initial_state, run_pipelined, run_sequential

_DEMO = """\
loop figure1
array x 60
array y 60
do i = 2, 41
    x(i) = x(i-1) + y(i-2)
    y(i) = y(i-1) + x(i-2)
end do
"""


def resolve_machine(machine_arg: Optional[str], load_latency: Optional[int]):
    """``--machine``/``--load-latency`` -> a registry Machine.

    No ``--machine`` keeps the historical default (cydra5 at the given
    load latency); with one, ``--load-latency`` still applies when the
    family has that knob and the spec text didn't set it.  Raises
    :class:`repro.machine.MachineError` on unknown names/parameters.
    """
    if machine_arg is None:
        return cydra5(
            load_latency=load_latency if load_latency is not None else 13
        )
    return machine_from_cli(machine_arg, load_latency=load_latency)


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lifetime-sensitive modulo scheduling (Huff, PLDI 1993)",
    )
    parser.add_argument("source", nargs="?", help="loop-language file ('-' for stdin)")
    parser.add_argument("--demo", action="store_true", help="schedule the paper's Figure 1")
    parser.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="slack",
        help="scheduler to use (default: slack)",
    )
    parser.add_argument(
        "--machine",
        metavar="NAME[:k=v,...]",
        default=None,
        help="registered target machine, optionally with parameter "
        "overrides, e.g. vliw-wide or simd:depth=3,lanes=4 "
        "(default cydra5; see repro.machine.registry)",
    )
    parser.add_argument(
        "--load-latency",
        type=int,
        default=None,
        help="memory latency register (default: the machine's default; "
        "13 for cydra5)",
    )
    parser.add_argument("--emit", action="store_true", help="print kernel-only VLIW code")
    parser.add_argument(
        "--simulate", action="store_true", help="execute and verify against sequential"
    )
    parser.add_argument("--dump-ir", action="store_true", help="print the compiled loop body")
    parser.add_argument(
        "--paper-report",
        type=int,
        metavar="N",
        help="regenerate the paper's tables and figures over an N-loop corpus",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record every scheduler decision to PATH",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="trace file format: JSONL (replayable) or Chrome trace-event "
        "JSON for chrome://tracing / Perfetto (default: jsonl)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print a post-mortem of the scheduling run (attempts, "
        "ejections, critical resource, MRT occupancy, lifetimes)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="dump the run's metrics registry (counters/timers/histograms) "
        "as schema-versioned JSON after scheduling",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="log scheduler progress to stderr (default is quiet)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress logging (the default; overrides --verbose)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # Subcommand: the benchmark harness + regression gate (obs.bench).
        from repro.obs.bench import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "batch":
        # Subcommand: the parallel scheduling service (repro.service).
        from repro.service.batch import batch_main

        return batch_main(argv[1:])
    if argv and argv[0] == "serve":
        # Subcommand: the scheduling daemon + shared HTTP cache.
        from repro.server.app import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "report":
        # Subcommand: fuse observability artifacts into one HTML file.
        from repro.obs.report import report_main

        return report_main(argv[1:])
    if argv and argv[0] == "history":
        # Subcommand: append-only bench history + trends (obs.history).
        from repro.obs.history import history_main

        return history_main(argv[1:])
    args = build_argument_parser().parse_args(argv)
    level = logging.INFO if (args.verbose and not args.quiet) else logging.WARNING
    logging.basicConfig(level=level, format="%(levelname)s %(name)s: %(message)s")
    if args.paper_report:
        from repro.experiments import full_report

        print(full_report(args.paper_report))
        return 0
    if args.demo:
        source = _DEMO
    elif args.source == "-":
        source = sys.stdin.read()
    elif args.source:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        print("error: provide a source file or --demo", file=sys.stderr)
        return 2

    try:
        program = parse_loop(source)
        loop = compile_loop(program)
    except (ParseError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    try:
        machine = resolve_machine(args.machine, args.load_latency)
    except MachineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    ddg = build_ddg(loop, machine)
    if args.dump_ir:
        print(loop.dump())
        print()

    observing = bool(args.trace or args.explain or args.metrics_out)
    tracer = CollectingTracer() if (args.trace or args.explain) else None
    metrics = MetricsRegistry() if observing else None
    result = modulo_schedule(
        loop, machine, algorithm=args.algorithm, ddg=ddg, tracer=tracer, metrics=metrics
    )
    if args.trace:
        try:
            if args.trace_format == "chrome":
                write_chrome_trace(tracer.events, args.trace)
            else:
                write_jsonl(tracer.events, args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}", file=sys.stderr)
            return 1
        print(f"trace: {len(tracer.events)} events -> {args.trace} ({args.trace_format})")
    if args.metrics_out:
        from repro.obs.bench import METRICS_SCHEMA, wrap_payload, write_json

        payload = wrap_payload(
            METRICS_SCHEMA,
            {
                "loop": loop.name,
                "algorithm": args.algorithm,
                "metrics": metrics.snapshot(),
            },
        )
        try:
            write_json(args.metrics_out, payload)
        except OSError as exc:
            print(
                f"error: cannot write metrics to {args.metrics_out}: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"metrics: registry snapshot -> {args.metrics_out}")
    print(
        f"{loop.name}: ResMII={result.res_mii} RecMII={result.rec_mii} "
        f"MII={result.mii}"
    )
    if not result.success:
        print(f"FAILED to pipeline (last attempted II={result.last_attempted_ii})")
        if args.explain:
            print()
            print(explain(result, tracer.events, metrics, ddg=ddg))
        return 1
    schedule = result.schedule
    print(
        f"scheduled at II={schedule.ii} "
        f"({'optimal' if result.optimal else 'suboptimal'}), "
        f"span={schedule.span}, stages={schedule.stages}"
    )
    violations = validate_schedule(schedule, ddg)
    if violations:
        print("INVALID SCHEDULE:")
        for violation in violations[:10]:
            print(f"  {violation}")
        return 1

    pressure = rr_max_live(loop, ddg, schedule.times, schedule.ii)
    bound = min_avg(loop, ddg, MinDist(ddg, schedule.ii), schedule.ii)
    print(f"register pressure: MaxLive={pressure} (MinAvg bound {bound})")
    print(schedule.render())

    if args.explain:
        print()
        print(explain(result, tracer.events, metrics, ddg=ddg))

    if args.emit:
        assignment = allocate_registers(schedule, ddg)
        print()
        print(emit_kernel(generate_kernel(schedule, assignment)))

    if args.simulate:
        sequential = run_sequential(program, initial_state(program))
        pipelined = run_pipelined(schedule, initial_state(program))
        mismatches = 0
        for name in program.arrays:
            for a, b in zip(sequential.arrays[name], pipelined.arrays[name]):
                if not (a == b or abs(a - b) <= 1e-9 * max(1.0, abs(a), abs(b))):
                    mismatches += 1
        for name in program.live_out:
            if abs(sequential.scalars[name] - pipelined.scalars[name]) > 1e-9:
                mismatches += 1
        if mismatches:
            print(f"SIMULATION MISMATCH: {mismatches} locations differ")
            return 1
        print(f"simulation: pipelined execution matches sequential over "
              f"{program.trip} iterations")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
