"""Workloads: Livermore/SPEC-style kernels and the generated corpus."""

from repro.workloads.corpus import (
    PAPER_CORPUS_SIZE,
    TABLE3_CLASS_COUNTS,
    default_corpus_size,
    named_kernels,
    paper_corpus,
)
from repro.workloads.extra import extra_kernels
from repro.workloads.generator import CLASSES, LoopGenerator, generate_corpus_slice
from repro.workloads.livermore import livermore_kernels
from repro.workloads.spec import spec_kernels

__all__ = [
    "PAPER_CORPUS_SIZE",
    "TABLE3_CLASS_COUNTS",
    "default_corpus_size",
    "named_kernels",
    "paper_corpus",
    "extra_kernels",
    "CLASSES",
    "LoopGenerator",
    "generate_corpus_slice",
    "livermore_kernels",
    "spec_kernels",
]
