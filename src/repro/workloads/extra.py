"""Additional numeric kernels rounding out the corpus.

Idioms common in the scientific codes the paper's suites drew from but
not already covered by the Livermore/SPEC sets: IIR filtering
(multi-term recurrences), convolution windows, Newton iteration
(divider-heavy recurrences), max-plus dynamic programming, leapfrog
integration, and gather-driven table interpolation.
"""

from __future__ import annotations

from typing import List

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    Const,
    DoLoop,
    Gather,
    If,
    Index,
    Scalar,
    Unary,
)


def _a(name, offset=0, stride=1):
    return ArrayRef(name, offset, stride)


def _max(left, right):
    from repro.frontend.ast import BinOp

    return BinOp("max", left, right)


def axpby() -> DoLoop:
    """BLAS-1 axpby: y = a*x + b*y."""
    body = [Assign(_a("y"), Scalar("a") * _a("x") + Scalar("b") * _a("y"))]
    return DoLoop("extra_axpby", body, arrays={"x": 64, "y": 64},
                  scalars={"a": 1.2, "b": 0.8}, trip=40)


def iir_biquad() -> DoLoop:
    """Direct-form IIR biquad: a two-deep output recurrence."""
    body = [
        Assign(
            _a("y"),
            Scalar("b0") * _a("x")
            + Scalar("b1") * _a("x", -1)
            + Scalar("b2") * _a("x", -2)
            - Scalar("a1") * _a("y", -1)
            - Scalar("a2") * _a("y", -2),
        )
    ]
    return DoLoop(
        "extra_biquad", body,
        arrays={"x": 64, "y": 64},
        scalars={"b0": 0.2, "b1": 0.3, "b2": 0.1, "a1": 0.4, "a2": 0.1},
        trip=40,
    )


def convolution5() -> DoLoop:
    """5-tap convolution with invariant taps."""
    taps = Scalar("k0") * _a("x", -2)
    for j, name in enumerate(["k1", "k2", "k3", "k4"], start=-1):
        taps = taps + Scalar(name) * _a("x", j)
    body = [Assign(_a("y"), taps)]
    return DoLoop(
        "extra_conv5", body,
        arrays={"x": 96, "y": 64},
        scalars={"k0": 0.1, "k1": 0.2, "k2": 0.4, "k3": 0.2, "k4": 0.1},
        trip=40,
    )


def newton_reciprocal() -> DoLoop:
    """Newton-Raphson reciprocal refinement per element (divider-free
    refinement of a divider-seeded estimate)."""
    body = [
        Assign(Scalar("r"), Const(1.0) / _a("d")),
        Assign(_a("out"), Scalar("r") * (Const(2.0) - _a("d") * Scalar("r"))),
    ]
    return DoLoop(
        "extra_newton", body,
        arrays={"d": 64, "out": 64},
        scalars={"r": 1.0},
        trip=30,
    )


def maxplus_dp() -> DoLoop:
    """Max-plus dynamic programming step (Viterbi-style recurrence)."""
    body = [
        Assign(
            _a("score"),
            _max(
                _a("score", -1) + _a("stay"),
                _a("score", -2) + _a("jump"),
            ),
        )
    ]
    return DoLoop(
        "extra_maxplus", body,
        arrays={"score": 64, "stay": 64, "jump": 64},
        trip=40,
    )


def leapfrog() -> DoLoop:
    """Leapfrog integrator: coupled position/velocity streams."""
    body = [
        Assign(_a("v"), _a("v") + Scalar("dt") * _a("f")),
        Assign(_a("p"), _a("p") + Scalar("dt") * _a("v")),
    ]
    return DoLoop(
        "extra_leapfrog", body,
        arrays={"v": 64, "p": 64, "f": 64},
        scalars={"dt": 0.05},
        trip=40,
    )


def table_interpolate() -> DoLoop:
    """Gather-driven linear interpolation from a lookup table."""
    body = [
        Assign(Scalar("lo"), Gather("table", Index())),
        Assign(Scalar("hi"), Gather("table", Index() + 1.0)),
        Assign(_a("out"), Scalar("lo") + (_a("frac")) * (Scalar("hi") - Scalar("lo"))),
    ]
    return DoLoop(
        "extra_interp", body,
        arrays={"table": 96, "frac": 64, "out": 64},
        scalars={"lo": 0.0, "hi": 0.0},
        trip=40,
    )


def rms_normalize() -> DoLoop:
    """Running RMS scaling: sqrt + divide against an accumulator."""
    body = [
        Assign(Scalar("acc"), Scalar("acc") * Const(0.95) + _a("x") * _a("x")),
        Assign(_a("y"), _a("x") / (Unary("sqrt", Scalar("acc")) + Const(0.5))),
    ]
    return DoLoop(
        "extra_rms", body,
        arrays={"x": 64, "y": 64},
        scalars={"acc": 1.0},
        live_out=["acc"],
        trip=30,
    )


def clip_and_count() -> DoLoop:
    """Saturating clip with a taken-branch counter."""
    body = [
        If(
            _a("x") > Scalar("limit"),
            then=[
                Assign(_a("y"), Scalar("limit")),
                Assign(Scalar("clipped"), Scalar("clipped") + 1.0),
            ],
            orelse=[Assign(_a("y"), _a("x"))],
        )
    ]
    return DoLoop(
        "extra_clip", body,
        arrays={"x": 64, "y": 64},
        scalars={"limit": 1.2, "clipped": 0.0},
        live_out=["clipped"],
        trip=40,
    )


def moving_max3() -> DoLoop:
    """Sliding-window maximum over three samples (load reuse)."""
    body = [
        Assign(
            _a("y"),
            _max(_max(_a("x", -1), _a("x")), _a("x", 1)),
        )
    ]
    return DoLoop("extra_movmax", body, arrays={"x": 80, "y": 64}, trip=40)


def pivot_search_exit() -> DoLoop:
    """Early-exit pivot search: stop at the first adequate element."""
    from repro.frontend.ast import ExitIf

    body = [
        Assign(Scalar("best"), _max(Scalar("best"), _a("x"))),
        ExitIf(Scalar("best") > Scalar("good_enough")),
    ]
    return DoLoop(
        "extra_pivot", body,
        arrays={"x": 64},
        scalars={"best": 0.0, "good_enough": 1.45},
        live_out=["best"],
        trip=40,
    )


def complex_magnitude() -> DoLoop:
    """|z| over interleaved re/im pairs (stride-2 reads)."""
    body = [
        Assign(
            _a("mag"),
            Unary(
                "sqrt",
                _a("z", 0, 2) * _a("z", 0, 2) + _a("z", 1, 2) * _a("z", 1, 2),
            ),
        )
    ]
    return DoLoop("extra_cmag", body, arrays={"z": 160, "mag": 64}, trip=30)


def extra_kernels() -> List[DoLoop]:
    """All extra kernels in a stable order."""
    return [
        axpby(),
        iir_biquad(),
        convolution5(),
        newton_reciprocal(),
        maxplus_dp(),
        leapfrog(),
        table_interpolate(),
        rms_normalize(),
        clip_and_count(),
        moving_max3(),
        pivot_search_exit(),
        complex_magnitude(),
    ]
