"""SPEC89-FORTRAN/Perfect-Club-style kernels for the corpus.

Hand-written DO loops capturing the idioms those suites contribute
beyond the Livermore set: saxpy/BLAS-1 shapes, stencils, Horner
polynomial evaluation, normalization with sqrt/divide, complex
arithmetic, conditional smoothing, and back-substitution recurrences.
"""

from __future__ import annotations

from typing import List

from repro.frontend.ast import ArrayRef, Assign, Const, DoLoop, If, Index, Scalar, Unary


def _a(name, offset=0, stride=1):
    return ArrayRef(name, offset, stride)


def saxpy() -> DoLoop:
    body = [Assign(_a("y"), Scalar("a") * _a("x") + _a("y"))]
    return DoLoop("spec_saxpy", body, arrays={"x": 64, "y": 64},
                  scalars={"a": 2.5}, trip=40)


def dscal() -> DoLoop:
    body = [Assign(_a("x"), Scalar("a") * _a("x"))]
    return DoLoop("spec_dscal", body, arrays={"x": 64}, scalars={"a": 1.01}, trip=40)


def stencil3() -> DoLoop:
    body = [Assign(_a("out"), (_a("in", -1) + _a("in") + _a("in", 1)) * Const(1.0 / 3.0))]
    return DoLoop("spec_stencil3", body, arrays={"in": 80, "out": 64}, trip=40)


def stencil5() -> DoLoop:
    body = [
        Assign(
            _a("out"),
            Scalar("c0") * _a("in")
            + Scalar("c1") * (_a("in", -1) + _a("in", 1))
            + Scalar("c2") * (_a("in", -2) + _a("in", 2)),
        )
    ]
    return DoLoop("spec_stencil5", body, arrays={"in": 96, "out": 64},
                  scalars={"c0": 0.4, "c1": 0.2, "c2": 0.1}, trip=40)


def horner() -> DoLoop:
    """Horner evaluation with a scalar recurrence per iteration."""
    body = [Assign(Scalar("p"), Scalar("p") * _a("x") + _a("c"))]
    return DoLoop("spec_horner", body, arrays={"x": 64, "c": 64},
                  scalars={"p": 0.0}, live_out=["p"], trip=40)


def complex_multiply() -> DoLoop:
    body = [
        Assign(_a("cr"), _a("ar") * _a("br") - _a("ai") * _a("bi")),
        Assign(_a("ci"), _a("ar") * _a("bi") + _a("ai") * _a("br")),
    ]
    return DoLoop("spec_cmul", body,
                  arrays={"ar": 64, "ai": 64, "br": 64, "bi": 64, "cr": 64, "ci": 64},
                  trip=40)


def normalize() -> DoLoop:
    body = [
        Assign(Scalar("n"), Unary("sqrt", _a("x") * _a("x") + _a("y") * _a("y"))),
        Assign(_a("nx"), _a("x") / (Scalar("n") + Const(0.5))),
        Assign(_a("ny"), _a("y") / (Scalar("n") + Const(0.5))),
    ]
    return DoLoop("spec_normalize", body,
                  arrays={"x": 64, "y": 64, "nx": 64, "ny": 64},
                  scalars={"n": 0.0}, trip=30)


def max_reduction() -> DoLoop:
    body = [
        If(_a("x") > Scalar("best"),
           then=[Assign(Scalar("best"), _a("x")), Assign(Scalar("where"), Index())])
    ]
    return DoLoop("spec_maxred", body, arrays={"x": 64},
                  scalars={"best": 0.0, "where": 0.0},
                  live_out=["best", "where"], trip=40)


def conditional_smooth() -> DoLoop:
    body = [
        If(_a("rough") > Const(1.2),
           then=[Assign(_a("out"), (_a("in", -1) + _a("in", 1)) * Const(0.5))],
           orelse=[Assign(_a("out"), _a("in"))]),
    ]
    return DoLoop("spec_condsmooth", body,
                  arrays={"rough": 64, "in": 80, "out": 64}, trip=40)


def back_substitution() -> DoLoop:
    """Back-substitution style x(i) = (b(i) - c(i)*x(i-1)) / d(i)."""
    body = [Assign(_a("x"), (_a("b") - _a("c") * _a("x", -1)) / _a("d"))]
    return DoLoop("spec_backsub", body,
                  arrays={"x": 64, "b": 64, "c": 64, "d": 64}, trip=30)


def running_average() -> DoLoop:
    body = [
        Assign(Scalar("acc"), Scalar("acc") * Const(0.9) + _a("x") * Const(0.1)),
        Assign(_a("avg"), Scalar("acc")),
    ]
    return DoLoop("spec_runavg", body, arrays={"x": 64, "avg": 64},
                  scalars={"acc": 1.0}, live_out=["acc"], trip=40)


def interleaved_update() -> DoLoop:
    """Even/odd interleaving through stride-2 references."""
    body = [
        Assign(_a("z", 0, 2), _a("x", 0, 2) + _a("x", 1, 2)),
        Assign(_a("z", 1, 2), _a("x", 0, 2) - _a("x", 1, 2)),
    ]
    return DoLoop("spec_interleave", body, arrays={"x": 160, "z": 160}, trip=40)


def spec_kernels() -> List[DoLoop]:
    return [
        saxpy(),
        dscal(),
        stencil3(),
        stencil5(),
        horner(),
        complex_multiply(),
        normalize(),
        max_reduction(),
        conditional_smooth(),
        back_substitution(),
        running_average(),
        interleaved_update(),
    ]
