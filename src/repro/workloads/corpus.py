"""Corpus assembly: the 1,525-loop workload of the paper's §6.

The corpus mixes the hand-written Livermore/SPEC-style kernels with
generated loops, steering the class mix to Table 3's observed
proportions:

    Has Conditional (only)   166 / 1525  (10.9%)
    Has Recurrence (only)    343 / 1525  (22.5%)
    Has Both                  85 / 1525  ( 5.6%)
    Has Neither              931 / 1525  (61.0%)

``paper_corpus()`` returns the full 1,525 loops; pass a smaller ``n``
for quick runs (benchmarks default to a few hundred and scale up via
the REPRO_CORPUS env var).
"""

from __future__ import annotations

import os
from typing import List

from repro.frontend.ast import DoLoop
from repro.workloads.extra import extra_kernels
from repro.workloads.generator import generate_corpus_slice
from repro.workloads.livermore import livermore_kernels
from repro.workloads.spec import spec_kernels

#: Table 3 class counts for the full 1,525-loop corpus.
TABLE3_CLASS_COUNTS = {
    "conditional": 166,
    "recurrence": 343,
    "both": 85,
    "neither": 931,
}

PAPER_CORPUS_SIZE = 1525


def named_kernels() -> List[DoLoop]:
    """The hand-written kernels (Livermore + SPEC-style + extras)."""
    return livermore_kernels() + spec_kernels() + extra_kernels()


def paper_corpus(n: int = PAPER_CORPUS_SIZE, seed: int = 1993) -> List[DoLoop]:
    """Build an ``n``-loop corpus with the paper's class proportions."""
    if n < 1:
        raise ValueError("corpus size must be positive")
    kernels = named_kernels()[:n]
    remaining = n - len(kernels)
    if remaining <= 0:
        return kernels
    loops = list(kernels)
    total = sum(TABLE3_CLASS_COUNTS.values())
    produced = 0
    classes = list(TABLE3_CLASS_COUNTS.items())
    for position, (klass, count) in enumerate(classes):
        if position == len(classes) - 1:
            quota = remaining - produced
        else:
            quota = round(remaining * count / total)
        quota = max(0, min(quota, remaining - produced))
        loops.extend(
            generate_corpus_slice(seed + position, quota, klass)
        )
        produced += quota
    return loops


def default_corpus_size(fallback: int = 300) -> int:
    """Benchmark corpus size: REPRO_CORPUS env var or the fallback."""
    raw = os.environ.get("REPRO_CORPUS", "")
    if raw.strip():
        return max(1, int(raw))
    return fallback
