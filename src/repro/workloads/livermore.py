"""Livermore-loop-style kernels, transcribed into the DO-loop DSL.

The paper schedules all eligible DO loops of the Lawrence Livermore
Loops (plus SPEC89 and Perfect Club).  The original FORTRAN sources are
not part of this reproduction, so each kernel below transcribes the
*innermost* loop of the corresponding Livermore kernel — same dataflow
shape (operation mix, recurrences, conditionals, gathers), modest trip
counts for simulation.  Multidimensional kernels are flattened to their
innermost loop with loop-invariant outer terms, which is exactly what
the paper's modulo scheduler sees as well.
"""

from __future__ import annotations

from typing import List

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    Const,
    DoLoop,
    Gather,
    If,
    Index,
    Scalar,
    Scatter,
    Unary,
)


def _a(name, offset=0, stride=1):
    return ArrayRef(name, offset, stride)


def kernel1_hydro() -> DoLoop:
    """LL1: hydrodynamics fragment."""
    body = [
        Assign(
            _a("x"),
            Scalar("q") + _a("y") * (Scalar("r") * _a("z", 10) + Scalar("t") * _a("z", 11)),
        )
    ]
    return DoLoop(
        "ll1_hydro", body,
        arrays={"x": 64, "y": 64, "z": 80},
        scalars={"q": 0.5, "r": 1.1, "t": 0.9},
        trip=40,
    )


def kernel2_iccg() -> DoLoop:
    """LL2: ICCG excerpt (stride-2 gather-free variant)."""
    body = [
        Assign(
            _a("x", 0, 2),
            _a("x", 0, 2) - _a("v", 0, 2) * _a("x", -1, 2) - _a("v", 1, 2) * _a("x", 1, 2),
        )
    ]
    return DoLoop(
        "ll2_iccg", body,
        arrays={"x": 160, "v": 160},
        trip=30,
    )


def kernel3_inner_product() -> DoLoop:
    """LL3: inner product (the canonical reduction)."""
    body = [Assign(Scalar("q"), Scalar("q") + _a("z") * _a("x"))]
    return DoLoop(
        "ll3_inner", body,
        arrays={"z": 64, "x": 64},
        scalars={"q": 0.0},
        live_out=["q"],
        trip=40,
    )


def kernel4_banded() -> DoLoop:
    """LL4: banded linear equations (innermost update)."""
    body = [
        Assign(Scalar("xz"), Scalar("xz") - _a("x", -1, 5) * _a("y")),
        Assign(_a("w"), Scalar("xz") * Scalar("r")),
    ]
    return DoLoop(
        "ll4_banded", body,
        arrays={"x": 300, "y": 64, "w": 64},
        scalars={"xz": 1.0, "r": 0.25},
        live_out=["xz"],
        trip=40,
    )


def kernel5_tridiag() -> DoLoop:
    """LL5: tri-diagonal elimination, below diagonal (first-order
    recurrence through memory)."""
    body = [Assign(_a("x"), _a("z") * (_a("y") - _a("x", -1)))]
    return DoLoop(
        "ll5_tridiag", body,
        arrays={"x": 64, "y": 64, "z": 64},
        trip=40,
    )


def kernel6_linear_recurrence() -> DoLoop:
    """LL6: general linear recurrence equations (innermost step)."""
    body = [Assign(Scalar("w"), Scalar("w") + _a("b") * _a("w_arr", -1)),
            Assign(_a("w_arr"), Scalar("w"))]
    return DoLoop(
        "ll6_recur", body,
        arrays={"b": 64, "w_arr": 64},
        scalars={"w": 0.1},
        live_out=["w"],
        trip=40,
    )


def kernel7_state() -> DoLoop:
    """LL7: equation of state fragment (wide expression tree)."""
    r, t, q = Scalar("r"), Scalar("t"), Scalar("q")
    body = [
        Assign(
            _a("x"),
            _a("u")
            + r * (_a("z") + r * _a("y"))
            + t * (_a("u", 3) + r * (_a("u", 2) + r * _a("u", 1))
                   + t * (_a("u", 6) + q * (_a("u", 5) + q * _a("u", 4)))),
        )
    ]
    return DoLoop(
        "ll7_state", body,
        arrays={"x": 64, "y": 64, "z": 64, "u": 80},
        scalars={"r": 1.01, "t": 0.97, "q": 1.03},
        trip=40,
    )


def kernel8_adi() -> DoLoop:
    """LL8: ADI integration (flattened innermost fragment)."""
    a11, a12 = Scalar("a11"), Scalar("a12")
    body = [
        Assign(_a("du1"), _a("u1", 1) - _a("u1", -1)),
        Assign(_a("du2"), _a("u2", 1) - _a("u2", -1)),
        Assign(_a("u3"), _a("u3") + a11 * _a("du1") + a12 * _a("du2")),
    ]
    return DoLoop(
        "ll8_adi", body,
        arrays={"u1": 80, "u2": 80, "u3": 64, "du1": 64, "du2": 64},
        scalars={"a11": 0.3, "a12": 0.7},
        trip=40,
    )


def kernel9_integrate() -> DoLoop:
    """LL9: integrate predictors (long dot of invariant coefficients)."""
    terms = Scalar("c0") * _a("p0")
    for j in range(1, 6):
        terms = terms + Scalar(f"c{j}") * _a(f"p{j}")
    body = [Assign(_a("px"), terms)]
    return DoLoop(
        "ll9_integrate", body,
        arrays={"px": 64, **{f"p{j}": 64 for j in range(6)}},
        scalars={f"c{j}": 0.1 * (j + 1) for j in range(6)},
        trip=40,
    )


def kernel10_diff_predictors() -> DoLoop:
    """LL10: difference predictors (chained scalar differences)."""
    body = [
        Assign(Scalar("ar"), _a("cx")),
        Assign(Scalar("br"), Scalar("ar") - _a("px")),
        Assign(_a("px"), Scalar("ar")),
        Assign(Scalar("cr"), Scalar("br") - _a("py")),
        Assign(_a("py"), Scalar("br")),
        Assign(_a("pz"), Scalar("cr")),
    ]
    return DoLoop(
        "ll10_diff", body,
        arrays={"cx": 64, "px": 64, "py": 64, "pz": 64},
        scalars={"ar": 0.0, "br": 0.0, "cr": 0.0},
        trip=40,
    )


def kernel11_first_sum() -> DoLoop:
    """LL11: first sum (prefix-sum recurrence)."""
    body = [Assign(_a("x"), _a("x", -1) + _a("y"))]
    return DoLoop("ll11_prefix", body, arrays={"x": 64, "y": 64}, trip=40)


def kernel12_first_diff() -> DoLoop:
    """LL12: first difference (cross-iteration load reuse)."""
    body = [Assign(_a("x"), _a("y", 1) - _a("y"))]
    return DoLoop("ll12_diff", body, arrays={"x": 64, "y": 80}, trip=40)


def kernel13_pic2d() -> DoLoop:
    """LL13: 2-D particle in cell (gathers via an index array)."""
    body = [
        Assign(Scalar("vx"), Gather("ex", Index()) + Gather("dex", Index())),
        Assign(_a("xx"), _a("xx") + Scalar("vx") * Scalar("dt")),
    ]
    return DoLoop(
        "ll13_pic2d", body,
        arrays={"ex": 96, "dex": 96, "xx": 64},
        scalars={"vx": 0.0, "dt": 0.01},
        trip=40,
    )


def kernel14_pic1d() -> DoLoop:
    """LL14: 1-D particle in cell (gather + scatter)."""
    body = [
        Assign(Scalar("load_v"), Gather("grd", Index())),
        Assign(_a("vx"), _a("vx") + _a("ex") * Scalar("load_v")),
        Assign(Scatter("rho", Index()), _a("vx") * Scalar("q")),
    ]
    return DoLoop(
        "ll14_pic1d", body,
        arrays={"grd": 96, "vx": 64, "ex": 64, "rho": 96},
        scalars={"load_v": 0.0, "q": 1.5},
        trip=40,
    )


def kernel15_casual() -> DoLoop:
    """LL15: casual FORTRAN (data-dependent conditional stores)."""
    body = [
        If(
            _a("vy") > Const(1.0),
            then=[Assign(_a("vs"), _a("vy") * _a("vh"))],
            orelse=[Assign(_a("vs"), _a("vh") - Const(1.0))],
        )
    ]
    return DoLoop("ll15_casual", body, arrays={"vy": 64, "vh": 64, "vs": 64}, trip=40)


def kernel16_monte_carlo() -> DoLoop:
    """LL16: Monte Carlo search (nested data-dependent branching)."""
    body = [
        If(
            _a("zone") < Scalar("mid"),
            then=[
                If(
                    _a("zone", 1) < Scalar("mid"),
                    then=[Assign(Scalar("j"), Scalar("j") + 1.0)],
                    orelse=[Assign(Scalar("k"), Scalar("k") + 1.0)],
                )
            ],
            orelse=[Assign(Scalar("m"), Scalar("m") + _a("zone"))],
        )
    ]
    return DoLoop(
        "ll16_monte", body,
        arrays={"zone": 80},
        scalars={"mid": 1.0, "j": 0.0, "k": 0.0, "m": 0.0},
        live_out=["j", "k", "m"],
        trip=40,
    )


def kernel17_implicit() -> DoLoop:
    """LL17: implicit conditional computation."""
    body = [
        Assign(Scalar("qa"), _a("za", 1) * _a("zr") + _a("za", -1) * _a("zb")
               + _a("zu") + _a("zv")),
        If(
            Scalar("qa") > Const(2.0),
            then=[Assign(_a("za"), Scalar("qa"))],
            orelse=[Assign(_a("za"), _a("zz"))],
        ),
    ]
    return DoLoop(
        "ll17_implicit", body,
        arrays={"za": 80, "zr": 64, "zb": 64, "zu": 64, "zv": 64, "zz": 64},
        scalars={"qa": 0.0},
        trip=40,
    )


def kernel18_hydro2d() -> DoLoop:
    """LL18: 2-D explicit hydrodynamics fragment (flattened)."""
    s, t = Scalar("s"), Scalar("t")
    body = [
        Assign(
            _a("za"),
            (_a("zp", 1) + _a("zq", 1) - _a("zp") - _a("zq"))
            * (_a("zr") + _a("zr", 1)) / (_a("zm") + _a("zm", 1)),
        ),
        Assign(_a("zu"), _a("zu") + s * (_a("za") * (_a("zz") - _a("zz", 1)) - t)),
    ]
    return DoLoop(
        "ll18_hydro2d", body,
        arrays={"za": 64, "zp": 80, "zq": 80, "zr": 80, "zm": 80, "zu": 64, "zz": 80},
        scalars={"s": 0.5, "t": 0.2},
        trip=40,
    )


def kernel19_recurrence() -> DoLoop:
    """LL19: general linear recurrence (two coupled recurrences)."""
    body = [
        Assign(_a("b5"), _a("sa") + Scalar("stb5") * _a("sb")),
        Assign(Scalar("stb5"), _a("b5") - Scalar("stb5")),
    ]
    return DoLoop(
        "ll19_recur", body,
        arrays={"b5": 64, "sa": 64, "sb": 64},
        scalars={"stb5": 0.1},
        live_out=["stb5"],
        trip=40,
    )


def kernel20_transport() -> DoLoop:
    """LL20: discrete ordinates transport (division chain)."""
    body = [
        Assign(
            Scalar("di"),
            _a("y") - _a("g") / (_a("xx", -1) + _a("dk")),
        ),
        Assign(
            Scalar("dn"),
            Const(0.2) / (Scalar("di") + Const(3.0)),
        ),
        Assign(_a("x"), ((_a("w") + _a("v") * Scalar("dn")) * _a("xx", -1) + _a("u"))
               / (_a("vx") + _a("v") * Scalar("dn"))),
        Assign(_a("xx"), (_a("x") - _a("xx", -1)) * Scalar("dn") + _a("xx", -1)),
    ]
    return DoLoop(
        "ll20_transport", body,
        arrays={"y": 64, "g": 64, "dk": 64, "x": 64, "w": 64, "v": 64,
                "u": 64, "vx": 64, "xx": 64},
        scalars={"di": 0.0, "dn": 0.0},
        trip=30,
    )


def kernel21_matmul() -> DoLoop:
    """LL21: matrix product innermost loop (multiply-accumulate)."""
    body = [Assign(_a("px"), _a("px") + Scalar("vy") * _a("cx"))]
    return DoLoop(
        "ll21_matmul", body,
        arrays={"px": 64, "cx": 64},
        scalars={"vy": 1.7},
        trip=40,
    )


def kernel22_planckian() -> DoLoop:
    """LL22: Planckian distribution (exp approximated by division mix)."""
    body = [
        Assign(_a("y"), _a("u") / _a("v")),
        Assign(_a("w"), _a("x") / (_a("y") + Const(1.0))),
    ]
    return DoLoop(
        "ll22_planck", body,
        arrays={"y": 64, "u": 64, "v": 64, "w": 64, "x": 64},
        trip=30,
    )


def kernel23_implicit_hydro() -> DoLoop:
    """LL23: 2-D implicit hydrodynamics fragment."""
    body = [
        Assign(
            Scalar("qa"),
            _a("za", 1) * _a("zr") + _a("za", -1) * _a("zb")
            + _a("zu") * _a("zv") + _a("zz"),
        ),
        Assign(_a("za"), _a("za") + Const(0.175) * (Scalar("qa") - _a("za"))),
    ]
    return DoLoop(
        "ll23_imphydro", body,
        arrays={"za": 80, "zr": 64, "zb": 64, "zu": 64, "zv": 64, "zz": 64},
        scalars={"qa": 0.0},
        trip=40,
    )


def kernel24_first_min() -> DoLoop:
    """LL24: location of first minimum (conditional scalar tracking)."""
    body = [
        If(
            _a("x") < Scalar("xm"),
            then=[Assign(Scalar("xm"), _a("x")), Assign(Scalar("m"), Index())],
        )
    ]
    return DoLoop(
        "ll24_firstmin", body,
        arrays={"x": 64},
        scalars={"xm": 10.0, "m": 0.0},
        live_out=["xm", "m"],
        trip=40,
    )


def livermore_kernels() -> List[DoLoop]:
    """All 24 Livermore-style kernels in order."""
    return [
        kernel1_hydro(),
        kernel2_iccg(),
        kernel3_inner_product(),
        kernel4_banded(),
        kernel5_tridiag(),
        kernel6_linear_recurrence(),
        kernel7_state(),
        kernel8_adi(),
        kernel9_integrate(),
        kernel10_diff_predictors(),
        kernel11_first_sum(),
        kernel12_first_diff(),
        kernel13_pic2d(),
        kernel14_pic1d(),
        kernel15_casual(),
        kernel16_monte_carlo(),
        kernel17_implicit(),
        kernel18_hydro2d(),
        kernel19_recurrence(),
        kernel20_transport(),
        kernel21_matmul(),
        kernel22_planckian(),
        kernel23_implicit_hydro(),
        kernel24_first_min(),
    ]
