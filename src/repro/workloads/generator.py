"""Seeded random DO-loop generator.

The paper's corpus is 1,525 FORTRAN DO loops from Livermore, SPEC89 and
the Perfect Club.  Those sources are unavailable here, so the corpus is
completed with randomly generated loops whose *statistics* are
calibrated to Table 2 (operation counts: median ~13, 90th percentile
~33, a long tail; divider ops in <10% of loops) and whose class mix
(conditional / recurrence / both / neither) is steered to Table 3's
proportions by :mod:`repro.workloads.corpus`.

Generation is fully deterministic given the seed.  Every generated loop
is a legal DoLoop program: subscripts stay in bounds, denominators are
bounded away from zero, and at least one store or live-out scalar keeps
the body alive through dead-code elimination.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Compare,
    Const,
    DoLoop,
    Expr,
    Gather,
    If,
    Index,
    Scalar,
    Unary,
)

#: Loop classes the generator can aim for (Table 3's rows).
CLASSES = ("neither", "conditional", "recurrence", "both")

_ARRAY_POOL = ["aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"]
_INVARIANT_POOL = ["r", "t", "q", "u"]


class LoopGenerator:
    """Deterministic random generator of DoLoop programs."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def generate(self, name: str, klass: str = "neither") -> DoLoop:
        """Generate one loop aiming for the given Table 3 class."""
        if klass not in CLASSES:
            raise ValueError(f"unknown class {klass!r}; pick from {CLASSES}")
        rng = self.rng
        n_stmts = self._draw_size()
        n_arrays = min(len(_ARRAY_POOL), max(2, rng.randint(2, min(6, 2 + n_stmts))))
        arrays = _ARRAY_POOL[:n_arrays]
        want_recurrence = klass in ("recurrence", "both")
        want_conditional = klass in ("conditional", "both")
        if want_recurrence:
            # Recurrence loops may read what they write (that is the point).
            self._sources = list(arrays)
            self._dests = list(arrays)
        else:
            # Partition reads from writes so no accidental memory
            # recurrence sneaks into a "neither"/"conditional" loop.
            half = max(1, n_arrays // 2)
            self._dests = arrays[:half]
            self._sources = arrays[half:] or arrays[:1]
        rng.shuffle(self._dests)
        self._scalars = {}
        self._live_out: List[str] = []
        self._next_scalar = 0
        self._used_dests: List[str] = []
        self._allow_div = rng.random() < 0.08
        self._allow_gather = rng.random() < 0.05

        stmts: List = []
        if want_recurrence:
            stmts.append(self._recurrence_stmt())
            n_stmts -= 1
        for _ in range(max(0, n_stmts)):
            stmts.append(self._plain_stmt(allow_recurrence=want_recurrence))
        if want_conditional:
            stmts.append(self._conditional_stmt())
        if not stmts:
            stmts.append(self._plain_stmt(allow_recurrence=False))

        return DoLoop(
            name=name,
            body=stmts,
            arrays={a: 220 for a in arrays},
            scalars=dict(self._scalars),
            start=4,
            trip=24,
            live_out=list(self._live_out),
        )

    # ------------------------------------------------------------------
    def _draw_size(self) -> int:
        """Statement count, long-tailed like Table 2's op counts."""
        roll = self.rng.random()
        if roll < 0.45:
            return self.rng.randint(1, 2)
        if roll < 0.72:
            return 3
        if roll < 0.92:
            return self.rng.randint(4, 6)
        if roll < 0.985:
            return self.rng.randint(7, 12)
        return self.rng.randint(13, 30)

    def _fresh_scalar(self, init: float) -> str:
        name = f"s{self._next_scalar}"
        self._next_scalar += 1
        self._scalars[name] = init
        return name

    def _invariant(self) -> Scalar:
        name = self.rng.choice(_INVARIANT_POOL)
        self._scalars.setdefault(name, round(0.6 + 0.9 * self.rng.random(), 3))
        return Scalar(name)

    def _pick_dest(self) -> str:
        """A store target not yet used (keeps one store per array)."""
        for candidate in self._dests:
            if candidate not in self._used_dests:
                self._used_dests.append(candidate)
                return candidate
        return self.rng.choice(self._dests)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _leaf(self) -> Expr:
        roll = self.rng.random()
        if roll < 0.62:
            array = self.rng.choice(self._sources)
            offset = self.rng.choice([-2, -1, 0, 0, 0, 1, 2])
            return ArrayRef(array, offset)
        if roll < 0.82:
            return self._invariant()
        if roll < 0.95:
            return Const(round(0.5 + self.rng.random(), 3))
        if self._allow_gather:
            return Gather(self.rng.choice(self._sources), Index())
        return Index() * Const(0.01)

    def _expr(self, depth: int) -> Expr:
        if depth <= 0:
            return self._leaf()
        roll = self.rng.random()
        if roll < 0.06:
            return Unary("abs", self._expr(depth - 1))
        if roll < 0.10 and self._allow_div:
            return Unary("sqrt", self._expr(depth - 1))
        if roll < 0.16 and self._allow_div:
            # Bounded-away-from-zero denominator keeps simulations finite.
            return BinOp("/", self._expr(depth - 1), self._leaf() + 2.0)
        op = self.rng.choice(["+", "+", "-", "*", "*", "min", "max"])
        return BinOp(op, self._expr(depth - 1), self._expr(depth - 1))

    def _depth(self) -> int:
        return self.rng.choice([1, 1, 1, 2, 2, 2, 3])

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _plain_stmt(self, allow_recurrence: bool):
        roll = self.rng.random()
        if roll < 0.62:
            dest = self._pick_dest()
            return Assign(ArrayRef(dest), self._expr(self._depth()))
        if roll < 0.88:
            name = self._fresh_scalar(0.0)
            self._live_out.append(name)
            return Assign(Scalar(name), Scalar(name) + self._expr(self._depth()))
        if allow_recurrence:
            return self._recurrence_stmt()
        dest = self._pick_dest()
        return Assign(ArrayRef(dest), self._expr(self._depth()))

    def _recurrence_stmt(self):
        """A statement creating a non-trivial recurrence circuit."""
        if self.rng.random() < 0.5:
            # Memory recurrence: dst(i) = expr + dst(i - d) * c
            dest = self._pick_dest()
            distance = self.rng.choice([1, 1, 2, 3])
            carried = ArrayRef(dest, -distance) * Const(round(0.4 + 0.4 * self.rng.random(), 3))
            return Assign(ArrayRef(dest), self._expr(self._depth() - 1) + carried)
        # Scalar recurrence with a multiply in the cycle: s = s*c + expr
        name = self._fresh_scalar(0.5)
        self._live_out.append(name)
        decay = Const(round(0.5 + 0.4 * self.rng.random(), 3))
        return Assign(Scalar(name), Scalar(name) * decay + self._expr(self._depth() - 1))

    def _conditional_stmt(self) -> If:
        """A data-dependent conditional over array stores.

        Arms only store to arrays (distinct elements per arm), so the
        conditional does not by itself manufacture a recurrence circuit —
        whether the loop also "has recurrence" stays controlled by the
        recurrence statements.
        """
        rng = self.rng
        condition = Compare(
            rng.choice(["<", "<=", ">", ">="]),
            ArrayRef(rng.choice(self._sources), 0),
            Const(round(0.8 + 0.4 * rng.random(), 3)),
        )
        dest = self._pick_dest()
        then_part = [Assign(ArrayRef(dest), self._expr(self._depth()))]
        if rng.random() < 0.6:
            else_part = [Assign(ArrayRef(dest), self._expr(self._depth() - 1))]
        else:
            else_part = []
        return If(condition, then=then_part, orelse=else_part)


def generate_corpus_slice(
    seed: int, count: int, klass: str, name_prefix: str = "gen"
) -> List[DoLoop]:
    """Generate ``count`` loops of one class with one deterministic seed."""
    generator = LoopGenerator(seed)
    return [
        generator.generate(f"{name_prefix}_{klass}_{index}", klass)
        for index in range(count)
    ]
