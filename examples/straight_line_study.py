"""Straight-line scheduling study: the paper's §8 'future experimentation'.

Schedules a corpus of basic blocks three ways — classic critical-path
list scheduling, Goodman/Hsu-style IPS, and the bidirectional slack
framework in acyclic mode — and reports makespan and peak register
pressure per scheduler, plus a per-block view of where slack's
lifetime sensitivity pays off.

Run:  python examples/straight_line_study.py [n_blocks]
"""

import sys

from repro.core.acyclic import acyclic_ddg, schedule_ips, schedule_list, schedule_slack
from repro.frontend import compile_loop
from repro.machine import cydra5
from repro.workloads import LoopGenerator, named_kernels


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    machine = cydra5()
    generator = LoopGenerator(2024)
    programs = [generator.generate(f"block{i}", "neither") for i in range(count)]
    programs += named_kernels()[:6]

    header = (
        f"{'block':<14} {'ops':>4} | {'list len/prs':>12} | "
        f"{'ips len/prs':>12} | {'slack len/prs':>13}"
    )
    print(header)
    print("-" * len(header))
    totals = {"list": [0, 0], "ips": [0, 0], "slack": [0, 0]}
    for program in programs:
        loop = compile_loop(program)
        ddg = acyclic_ddg(loop, machine)
        base = schedule_list(loop, machine, ddg)
        ips = schedule_ips(loop, machine, ddg, pressure_limit=max(2, base.pressure - 2))
        slack = schedule_slack(loop, machine, ddg)
        for name, result in (("list", base), ("ips", ips), ("slack", slack)):
            totals[name][0] += result.length
            totals[name][1] += result.pressure
        print(
            f"{program.name:<14} {len(loop.real_ops):>4} | "
            f"{base.length:>6}/{base.pressure:<5} | "
            f"{ips.length:>6}/{ips.pressure:<5} | "
            f"{slack.length:>6}/{slack.pressure:<6}"
        )
    print("-" * len(header))
    for name, (length, pressure) in totals.items():
        print(f"{name:>6}: total makespan {length}, total peak pressure {pressure}")


if __name__ == "__main__":
    main()
