"""Quickstart: software pipeline one loop, end to end.

Takes the paper's Figure 1 sample loop from source form to a validated,
register-allocated software pipeline:

    do i = 3, n
        x(i) = x(i-1) + y(i-2)
        y(i) = y(i-1) + x(i-2)
    enddo

Run:  python examples/quickstart.py
"""

from repro.bounds import MinDist, min_avg, rr_max_live
from repro.codegen import emit_kernel, generate_kernel
from repro.core import modulo_schedule, validate_schedule
from repro.frontend import ArrayRef, Assign, DoLoop, compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.regalloc import allocate_registers
from repro.simulator import initial_state, run_pipelined, run_sequential


def main() -> None:
    # 1. Write the loop in the DO-loop DSL (Figure 1 of the paper).
    program = DoLoop(
        name="figure1",
        start=2,
        trip=40,
        body=[
            Assign(ArrayRef("x"), ArrayRef("x", -1) + ArrayRef("y", -2)),
            Assign(ArrayRef("y"), ArrayRef("y", -1) + ArrayRef("x", -2)),
        ],
        arrays={"x": 60, "y": 60},
    )

    # 2. Compile: if-conversion, dependence analysis with exact omegas,
    #    load/store elimination (the loads of x(i-1), y(i-2), ... become
    #    register flow from earlier iterations), SSA, brtop.
    loop = compile_loop(program)
    print("compiled loop body:")
    print(loop.dump())

    # 3. Modulo schedule with the bidirectional slack scheduler.
    machine = cydra5()
    ddg = build_ddg(loop, machine)
    result = modulo_schedule(loop, machine, algorithm="slack", ddg=ddg)
    print(f"\nMII = max(ResMII {result.res_mii}, RecMII {result.rec_mii})"
          f" = {result.mii}; achieved II = {result.ii}"
          f" ({'optimal' if result.optimal else 'suboptimal'})")
    print(result.schedule.render())

    # 4. Prove the schedule legal and measure its register pressure.
    violations = validate_schedule(result.schedule, ddg)
    print(f"\nstatic validation: {len(violations)} violations")
    pressure = rr_max_live(loop, ddg, result.schedule.times, result.ii)
    bound = min_avg(loop, ddg, MinDist(ddg, result.ii), result.ii)
    print(f"register pressure: MaxLive = {pressure}, MinAvg bound = {bound}")

    # 5. Execute the pipeline and compare against sequential semantics.
    sequential = run_sequential(program, initial_state(program))
    pipelined = run_pipelined(result.schedule, initial_state(program))
    matches = all(
        abs(a - b) < 1e-9
        for name in program.arrays
        for a, b in zip(sequential.arrays[name], pipelined.arrays[name])
    )
    print(f"pipelined execution matches sequential: {matches}")

    # 6. Allocate rotating registers and emit kernel-only VLIW code.
    assignment = allocate_registers(result.schedule, ddg)
    kernel = generate_kernel(result.schedule, assignment)
    print("\n" + emit_kernel(kernel))


if __name__ == "__main__":
    main()
