"""Pipeline the Livermore-style kernel suite and compare schedulers.

For every kernel: compute the lower bounds, schedule with the paper's
bidirectional slack scheduler and with the Cydrome-style baseline, and
report achieved II and register pressure side by side — a miniature of
the paper's Tables 3/4 on named, recognizable loops.

Run:  python examples/livermore_pipeline.py
"""

from repro.bounds import MinDist, min_avg, rr_max_live
from repro.core import modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.workloads import livermore_kernels


def main() -> None:
    machine = cydra5()
    header = (
        f"{'kernel':<16} {'ops':>4} {'MII':>4} | "
        f"{'slack II':>8} {'MaxLive':>8} | {'cydrome II':>10} {'MaxLive':>8} | {'bound':>6}"
    )
    print(header)
    print("-" * len(header))

    totals = {"slack": 0, "cydrome": 0, "mii": 0}
    for program in livermore_kernels():
        loop = compile_loop(program)
        ddg = build_ddg(loop, machine)
        rows = {}
        for algorithm in ("slack", "cydrome"):
            result = modulo_schedule(loop, machine, algorithm=algorithm, ddg=ddg)
            if result.success:
                pressure = rr_max_live(loop, ddg, result.schedule.times, result.ii)
            else:
                pressure = -1
            rows[algorithm] = (result, pressure)
        slack_result, slack_pressure = rows["slack"]
        cyd_result, cyd_pressure = rows["cydrome"]
        bound = min_avg(loop, ddg, MinDist(ddg, slack_result.ii), slack_result.ii)
        totals["slack"] += slack_result.ii
        totals["cydrome"] += cyd_result.ii
        totals["mii"] += slack_result.mii
        print(
            f"{program.name:<16} {len(loop.real_ops):>4} {slack_result.mii:>4} | "
            f"{slack_result.ii:>8} {slack_pressure:>8} | "
            f"{cyd_result.ii:>10} {cyd_pressure:>8} | {bound:>6}"
        )

    print("-" * len(header))
    print(
        f"total II: slack {totals['slack']} vs cydrome {totals['cydrome']} "
        f"(MII floor {totals['mii']})"
    )


if __name__ == "__main__":
    main()
