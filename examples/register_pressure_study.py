"""Register-pressure study: how the bidirectional heuristic earns its keep.

Reproduces the paper's §7 argument in miniature: over a generated
corpus, measure MaxLive - MinAvg for (a) the bidirectional slack
scheduler, (b) the same framework with early-only placement, and
(c) the Cydrome-style baseline — then show the load-latency robustness
claim by re-running with a different memory latency.

Run:  python examples/register_pressure_study.py [corpus_size]
"""

import sys

from repro.core import modulo_schedule
from repro.experiments import cumulative_at, run_corpus
from repro.machine import cydra5
from repro.workloads import paper_corpus


def summarize(label, metrics):
    gaps = [m.pressure_gap for m in metrics if m.success]
    live = [m.max_live for m in metrics if m.success]
    print(
        f"{label:<24} optimal-pressure {cumulative_at(gaps, 0):5.1f}%   "
        f"within-10 {cumulative_at(gaps, 10):5.1f}%   "
        f"sum MaxLive {sum(live):>6}   "
        f"II=MII {100 * sum(1 for m in metrics if m.optimal) / len(metrics):5.1f}%"
    )


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    loops = paper_corpus(size)
    machine = cydra5()

    print(f"=== register pressure over {size} loops (load latency 13) ===")
    for algorithm, label in (
        ("slack", "bidirectional slack"),
        ("unidirectional", "early-only slack"),
        ("cydrome", "cydrome baseline"),
    ):
        summarize(label, run_corpus(loops, machine, algorithm=algorithm))

    # §7: "other experiments with different latencies for the functional
    # units give very similar performance results".
    for latency in (2, 27):
        alt_machine = cydra5(load_latency=latency)
        print(f"\n=== load latency {latency} ===")
        summarize("bidirectional slack", run_corpus(loops, alt_machine, algorithm="slack"))


if __name__ == "__main__":
    main()
