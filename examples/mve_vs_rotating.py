"""Why rotating register files exist: kernel-only code vs MVE (§2.3).

For each Livermore-style kernel, schedules the loop once and then
generates code two ways: kernel-only (rotating files + predication —
one kernel copy) and modulo variable expansion (conventional machine —
prologue + unrolled kernel + epilogue).  Prints the unroll factor, the
code-expansion multiple, and the register comparison.

Run:  python examples/mve_vs_rotating.py
"""

from repro.bounds import rr_max_live
from repro.codegen.mve import plan_mve
from repro.core import modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.workloads import livermore_kernels


def main() -> None:
    machine = cydra5()
    header = (
        f"{'kernel':<16} {'II':>4} {'stages':>6} | {'rotating RRs':>12} | "
        f"{'MVE unroll':>10} {'MVE regs':>9} {'expansion':>10}"
    )
    print(header)
    print("-" * len(header))
    total_kernel_only = 0
    total_mve = 0
    for program in livermore_kernels():
        loop = compile_loop(program)
        ddg = build_ddg(loop, machine)
        result = modulo_schedule(loop, machine, ddg=ddg)
        if not result.success:
            continue
        pressure = rr_max_live(loop, ddg, result.schedule.times, result.ii)
        plan = plan_mve(result.schedule, ddg, policy="power2")
        total_kernel_only += plan.kernel_ops
        total_mve += plan.total_ops
        print(
            f"{program.name:<16} {result.ii:>4} {result.schedule.stages:>6} | "
            f"{pressure:>12} | {plan.unroll:>10} {plan.total_registers:>9} "
            f"{plan.expansion:>9.2f}x"
        )
    print("-" * len(header))
    print(
        f"total code: kernel-only {total_kernel_only} ops vs "
        f"MVE {total_mve} ops ({total_mve / total_kernel_only:.1f}x) — "
        "the expansion the rotating register file eliminates"
    )


if __name__ == "__main__":
    main()
