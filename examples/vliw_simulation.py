"""Run generated kernel-only code on the register-level VLIW simulator.

Compiles a conditional reduction (if-converted to predicated code),
schedules it, allocates the three register files, generates kernel-only
code, executes the kernel against real rotating register files, and
cross-checks against both the dataflow executor and the sequential
interpreter — the full hardware/software stack of the paper in one run.

Run:  python examples/vliw_simulation.py
"""

from repro.codegen import emit_kernel, generate_kernel
from repro.core import modulo_schedule
from repro.frontend import ArrayRef, Assign, Const, DoLoop, If, Scalar, compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.regalloc import allocate_registers
from repro.simulator import initial_state, run_pipelined, run_sequential
from repro.simulator.vliw import run_vliw


def main() -> None:
    program = DoLoop(
        name="clipped_sum",
        body=[
            If(
                ArrayRef("x") > Const(1.0),
                then=[
                    Assign(Scalar("hi"), Scalar("hi") + ArrayRef("x")),
                    Assign(ArrayRef("z"), ArrayRef("x") * 0.5),
                ],
                orelse=[Assign(ArrayRef("z"), ArrayRef("x"))],
            )
        ],
        arrays={"x": 60, "z": 60},
        scalars={"hi": 0.0},
        live_out=["hi"],
        trip=40,
    )
    machine = cydra5()
    loop = compile_loop(program)
    ddg = build_ddg(loop, machine)
    result = modulo_schedule(loop, machine, ddg=ddg)
    assignment = allocate_registers(result.schedule, ddg)
    kernel = generate_kernel(result.schedule, assignment)

    print(emit_kernel(kernel))
    print(
        f"\nfiles: RR={assignment.rr_registers} "
        f"(MaxLive {assignment.rr.max_live}, overshoot {assignment.rr.overshoot}), "
        f"ICR={assignment.icr_registers}, GPR={assignment.gpr_registers}"
    )

    sequential = run_sequential(program, initial_state(program))
    dataflow = run_pipelined(result.schedule, initial_state(program))
    register_level = run_vliw(kernel, initial_state(program))

    def max_diff(a, b):
        return max(
            abs(x - y) for name in program.arrays for x, y in zip(a.arrays[name], b.arrays[name])
        )

    print(f"\nsequential 'hi'      = {sequential.scalars['hi']:.6f}")
    print(f"dataflow 'hi'        = {dataflow.scalars['hi']:.6f}")
    print(f"register-level 'hi'  = {register_level.scalars['hi']:.6f}")
    print(f"max |seq - dataflow| over arrays       = {max_diff(sequential, dataflow):.2e}")
    print(f"max |seq - register-level| over arrays = {max_diff(sequential, register_level):.2e}")


if __name__ == "__main__":
    main()
