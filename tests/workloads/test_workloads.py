"""Unit tests for the kernels, generator and corpus assembly."""

from repro.bounds import recurrence_ops
from repro.frontend import DoLoop, compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.workloads import (
    CLASSES,
    PAPER_CORPUS_SIZE,
    TABLE3_CLASS_COUNTS,
    LoopGenerator,
    default_corpus_size,
    generate_corpus_slice,
    livermore_kernels,
    named_kernels,
    paper_corpus,
    spec_kernels,
)

MACHINE = cydra5()


def test_kernel_counts():
    from repro.workloads import extra_kernels

    assert len(livermore_kernels()) == 24
    assert len(spec_kernels()) == 12
    assert len(extra_kernels()) == 12
    assert len(named_kernels()) == 48


def test_kernel_names_unique():
    names = [k.name for k in named_kernels()]
    assert len(names) == len(set(names))


def test_all_kernels_compile():
    for program in named_kernels():
        loop = compile_loop(program)
        assert loop.finalized
        assert len(loop.real_ops) >= 3


def test_class_coverage_in_kernels():
    """The hand-written set must exercise all four Table 3 classes."""
    seen = set()
    for program in named_kernels():
        loop = compile_loop(program)
        ddg = build_ddg(loop, MACHINE)
        has_c = bool(loop.meta["has_conditional"])
        from repro.bounds import recmii

        has_r = recmii(ddg) > 1 or bool(recurrence_ops(ddg))
        seen.add((has_c, has_r))
    assert seen == {(False, False), (False, True), (True, False), (True, True)}


def test_generator_is_deterministic():
    a = LoopGenerator(42).generate("g", "recurrence")
    b = LoopGenerator(42).generate("g", "recurrence")
    assert a.body == b.body
    assert a.arrays == b.arrays
    assert a.scalars == b.scalars


def test_generator_distinct_seeds_differ():
    a = LoopGenerator(1).generate("g", "neither")
    b = LoopGenerator(2).generate("g", "neither")
    assert a.body != b.body or a.arrays != b.arrays


def test_generator_rejects_unknown_class():
    import pytest

    with pytest.raises(ValueError):
        LoopGenerator(0).generate("g", "bogus")


def test_generated_classes_have_requested_features():
    generator = LoopGenerator(5)
    for klass in CLASSES:
        for index in range(8):
            program = generator.generate(f"k{index}", klass)
            loop = compile_loop(program)
            has_c = bool(loop.meta["has_conditional"])
            if klass in ("conditional", "both"):
                assert has_c, f"{klass} loop lacks a conditional"
            else:
                assert not has_c
            if klass in ("recurrence", "both"):
                ddg = build_ddg(loop, MACHINE)
                from repro.bounds import recmii

                assert recmii(ddg) > 1 or recurrence_ops(ddg), (
                    f"{klass} loop lacks a recurrence"
                )


def test_neither_loops_have_no_nontrivial_recurrence():
    generator = LoopGenerator(9)
    for index in range(10):
        program = generator.generate(f"n{index}", "neither")
        loop = compile_loop(program)
        ddg = build_ddg(loop, MACHINE)
        assert not recurrence_ops(ddg)


def test_generate_corpus_slice():
    loops = generate_corpus_slice(seed=3, count=5, klass="conditional")
    assert len(loops) == 5
    assert all(isinstance(p, DoLoop) for p in loops)
    assert len({p.name for p in loops}) == 5


def test_paper_corpus_size_and_composition():
    loops = paper_corpus(100, seed=11)
    assert len(loops) == 100
    assert loops[0].name == "ll1_hydro"  # named kernels lead
    assert len({p.name for p in loops}) == 100


def test_paper_corpus_small_n_truncates_kernels():
    loops = paper_corpus(5)
    assert len(loops) == 5


def test_paper_corpus_full_size_default():
    assert PAPER_CORPUS_SIZE == 1525
    assert sum(TABLE3_CLASS_COUNTS.values()) == 1525


def test_default_corpus_size_env(monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS", "123")
    assert default_corpus_size() == 123
    monkeypatch.setenv("REPRO_CORPUS", "")
    assert default_corpus_size(77) == 77
