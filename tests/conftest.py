"""Shared fixtures and hand-built IR loops for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import DType, LoopBody, Opcode, Operand, ValueKind
from repro.machine import cydra5


@pytest.fixture(scope="session")
def machine():
    """The paper's Table 1 machine with the default 13-cycle loads."""
    return cydra5()


def build_figure1_loop() -> LoopBody:
    """The paper's Figure 1 sample loop, after load/store elimination.

    do i = 3, n
        x(i) = x(i-1) + y(i-2)
        y(i) = y(i-1) + x(i-2)
    enddo

    Loads of x(i-1), y(i-2), y(i-1), x(i-2) are replaced by register flow
    from earlier iterations; the stores and their address induction
    variables remain.
    """
    loop = LoopBody("figure1")
    xv = loop.new_value("x", DType.FLOAT)
    yv = loop.new_value("y", DType.FLOAT)
    ax = loop.new_value("ax", DType.ADDR)
    ay = loop.new_value("ay", DType.ADDR)
    four = loop.constant(4, DType.ADDR)

    loop.add_op(Opcode.ADDR_ADD, ax, [Operand(ax, back=1), Operand(four)])
    loop.add_op(Opcode.ADDR_ADD, ay, [Operand(ay, back=1), Operand(four)])
    loop.add_op(Opcode.ADD_F, xv, [Operand(xv, back=1), Operand(yv, back=2)])
    loop.add_op(Opcode.ADD_F, yv, [Operand(yv, back=1), Operand(xv, back=2)])
    store_x = loop.add_op(Opcode.STORE, None, [Operand(ax), Operand(xv)], array="x")
    store_y = loop.add_op(Opcode.STORE, None, [Operand(ay), Operand(yv)], array="y")
    loop.add_op(Opcode.BRTOP)
    loop.meta["has_conditional"] = False
    return loop.finalize()


def build_accumulator_loop() -> LoopBody:
    """A dot-product-style reduction: s = s + x(i) * y(i), loads kept."""
    loop = LoopBody("dotprod")
    ax = loop.new_value("ax", DType.ADDR)
    ay = loop.new_value("ay", DType.ADDR)
    xv = loop.new_value("x", DType.FLOAT)
    yv = loop.new_value("y", DType.FLOAT)
    pv = loop.new_value("p", DType.FLOAT)
    sv = loop.new_value("s", DType.FLOAT)
    four = loop.constant(4, DType.ADDR)

    loop.add_op(Opcode.ADDR_ADD, ax, [Operand(ax, back=1), Operand(four)])
    loop.add_op(Opcode.ADDR_ADD, ay, [Operand(ay, back=1), Operand(four)])
    loop.add_op(Opcode.LOAD, xv, [Operand(ax)], array="x")
    loop.add_op(Opcode.LOAD, yv, [Operand(ay)], array="y")
    loop.add_op(Opcode.MUL_F, pv, [Operand(xv), Operand(yv)])
    loop.add_op(Opcode.ADD_F, sv, [Operand(sv, back=1), Operand(pv)])
    loop.add_op(Opcode.BRTOP)
    loop.live_out["s"] = sv
    return loop.finalize()


def build_divider_loop() -> LoopBody:
    """A loop with a float divide (non-pipelined divider pressure)."""
    loop = LoopBody("divloop")
    ax = loop.new_value("ax", DType.ADDR)
    xv = loop.new_value("x", DType.FLOAT)
    qv = loop.new_value("q", DType.FLOAT)
    four = loop.constant(4, DType.ADDR)
    cv = loop.invariant("c", DType.FLOAT)

    loop.add_op(Opcode.ADDR_ADD, ax, [Operand(ax, back=1), Operand(four)])
    load = loop.add_op(Opcode.LOAD, xv, [Operand(ax)], array="x")
    loop.add_op(Opcode.DIV_F, qv, [Operand(xv), Operand(cv)])
    store = loop.add_op(Opcode.STORE, None, [Operand(ax), Operand(qv)], array="x")
    loop.add_mem_dep(load, store, omega=0)  # anti: read x(i) before overwriting it
    loop.add_op(Opcode.BRTOP)
    return loop.finalize()


@pytest.fixture
def figure1_loop():
    return build_figure1_loop()


@pytest.fixture
def accumulator_loop():
    return build_accumulator_loop()


@pytest.fixture
def divider_loop():
    return build_divider_loop()
