"""Unit tests for the Machine description and unit binding."""

import pytest

from repro.ir import DType, LoopBody, Opcode, Operand
from repro.machine import Machine, UnitClass, cydra5

from tests.conftest import build_figure1_loop


def test_pseudo_ops_have_no_unit_and_zero_latency(machine):
    loop = build_figure1_loop()
    assert machine.unit_class_index(Opcode.START) is None
    assert machine.unit_class_index(Opcode.STOP) is None
    assert machine.latency(loop.start) == 0
    assert machine.latency(loop.stop) == 0


def test_unknown_opcode_raises():
    lonely = Machine("lonely", [UnitClass("U", 1, True, ((Opcode.ADD_F, 1),))])
    with pytest.raises(KeyError):
        lonely.unit_class_index(Opcode.LOAD)


def test_duplicate_opcode_claim_rejected():
    unit = UnitClass("U", 1, True, ((Opcode.ADD_F, 1),))
    with pytest.raises(ValueError):
        Machine("dup", [unit, unit])


def test_binding_covers_exactly_real_ops(machine):
    loop = build_figure1_loop()
    binding = machine.bind_units(loop)
    bound = set(binding)
    expected = {op.oid for op in loop.real_ops}
    assert bound == expected


def test_binding_balances_across_instances(machine):
    """Four address adds over two Address ALUs must land two per ALU."""
    loop = LoopBody("addr4")
    four = loop.constant(4, DType.ADDR)
    for i in range(4):
        value = loop.new_value(f"a{i}", DType.ADDR)
        loop.add_op(Opcode.ADDR_ADD, value, [Operand(value, back=1), Operand(four)])
    loop.finalize()
    binding = machine.bind_units(loop)
    alu_index = machine.unit_class_index(Opcode.ADDR_ADD)
    per_instance = {}
    for unit in binding.values():
        assert unit[0] == alu_index
        per_instance[unit[1]] = per_instance.get(unit[1], 0) + 1
    assert per_instance == {0: 2, 1: 2}


def test_binding_balances_busy_cycles_not_op_counts():
    """A sqrt (21 busy cycles) should outweigh several 1-cycle ops."""
    machine = Machine(
        "div2",
        [
            UnitClass(
                "Divider",
                2,
                False,
                ((Opcode.DIV_F, 17), (Opcode.SQRT_F, 21)),
            )
        ],
    )
    loop = LoopBody("divs")
    values = [loop.new_value(f"v{i}", DType.FLOAT) for i in range(3)]
    src = loop.invariant("c", DType.FLOAT)
    loop.add_op(Opcode.SQRT_F, values[0], [Operand(src)])
    loop.add_op(Opcode.DIV_F, values[1], [Operand(src), Operand(src)])
    loop.add_op(Opcode.DIV_F, values[2], [Operand(src), Operand(src)])
    loop.finalize()
    binding = machine.bind_units(loop)
    # sqrt(21) goes to instance 0; both divides (17+17) go to instance 1?
    # No: first div goes to the lighter instance 1, second to instance 0
    # (21 vs 17 after one div) -- the point is busy cycles drive choice.
    instances = [binding[op.oid][1] for op in loop.real_ops]
    assert instances[0] != instances[1]


def test_total_instances(machine):
    assert machine.total_instances() == 2 + 2 + 1 + 1 + 1 + 1


def test_cydra5_name_mentions_load_latency():
    assert "17" in cydra5(load_latency=17).name
