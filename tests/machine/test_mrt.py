"""Unit tests for the modulo resource table."""

import pytest

from repro.ir import DType, LoopBody, Opcode, Operand
from repro.machine import ModuloResourceTable

from tests.conftest import build_divider_loop, build_figure1_loop


def _mrt(machine, loop, ii):
    return ModuloResourceTable(machine, ii, machine.bind_units(loop))


def test_place_and_conflict_same_row(machine):
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 0)
    # Second float add bound to the single Adder conflicts at 0 and 2 (mod 2).
    assert not mrt.fits(adds[1], 0)
    assert not mrt.fits(adds[1], 2)
    assert mrt.fits(adds[1], 1)
    assert mrt.conflicts(adds[1], 2) == [adds[0].oid]


def test_modulo_wraparound(machine):
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 3)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 7)  # row 1
    assert not mrt.fits(adds[1], 1)
    assert not mrt.fits(adds[1], 4)
    assert mrt.fits(adds[1], 0)


def test_remove_releases_reservation(machine):
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 0)
    mrt.remove(adds[0], 0)
    assert mrt.occupancy() == 0
    assert mrt.fits(adds[1], 0)


def test_double_place_raises(machine):
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 0)
    with pytest.raises(ValueError):
        mrt.place(adds[1], 2)


def test_divider_footprint_spans_full_latency(machine):
    loop = build_divider_loop()
    mrt = _mrt(machine, loop, 20)
    div = next(op for op in loop.real_ops if op.opcode is Opcode.DIV_F)
    mrt.place(div, 2)
    assert mrt.occupancy() == 17


def test_divider_longer_than_ii_self_conflicts(machine):
    loop = build_divider_loop()
    mrt = _mrt(machine, loop, 10)
    div = next(op for op in loop.real_ops if op.opcode is Opcode.DIV_F)
    assert mrt.conflicts(div, 0) == [-1]


def test_two_divides_conflict_when_windows_overlap(machine):
    loop = LoopBody("twodiv")
    c = loop.invariant("c", DType.FLOAT)
    v1 = loop.new_value("v1", DType.FLOAT)
    v2 = loop.new_value("v2", DType.FLOAT)
    loop.add_op(Opcode.DIV_F, v1, [Operand(c), Operand(c)])
    loop.add_op(Opcode.DIV_F, v2, [Operand(c), Operand(c)])
    loop.finalize()
    mrt = _mrt(machine, loop, 40)
    divs = [op for op in loop.real_ops if op.opcode is Opcode.DIV_F]
    mrt.place(divs[0], 0)
    assert not mrt.fits(divs[1], 10)  # inside the 17-cycle window
    assert not mrt.fits(divs[1], 39)  # wraps into cycle 0..16? no: 39..15
    assert mrt.fits(divs[1], 17)


def test_pseudo_ops_need_no_resources(machine):
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 2)
    mrt.place(loop.start, 0)
    mrt.place(loop.stop, 5)
    assert mrt.occupancy() == 0
    assert mrt.fits(loop.start, 0)


def test_render_shows_occupants(machine):
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 1)
    text = mrt.render()
    assert "Adder[0]" in text
    assert str(adds[0].oid) in text


def test_place_longer_than_ii_raises(machine):
    loop = build_divider_loop()
    mrt = _mrt(machine, loop, 10)
    div = next(op for op in loop.real_ops if op.opcode is Opcode.DIV_F)
    with pytest.raises(ValueError):
        mrt.place(div, 0)


def test_place_conflict_message_names_blockers(machine):
    # place() verifies the footprint with a cheap occupancy re-check; the
    # full blocker list must still be rebuilt for the error message.
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 0)
    with pytest.raises(ValueError, match=str(adds[0].oid)):
        mrt.place(adds[1], 2)


def test_first_fit_matches_linear_scan_accounting(machine):
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 3)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 0)
    # Early scan: rows 0 (occupied), 1 (free) -> hit at 1, 2 scanned.
    assert mrt.first_fit(adds[1], 0, 10, early=True) == (1, 2)
    # Late scan: rows 10 % 3 = 1 free immediately -> 1 scanned.
    assert mrt.first_fit(adds[1], 0, 10, early=False) == (10, 1)
    # Empty window.
    assert mrt.first_fit(adds[1], 5, 4, early=True) == (None, 0)


def test_first_fit_miss_reports_full_window_scanned(machine):
    # At II=1 the single Adder row is saturated by one placement; a
    # window of any width is a miss and the per-cycle scan accounting
    # reports the whole window, not the clamped II candidates.
    loop = build_figure1_loop()
    mrt = _mrt(machine, loop, 1)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    mrt.place(adds[0], 0)
    assert mrt.first_fit(adds[1], 0, 10, early=True) == (None, 11)
    assert mrt.first_fit(adds[1], 0, 10, early=False) == (None, 11)
