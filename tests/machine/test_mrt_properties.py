"""Property tests: the vectorized MRT must match a per-cycle reference.

The rewritten :class:`ModuloResourceTable` answers ``conflicts``,
``fits`` and whole-window ``first_fit`` questions from doubled numpy
occupancy arrays (with a python-list mirror for short scalar scans).
These tests drive random place/remove/query sequences against an
independent dict-based shadow model that implements the original
per-cycle semantics directly, covering the short scalar path, the long
vectorized path, the descending (late) scans, wraparound, and the
non-pipelined (busy > 1) footprint gather.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import Opcode
from repro.machine import ModuloResourceTable, cydra5

from tests.conftest import build_divider_loop, build_figure1_loop

MACHINE = cydra5()
LOOPS = {"fig1": build_figure1_loop(), "div": build_divider_loop()}


def _ref_conflicts(shadow, unit, busy, ii, oid, cycle):
    if busy > ii:
        return [-1]
    blockers = []
    for offset in range(busy):
        occupant = shadow.get((unit, (cycle + offset) % ii), -1)
        if occupant != -1 and occupant != oid and occupant not in blockers:
            blockers.append(occupant)
    return blockers


def _ref_first_fit(shadow, unit, busy, ii, oid, lo, hi, early):
    if lo > hi:
        return None, 0
    width = hi - lo + 1
    if busy > ii:
        return None, width
    span = min(width, ii)
    candidates = range(lo, lo + span) if early else range(hi, hi - span, -1)
    for cycle in candidates:
        if not _ref_conflicts(shadow, unit, busy, ii, oid, cycle):
            return cycle, (cycle - lo + 1) if early else (hi - cycle + 1)
    return None, width


@settings(max_examples=200, deadline=None)
@given(
    loop_key=st.sampled_from(["fig1", "div"]),
    ii=st.integers(min_value=1, max_value=40),
    actions=st.lists(
        st.tuples(
            st.integers(0, 30), st.integers(0, 120), st.booleans()
        ),
        max_size=25,
    ),
    queries=st.lists(
        st.tuples(
            st.integers(0, 30),
            st.integers(0, 120),
            st.integers(0, 90),
            st.booleans(),
        ),
        max_size=15,
    ),
)
def test_mrt_matches_per_cycle_reference(loop_key, ii, actions, queries):
    loop = LOOPS[loop_key]
    binding = MACHINE.bind_units(loop)
    ops = [op for op in loop.real_ops if op.oid in binding]
    mrt = ModuloResourceTable(MACHINE, ii, binding)
    shadow = {}
    placed = {}
    for op_index, cycle, do_remove in actions:
        op = ops[op_index % len(ops)]
        unit = binding[op.oid]
        busy = MACHINE.busy_cycles(op)
        if do_remove and op.oid in placed:
            at = placed.pop(op.oid)
            mrt.remove(op, at)
            for offset in range(busy):
                key = (unit, (at + offset) % ii)
                if shadow.get(key) == op.oid:
                    del shadow[key]
            continue
        if op.oid in placed:
            continue
        expected = _ref_conflicts(shadow, unit, busy, ii, op.oid, cycle)
        assert mrt.conflicts(op, cycle) == expected
        assert mrt.fits(op, cycle) == (not expected)
        if expected:
            continue
        mrt.place(op, cycle)
        placed[op.oid] = cycle
        for offset in range(busy):
            shadow[(unit, (cycle + offset) % ii)] = op.oid
    for op_index, lo, width, early in queries:
        op = ops[op_index % len(ops)]
        unit = binding[op.oid]
        busy = MACHINE.busy_cycles(op)
        hi = lo + width - 1  # width 0 exercises the empty window
        assert mrt.first_fit(op, lo, hi, early) == _ref_first_fit(
            shadow, unit, busy, ii, op.oid, lo, hi, early
        )
