"""Unit tests for rotating and static register files."""

import pytest

from repro.machine import RotatingFile, StaticFile


def test_rotation_shifts_specifiers():
    """Figure 2: after one rotation, yesterday's r0 is today's r1."""
    rr = RotatingFile("RR", 8)
    rr.write(0, 42.0)
    rr.rotate()
    assert rr.read(1) == 42.0
    assert rr.read(0) is None


def test_repeated_rotation_models_shift_register():
    rr = RotatingFile("RR", 6)
    for iteration in range(4):
        rr.write(0, float(iteration))
        rr.rotate()
    # Values written k rotations ago are now at specifier k.
    assert [rr.read(k) for k in range(1, 5)] == [3.0, 2.0, 1.0, 0.0]


def test_rotation_wraps_circularly():
    rr = RotatingFile("RR", 4)
    rr.write(0, 1.0)
    for _ in range(4):
        rr.rotate()
    assert rr.read(0) == 1.0  # full revolution: same physical register


def test_physical_addressing():
    rr = RotatingFile("RR", 4)
    rr.rotate()  # icp = 3
    rr.write(0, 9.0)
    assert rr.read_physical(3) == 9.0
    rr.write_physical(2, 7.0)
    assert rr.read(3) == 7.0  # (3 + 3) mod 4 == 2


def test_reset_clears_cells_and_icp():
    rr = RotatingFile("RR", 4)
    rr.write(0, 1.0)
    rr.rotate()
    rr.reset()
    assert rr.icp == 0
    assert all(rr.read(i) is None for i in range(4))


def test_static_file_read_write():
    gpr = StaticFile("GPR", 8)
    gpr.write(3, 2.5)
    assert gpr.read(3) == 2.5
    gpr.reset()
    assert gpr.read(3) is None


@pytest.mark.parametrize("cls", [RotatingFile, StaticFile])
def test_zero_size_rejected(cls):
    with pytest.raises(ValueError):
        cls("bad", 0)
