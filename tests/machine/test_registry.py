"""The declarative machine registry (repro.machine.registry)."""

import json

import pytest

from repro.experiments import measure_loop
from repro.machine import (
    Machine,
    MachineParamError,
    MachineSpec,
    UnknownMachineError,
    build_machine,
    cydra5,
    default_machines,
    default_specs,
    get_family,
    machine_from_cli,
    machine_names,
    machine_spec,
    parse_machine_arg,
    table1_units,
)
from repro.service.keys import machine_digest
from repro.workloads import paper_corpus

#: machine_digest(cydra5()) since the pre-registry era.  Pinned: cache
#: keys for the default target must never drift across refactors.
CYDRA5_DIGEST = "52d171dcf85e4411f9bd076846fc42ba612125b27111107e8004f5eabfbe8efa"


def test_registry_lists_every_target():
    assert machine_names() == ("cydra5", "vliw-wide", "clustered", "simd", "gpu")
    assert len(default_specs()) == len(machine_names())


def test_cydra5_spec_matches_hand_built_machine():
    registry = build_machine("cydra5")
    legacy = Machine("cydra5-load13", table1_units(13))
    assert registry.name == legacy.name
    assert machine_digest(registry) == machine_digest(legacy)
    assert machine_digest(registry) == CYDRA5_DIGEST
    assert machine_digest(cydra5()) == CYDRA5_DIGEST


def test_cydra5_constructor_goes_through_registry():
    machine = cydra5(load_latency=7)
    assert machine.name == "cydra5-load7"
    assert machine.spec is not None
    assert machine.spec.param_dict() == {"load_latency": 7}


@pytest.mark.parametrize("spec", default_specs(), ids=lambda s: s.family)
def test_spec_json_round_trip_preserves_digest(spec):
    payload = json.loads(json.dumps(spec.to_json()))
    restored = MachineSpec.from_json(payload)
    assert restored == spec
    assert restored.digest() == spec.digest()
    # The digest payload itself is pure JSON too.
    assert json.loads(json.dumps(spec.canonical())) == spec.canonical()


@pytest.mark.parametrize("spec", default_specs(), ids=lambda s: s.family)
def test_spec_digest_equals_service_machine_digest(spec):
    assert spec.digest() == machine_digest(spec.build())


@pytest.mark.parametrize("spec", default_specs(), ids=lambda s: s.family)
def test_wire_round_trip_rebuilds_the_same_machine(spec):
    from repro.server.protocol import parse_machine

    machine = parse_machine(spec.wire())
    assert machine.name == spec.name
    assert machine.spec == spec


def test_default_machines_have_distinct_digests():
    digests = {machine_digest(m) for m in default_machines()}
    assert len(digests) == len(machine_names())


@pytest.mark.parametrize("machine", default_machines(), ids=lambda m: m.name)
def test_every_target_schedules_a_loop(machine):
    metrics = measure_loop(paper_corpus(2)[0], machine)
    assert metrics.success
    assert metrics.ii >= metrics.mii >= 1


def test_parse_machine_arg():
    assert parse_machine_arg("cydra5") == ("cydra5", {})
    assert parse_machine_arg("simd:depth=3,lanes=4") == (
        "simd",
        {"depth": 3, "lanes": 4},
    )
    with pytest.raises(UnknownMachineError) as excinfo:
        parse_machine_arg("tms320")
    for name in machine_names():
        assert name in str(excinfo.value)
    with pytest.raises(MachineParamError):
        parse_machine_arg("simd:depth")  # missing =v
    with pytest.raises(MachineParamError):
        parse_machine_arg("simd:depth=deep")  # not an integer


def test_param_validation():
    with pytest.raises(MachineParamError, match=r"issue must be in 1\.\.8"):
        build_machine("vliw-wide", issue=0)
    with pytest.raises(MachineParamError, match="must be an integer"):
        build_machine("cydra5", load_latency=True)
    with pytest.raises(MachineParamError, match="unknown parameter"):
        build_machine("cydra5", cores=2)
    with pytest.raises(UnknownMachineError):
        get_family("tms320")


def test_machine_from_cli_load_latency_folding():
    # --load-latency folds in when the family has the knob...
    assert machine_from_cli("cydra5", load_latency=7).name == "cydra5-load7"
    # ...but never overrides an explicit spec parameter...
    assert (
        machine_from_cli("cydra5:load_latency=3", load_latency=7).name
        == "cydra5-load3"
    )
    # ...and family defaults win when no flag is given.
    assert machine_from_cli("gpu").name == "gpu-o4-load64"
    assert machine_from_cli("vliw-wide:issue=4").name == "vliw-wide-x4-load13"


def test_vliw_wide_is_issue_times_wider():
    base = machine_spec("cydra5")
    wide = machine_spec("vliw-wide", issue=3)
    assert [u.name for u in wide.units] == [u.name for u in base.units]
    assert [u.count for u in wide.units] == [u.count * 3 for u in base.units]


def test_wider_machine_never_hurts_resmii():
    """2x issue width can only lower (or keep) the resource bound."""
    from repro.bounds import resmii
    from repro.frontend import compile_loop

    base = build_machine("cydra5")
    wide = build_machine("vliw-wide")
    for program in paper_corpus(6):
        loop = compile_loop(program)
        assert resmii(loop, wide) <= resmii(loop, base)


def test_from_json_rejects_bad_payloads():
    from repro.machine import MachineError

    spec = machine_spec("cydra5")
    good = spec.to_json()
    with pytest.raises(MachineError):
        MachineSpec.from_json("not an object")
    with pytest.raises(MachineError):
        MachineSpec.from_json({**good, "spec_version": 999})
    broken = json.loads(json.dumps(good))
    broken["units"][0]["ops"] = [["not_an_opcode", 1]]
    restored = MachineSpec.from_json(broken)
    with pytest.raises(MachineError):
        restored.build()
