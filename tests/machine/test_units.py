"""Table 1 of the paper, checked verbatim against the machine model."""

import pytest

from repro.ir import Opcode
from repro.machine import cydra5, table1_units


@pytest.mark.parametrize(
    "opcode,latency",
    [
        (Opcode.LOAD, 13),
        (Opcode.STORE, 1),
        (Opcode.ADDR_ADD, 1),
        (Opcode.ADDR_SUB, 1),
        (Opcode.ADDR_MUL, 1),
        (Opcode.ADD_I, 1),
        (Opcode.SUB_I, 1),
        (Opcode.ADD_F, 1),
        (Opcode.SUB_F, 1),
        (Opcode.MUL_I, 2),
        (Opcode.MUL_F, 2),
        (Opcode.DIV_I, 17),
        (Opcode.DIV_F, 17),
        (Opcode.MOD_I, 17),
        (Opcode.SQRT_F, 21),
        (Opcode.BRTOP, 2),
    ],
)
def test_table1_latencies(machine, opcode, latency):
    assert machine.unit_class(opcode).latency(opcode) == latency


@pytest.mark.parametrize(
    "name,count",
    [
        ("Memory Port", 2),
        ("Address ALU", 2),
        ("Adder", 1),
        ("Multiplier", 1),
        ("Divider", 1),
        ("Branch Unit", 1),
    ],
)
def test_table1_unit_counts(machine, name, count):
    unit = next(u for u in machine.unit_classes if u.name == name)
    assert unit.count == count


def test_only_divider_is_unpipelined(machine):
    for unit in machine.unit_classes:
        assert unit.pipelined == (unit.name != "Divider")


def test_divider_busy_cycles_equal_latency(machine):
    divider = next(u for u in machine.unit_classes if u.name == "Divider")
    assert divider.busy_cycles(Opcode.DIV_F) == 17
    assert divider.busy_cycles(Opcode.SQRT_F) == 21


def test_pipelined_units_busy_one_cycle(machine):
    memory = next(u for u in machine.unit_classes if u.name == "Memory Port")
    assert memory.busy_cycles(Opcode.LOAD) == 1


def test_memory_latency_register():
    """§2.1: the compiler chooses the load latency it schedules for."""
    fast = cydra5(load_latency=2)
    assert fast.unit_class(Opcode.LOAD).latency(Opcode.LOAD) == 2


def test_unknown_opcode_for_unit_raises():
    units = table1_units()
    adder = next(u for u in units if u.name == "Adder")
    with pytest.raises(KeyError):
        adder.latency(Opcode.LOAD)
