"""The README's quickstart snippet must work exactly as documented."""


def test_readme_quickstart_snippet():
    from repro.frontend import ArrayRef, Assign, DoLoop, compile_loop
    from repro.machine import cydra5
    from repro.core import modulo_schedule

    program = DoLoop(
        name="figure1", start=2, trip=40,
        body=[
            Assign(ArrayRef("x"), ArrayRef("x", -1) + ArrayRef("y", -2)),
            Assign(ArrayRef("y"), ArrayRef("y", -1) + ArrayRef("x", -2)),
        ],
        arrays={"x": 60, "y": 60},
    )
    loop = compile_loop(program)
    result = modulo_schedule(loop, cydra5())
    assert (result.ii, result.mii, result.optimal) == (2, 2, True)
    assert "II=2" in result.schedule.render()


def test_package_docstring_example():
    """The repro/__init__ docstring example."""
    from repro import ArrayRef, Assign, DoLoop, compile_loop, cydra5, modulo_schedule

    program = DoLoop(
        "saxpy",
        body=[Assign(ArrayRef("y"), ArrayRef("x") * 2.0 + ArrayRef("y"))],
        arrays={"x": 32, "y": 32},
    )
    result = modulo_schedule(compile_loop(program), cydra5())
    assert result.optimal


def test_top_level_exports_resolve():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
