"""The vectorized hot-path kernels are decision-identical to the plain
Python formulations they replaced.

``SlackAttempt.choose_operation`` packs (priority, Lstart, oid) into one
integer key and takes an argmin; ``_dependence_conflicts`` evaluates the
§4.4 violation test as one pass over the placed set.  Both must agree
with the straightforward scalar reference at *every* call of a real
scheduling run — a checked subclass asserts exactly that while whole
corpus loops schedule end to end, covering contention, ejection, cap
growth and II escalation states no hand-written fixture reaches.
"""

from repro.bounds.mindist import is_path
from repro.bounds.recmii import recmii
from repro.bounds.resmii import resmii
from repro.core.framework import run_attempt
from repro.core.slack import SlackAttempt
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.workloads import paper_corpus

MACHINE = cydra5()


class CheckedSlackAttempt(SlackAttempt):
    """Asserts the vectorized kernels against scalar references."""

    def choose_operation(self):
        chosen = super().choose_operation()
        reference = min(
            (self.loop.ops[oid] for oid in self.unplaced),
            key=lambda op: (self.priority(op), int(self.lstart[op.oid]), op.oid),
        )
        assert chosen.oid == reference.oid, (
            f"choose_operation picked {chosen.oid}, "
            f"reference min picked {reference.oid}"
        )
        return chosen

    def _dependence_conflicts(self, oid, cycle):
        got = super()._dependence_conflicts(oid, cycle)
        expected = []
        for placed_oid, placed_time in self.times.items():
            if placed_oid in (oid, self.start_oid):
                continue
            forward = int(self.matrix[oid, placed_oid])
            backward = int(self.matrix[placed_oid, oid])
            if (is_path(forward) and placed_time < cycle + forward) or (
                is_path(backward) and cycle < placed_time + backward
            ):
                expected.append(placed_oid)
        assert got == expected, f"conflicts at oid={oid} cycle={cycle}"
        return got


def _schedule_checked(loop, ddg, **kwargs):
    binding = MACHINE.bind_units(loop)
    ii = max(recmii(ddg), resmii(loop, MACHINE))
    for _ in range(15):
        attempt = CheckedSlackAttempt(loop, MACHINE, ddg, ii, binding, **kwargs)
        schedule = run_attempt(attempt)
        if schedule is not None:
            return schedule
        ii += max(int(0.04 * ii), 1)
    return None


def test_vectorized_kernels_match_reference_over_corpus():
    for program in paper_corpus(12, seed=1993):
        loop = compile_loop(program)
        ddg = build_ddg(loop, MACHINE)
        assert _schedule_checked(loop, ddg) is not None, loop.name


def test_vectorized_kernels_match_reference_frozen_priority():
    for program in paper_corpus(6, seed=7):
        loop = compile_loop(program)
        ddg = build_ddg(loop, MACHINE)
        schedule = _schedule_checked(loop, ddg, dynamic_priority=False)
        assert schedule is not None, loop.name
