"""Unit tests for the static schedule validator."""

from repro.core import modulo_schedule, validate_schedule

from tests.conftest import build_figure1_loop


def test_valid_schedule_has_no_violations(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    assert validate_schedule(result.schedule) == []


def test_detects_dependence_violation(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    loop = schedule.loop
    store = next(op for op in loop.real_ops if op.is_store)
    schedule.times[store.oid] = -50  # before its operands exist
    violations = validate_schedule(schedule)
    assert any("dependence violated" in v for v in violations)


def test_detects_resource_conflict(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    loop = schedule.loop
    adds = [op for op in loop.real_ops if op.opcode.value == "addf"]
    # Put both adds in the same modulo row of the single Adder.
    schedule.times[adds[1].oid] = schedule.times[adds[0].oid] + schedule.ii * 3
    violations = validate_schedule(schedule)
    assert any("resource conflict" in v for v in violations)


def test_detects_unplaced_op(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    del schedule.times[schedule.loop.real_ops[0].oid]
    violations = validate_schedule(schedule)
    assert any("unplaced" in v for v in violations)


def test_detects_misplaced_start(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    schedule.times[schedule.loop.start.oid] = 1
    violations = validate_schedule(schedule)
    assert any("Start" in v for v in violations)
