"""Unit tests for the static schedule validator."""

import pytest

from repro.core import modulo_schedule, validate_schedule
from repro.ir import build_ddg

from tests.conftest import (
    build_accumulator_loop,
    build_divider_loop,
    build_figure1_loop,
)


def test_valid_schedule_has_no_violations(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    assert validate_schedule(result.schedule) == []


def test_detects_dependence_violation(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    loop = schedule.loop
    store = next(op for op in loop.real_ops if op.is_store)
    schedule.times[store.oid] = -50  # before its operands exist
    violations = validate_schedule(schedule)
    assert any("dependence violated" in v for v in violations)


def test_detects_resource_conflict(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    loop = schedule.loop
    adds = [op for op in loop.real_ops if op.opcode.value == "addf"]
    # Put both adds in the same modulo row of the single Adder.
    schedule.times[adds[1].oid] = schedule.times[adds[0].oid] + schedule.ii * 3
    violations = validate_schedule(schedule)
    assert any("resource conflict" in v for v in violations)


def test_detects_unplaced_op(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    del schedule.times[schedule.loop.real_ops[0].oid]
    violations = validate_schedule(schedule)
    assert any("unplaced" in v for v in violations)


def test_detects_misplaced_start(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    schedule.times[schedule.loop.start.oid] = 1
    violations = validate_schedule(schedule)
    assert any("Start" in v for v in violations)


@pytest.mark.parametrize("algorithm", ["slack", "cydrome", "unidirectional", "height", "warp"])
@pytest.mark.parametrize(
    "build", [build_figure1_loop, build_accumulator_loop, build_divider_loop]
)
def test_every_algorithm_produces_valid_schedules(machine, algorithm, build):
    result = modulo_schedule(build(), machine, algorithm=algorithm)
    assert result.success
    assert validate_schedule(result.schedule) == []


def test_accepts_explicit_prebuilt_ddg(machine):
    loop = build_figure1_loop()
    ddg = build_ddg(loop, machine)
    result = modulo_schedule(loop, machine, ddg=ddg)
    assert validate_schedule(result.schedule, ddg) == []


def test_unplaced_op_short_circuits_other_checks(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    schedule = result.schedule
    del schedule.times[schedule.loop.real_ops[0].oid]
    violations = validate_schedule(schedule)
    # Only the unplaced report — no misleading downstream noise.
    assert all("unplaced" in v for v in violations)


def test_detects_omega_dependence_violation(machine):
    """A loop-carried (omega>0) arc is checked at t(src)+lat-omega*II."""
    result = modulo_schedule(build_accumulator_loop(), machine)
    schedule = result.schedule
    ddg = build_ddg(schedule.loop, machine)
    carried = next(arc for arc in ddg.arcs if arc.omega > 0 and arc.latency > 0)
    schedule.times[carried.dst] = (
        schedule.times[carried.src]
        + carried.latency
        - carried.omega * schedule.ii
        - 1
    )
    violations = validate_schedule(schedule, ddg)
    assert any("dependence violated" in v for v in violations)


def test_shift_by_whole_iis_never_creates_resource_conflicts(machine):
    """Moving an op by k*II keeps its MRT row: the validator must report
    the dependence damage but no phantom resource conflict — including
    for the non-pipelined divider's multi-cycle busy pattern."""
    loop = build_divider_loop()
    result = modulo_schedule(loop, machine)
    schedule = result.schedule
    div = next(op for op in loop.real_ops if op.uses_divider)
    assert machine.busy_cycles(div) > 1  # the premise of the test
    schedule.times[div.oid] += 2 * schedule.ii
    violations = validate_schedule(schedule)
    assert violations  # the store of q now reads it too early
    assert all("resource conflict" not in v for v in violations)
