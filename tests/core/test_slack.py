"""Unit tests for the slack scheduler's heuristics (§4.3, §5.2)."""

import pytest

from repro.core import SlackAttempt
from repro.ir import DType, LoopBody, Opcode, Operand, build_ddg

from tests.conftest import build_accumulator_loop, build_divider_loop, build_figure1_loop


def _attempt(machine, loop, ii, **kwargs):
    ddg = build_ddg(loop, machine)
    return SlackAttempt(loop, machine, ddg, ii, machine.bind_units(loop), **kwargs)


# ----------------------------------------------------------------------
# Dynamic priority (§4.3)
# ----------------------------------------------------------------------
def test_priority_is_current_slack(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    for op in loop.real_ops:
        if op.oid in attempt.critical_ops or op.uses_divider:
            continue
        slack = int(attempt.lstart[op.oid]) - int(attempt.estart[op.oid])
        assert attempt.priority(op) == slack


def test_critical_ops_get_halved_priority(machine):
    loop = build_figure1_loop()  # adds saturate the single Adder at II=2
    attempt = _attempt(machine, loop, ii=2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    assert all(op.oid in attempt.critical_ops for op in adds)
    for op in adds:
        slack = int(attempt.lstart[op.oid]) - int(attempt.estart[op.oid])
        assert attempt.priority(op) == slack / 2


def test_divider_ops_get_quartered_priority_when_critical(machine):
    loop = build_divider_loop()
    attempt = _attempt(machine, loop, ii=17)
    div = next(op for op in loop.real_ops if op.uses_divider)
    slack = int(attempt.lstart[div.oid]) - int(attempt.estart[div.oid])
    assert div.oid in attempt.critical_ops  # 17/17 cycles busy
    assert attempt.priority(div) == slack / 4


def test_no_halving_without_contention(machine):
    loop = LoopBody("nocontention")
    s = loop.new_value("s", DType.FLOAT)
    loop.add_op(Opcode.ADD_F, s, [Operand(s, back=1)])
    loop.finalize()
    attempt = _attempt(machine, loop, ii=1)
    assert not attempt.contention
    op = loop.real_ops[0]
    slack = int(attempt.lstart[op.oid]) - int(attempt.estart[op.oid])
    assert attempt.priority(op) == slack


def test_choose_operation_prefers_min_slack_then_min_lstart(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    chosen = attempt.choose_operation()
    best = min(
        (attempt.priority(loop.ops[oid]), int(attempt.lstart[oid]))
        for oid in attempt.unplaced
    )
    assert (attempt.priority(chosen), int(attempt.lstart[chosen.oid])) == best


# ----------------------------------------------------------------------
# Bidirectional placement decision (§5.2)
# ----------------------------------------------------------------------
def test_accumulator_with_no_stretchable_io_goes_early(machine):
    """An accumulator read only after the loop: no inputs, no outputs."""
    loop = LoopBody("acc")
    s = loop.new_value("s", DType.FLOAT)
    loop.add_op(Opcode.ADD_F, s, [Operand(s, back=1), Operand(loop.constant(1.0))])
    loop.live_out["s"] = s
    loop.finalize()
    attempt = _attempt(machine, loop, ii=1)
    op = loop.real_ops[0]
    assert attempt._stretchable_inputs(op) == 0  # self-recurrence ignored
    assert attempt._stretchable_outputs(op) == 0  # only self use
    assert attempt.prefers_early(op)


def test_load_with_pinned_address_goes_late(machine):
    """The paper's motivating case: loads should not be placed early."""
    loop = build_accumulator_loop()
    attempt = _attempt(machine, loop, ii=1)
    load = next(op for op in loop.real_ops if op.is_load)
    # The address IV lifetime is pinned by its own self-recurrence: the
    # load cannot stretch it, so inputs=0 < outputs=1 -> place late.
    assert attempt._stretchable_inputs(load) == 0
    assert attempt._stretchable_outputs(load) == 1
    assert not attempt.prefers_early(load)


def test_store_with_stretchable_input_goes_early(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    store = next(op for op in loop.real_ops if op.is_store)
    assert attempt._stretchable_outputs(store) == 0
    if attempt._stretchable_inputs(store) > 0:
        assert attempt.prefers_early(store)


def test_duplicate_inputs_counted_once(machine):
    loop = LoopBody("dup")
    ax = loop.new_value("ax", DType.ADDR)
    x = loop.new_value("x", DType.FLOAT)
    y = loop.new_value("y", DType.FLOAT)
    loop.add_op(Opcode.ADDR_ADD, ax, [Operand(ax, back=1), Operand(loop.constant(4, DType.ADDR))])
    loop.add_op(Opcode.LOAD, x, [Operand(ax)], array="x")
    loop.add_op(Opcode.MUL_F, y, [Operand(x), Operand(x)])  # x used twice
    loop.add_op(Opcode.STORE, None, [Operand(ax), Operand(y)], array="y")
    loop.finalize()
    attempt = _attempt(machine, loop, ii=3)
    mul = next(op for op in loop.real_ops if op.opcode is Opcode.MUL_F)
    assert attempt._stretchable_inputs(mul) <= 1


def test_invariant_inputs_ignored(machine):
    loop = build_divider_loop()
    attempt = _attempt(machine, loop, ii=17)
    div = next(op for op in loop.real_ops if op.uses_divider)
    # div reads the loaded x (variant) and the invariant c: at most one
    # stretchable input.
    assert attempt._stretchable_inputs(div) <= 1


def test_tie_breaks_toward_placed_neighbors(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=4)
    x_def = next(op for op in loop.real_ops if op.dest is not None and op.dest.name == "x")
    store_x = next(
        op for op in loop.real_ops if op.is_store and op.attrs["array"] == "x"
    )
    # Make the store's only predecessors placed: prefer early (near them).
    ax_def = next(op for op in loop.real_ops if op.dest is not None and op.dest.name == "ax")
    attempt._place(x_def, 0)
    attempt._place(ax_def, 0)
    attempt._refresh_bounds()
    preds, succs = attempt.ddg.neighbors(store_x)
    assert all(oid in attempt.times for oid in preds)
    assert attempt.prefers_early(store_x)


def test_unidirectional_flag_disables_heuristic(machine):
    loop = build_accumulator_loop()
    ddg = build_ddg(loop, machine)
    attempt = SlackAttempt(
        loop, machine, ddg, 1, machine.bind_units(loop), bidirectional=False
    )
    load = next(op for op in loop.real_ops if op.is_load)
    lo = int(attempt.estart[load.oid])
    hi = min(int(attempt.lstart[load.oid]), lo + attempt.ii - 1)
    # With the heuristic off, the scan is early-to-late: first fit = lo.
    assert attempt.choose_issue_cycle(load, lo, hi) == lo


def test_static_priority_freezes_initial_slack(machine):
    from repro.ir import build_ddg

    loop = build_figure1_loop()
    ddg = build_ddg(loop, machine)
    attempt = SlackAttempt(
        loop, machine, ddg, 2, machine.bind_units(loop), dynamic_priority=False
    )
    op = loop.real_ops[0]
    before = attempt.priority(op)
    # Place something that would normally shrink the op's slack.
    adds = [o for o in loop.real_ops if o.opcode is Opcode.ADD_F]
    attempt._place(adds[0], 0)
    attempt._refresh_bounds()
    assert attempt.priority(op) == before  # frozen


def test_dynamic_priority_tracks_placements(machine):
    from repro.ir import build_ddg

    loop = build_figure1_loop()
    ddg = build_ddg(loop, machine)
    attempt = SlackAttempt(loop, machine, ddg, 2, machine.bind_units(loop))
    stores = [o for o in loop.real_ops if o.is_store]
    before = attempt.priority(stores[0])
    adds = [o for o in loop.real_ops if o.opcode is Opcode.ADD_F]
    attempt._place(adds[0], 0)
    attempt._place(adds[1], 1)
    attempt._refresh_bounds()
    after = attempt.priority(stores[0])
    assert after != before  # the slack moved with the partial schedule


def test_static_priority_snapshot_is_eager_not_lazy(machine):
    # The §8 ablation freezes each op's *initial* slack.  The snapshot
    # must be taken for every op at attempt start: it used to be
    # captured lazily at each op's first priority() query, so ops first
    # visited after a placement leaked the already-tightened bounds
    # into their "initial" slack.
    from repro.ir import build_ddg

    loop = build_figure1_loop()

    def fresh():
        ddg = build_ddg(loop, machine)
        return SlackAttempt(
            loop, machine, ddg, 2, machine.bind_units(loop), dynamic_priority=False
        )

    reference = fresh()
    initial = {op.oid: reference.priority(op) for op in loop.real_ops}

    attempt = fresh()
    adds = [o for o in loop.real_ops if o.opcode is Opcode.ADD_F]
    attempt._place(adds[0], 0)
    attempt._place(adds[1], 1)
    attempt._refresh_bounds()
    # First priority() query happens only now, after the placements
    # (which demonstrably move the dynamic slack — see
    # test_dynamic_priority_tracks_placements).
    for op in loop.real_ops:
        assert attempt.priority(op) == initial[op.oid], op
