"""Property: incremental Estart/Lstart updates match full recomputation.

The framework maintains bounds incrementally after plain placements
(§4.1's update rule) and recomputes from scratch after ejections.  Both
paths must agree — this is the invariant the whole scheduler's
correctness rests on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlackAttempt
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.workloads import LoopGenerator

MACHINE = cydra5()


def _fresh_attempt(seed, klass):
    program = LoopGenerator(seed).generate(f"bc{seed}", klass)
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    from repro.bounds import recmii, resmii

    ii = max(recmii(ddg), resmii(loop, MACHINE))
    return SlackAttempt(loop, MACHINE, ddg, ii, MACHINE.bind_units(loop))


@given(
    st.integers(min_value=0, max_value=1_000),
    st.sampled_from(["neither", "recurrence", "conditional"]),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=25, deadline=None)
def test_incremental_bounds_equal_full_recompute(seed, klass, steps):
    attempt = _fresh_attempt(seed, klass)
    # Drive the scheduler a few central-loop steps (placements only).
    for _ in range(min(steps, len(attempt.unplaced))):
        attempt._refresh_bounds()
        if not attempt.unplaced:
            break
        op = attempt.choose_operation()
        lo = int(attempt.estart[op.oid])
        hi = min(int(attempt.lstart[op.oid]), lo + attempt.ii - 1)
        cycle = attempt.choose_issue_cycle(op, lo, hi) if lo <= hi else None
        if cycle is None:
            cycle = attempt._force_place(op)
        attempt._place(op, cycle)
    # Snapshot the incrementally-maintained bounds, then force a full
    # recompute and compare.
    attempt._refresh_bounds()
    incremental_estart = attempt.estart.copy()
    incremental_lstart = attempt.lstart.copy()
    attempt._bounds_dirty = True
    attempt._refresh_bounds()
    assert np.array_equal(incremental_estart, attempt.estart)
    assert np.array_equal(incremental_lstart, attempt.lstart)


@given(st.integers(min_value=0, max_value=1_000))
@settings(max_examples=15, deadline=None)
def test_bounds_bracket_final_schedule(seed):
    """At every step, placed ops sit inside their own bounds."""
    attempt = _fresh_attempt(seed, "neither")
    times = attempt.run()
    attempt._bounds_dirty = True
    attempt._refresh_bounds()
    for oid, cycle in times.items():
        assert attempt.estart[oid] <= cycle <= attempt.lstart[oid]
