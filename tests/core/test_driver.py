"""Integration tests for the scheduling driver."""

import pytest

from repro.core import SchedulerOptions, modulo_schedule, validate_schedule

from tests.conftest import (
    build_accumulator_loop,
    build_divider_loop,
    build_figure1_loop,
)


@pytest.mark.parametrize("algorithm", ["slack", "cydrome", "unidirectional"])
@pytest.mark.parametrize(
    "build", [build_figure1_loop, build_accumulator_loop, build_divider_loop]
)
def test_all_algorithms_schedule_sample_loops_at_mii(machine, algorithm, build):
    loop = build()
    result = modulo_schedule(loop, machine, algorithm=algorithm)
    assert result.success
    assert result.ii == result.mii
    assert validate_schedule(result.schedule) == []


def test_figure1_mii_components(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    assert result.res_mii == 2
    assert result.rec_mii == 1
    assert result.mii == 2


def test_unknown_algorithm_rejected(machine):
    with pytest.raises(ValueError):
        modulo_schedule(build_figure1_loop(), machine, algorithm="magic")


def test_ii_escalation_four_percent():
    options = SchedulerOptions(ii_step_percent=0.04)
    assert options.next_ii(10) == 11  # floor(0.4) = 0 -> +1
    assert options.next_ii(50) == 52
    assert options.next_ii(100) == 104


def test_ii_escalation_plus_one():
    options = SchedulerOptions(ii_step_percent=0.0)
    assert options.next_ii(100) == 101


def test_failure_reports_last_attempted_ii(machine):
    loop = build_figure1_loop()
    options = SchedulerOptions(budget_ratio=0.0, max_attempts=3)
    result = modulo_schedule(loop, machine, options=options)
    # Budget 100 placements still schedules this tiny loop; shrink further
    # is impossible through options, so assert the stats plumbing instead.
    assert result.stats.attempts >= 1


def test_stats_accumulate_over_attempts(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    assert result.stats.attempts >= 1
    assert result.stats.placements >= len(build_figure1_loop().real_ops)
    assert result.stats.scheduling_seconds >= 0.0


def test_schedule_properties(machine):
    result = modulo_schedule(build_accumulator_loop(), machine)
    schedule = result.schedule
    assert schedule.span == schedule.times[schedule.loop.stop.oid]
    assert schedule.stages >= schedule.span // schedule.ii
    rows = schedule.kernel_rows()
    assert len(rows) == schedule.ii
    assert sum(len(row) for row in rows) == len(schedule.loop.real_ops)
    assert "II=" in schedule.render()


def test_optimal_flag(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    assert result.optimal


def test_height_algorithm_registered(machine):
    from repro.core import ALGORITHMS

    assert "height" in ALGORITHMS and "warp" in ALGORITHMS
    result = modulo_schedule(build_figure1_loop(), machine, algorithm="height")
    assert result.success and result.optimal


def test_height_priority_orders_by_critical_path(machine):
    from repro.core import HeightAttempt
    from repro.ir import build_ddg

    loop = build_accumulator_loop()
    ddg = build_ddg(loop, machine)
    attempt = HeightAttempt(loop, machine, ddg, 1, machine.bind_units(loop))
    chosen = attempt.choose_operation()
    # The first choice is (one of) the ops with the greatest height.
    top = max(attempt.height[oid] for oid in attempt.unplaced)
    assert attempt.height[chosen.oid] == top
