"""Tests for the Warp-style hierarchical scheduler (§8 baseline)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import modulo_schedule, validate_schedule
from repro.core.warp import WarpScheduler, run_warp_attempt
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.simulator import initial_state, run_pipelined, run_sequential
from repro.workloads import LoopGenerator
from repro.workloads.livermore import kernel5_tridiag

from tests.conftest import build_figure1_loop

MACHINE = cydra5()


def test_macro_nodes_group_recurrence_circuits():
    loop = build_figure1_loop()
    ddg = build_ddg(loop, MACHINE)
    scheduler = WarpScheduler(loop, MACHINE, ddg, 2, MACHINE.bind_units(loop))
    macro = [node for node in scheduler.nodes if node.is_macro]
    assert len(macro) == 1  # x <-> y cross recurrence
    x_def = next(op for op in loop.real_ops if op.dest is not None and op.dest.name == "x")
    y_def = next(op for op in loop.real_ops if op.dest is not None and op.dest.name == "y")
    assert sorted(macro[0].members) == sorted([x_def.oid, y_def.oid])


def test_fixed_relative_timing_respects_internal_arcs():
    program = kernel5_tridiag()
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    result = modulo_schedule(loop, MACHINE, ddg=ddg)
    scheduler = WarpScheduler(loop, MACHINE, ddg, result.mii, MACHINE.bind_units(loop))
    for node in scheduler.nodes:
        if not node.is_macro:
            continue
        members = set(node.members)
        for arc in ddg.arcs:
            if arc.src in members and arc.dst in members:
                gap = node.offsets[arc.dst] - node.offsets[arc.src]
                assert gap >= arc.latency - arc.omega * result.mii


def test_warp_schedules_figure1_at_mii():
    loop = build_figure1_loop()
    result = modulo_schedule(loop, MACHINE, algorithm="warp")
    assert result.success and result.ii == result.mii == 2
    assert validate_schedule(result.schedule) == []


def test_warp_attempt_reports_failure_not_exception():
    """At an II too small for the divider, the attempt fails cleanly."""
    from tests.conftest import build_divider_loop

    loop = build_divider_loop()
    ddg = build_ddg(loop, MACHINE)
    schedule, stats = run_warp_attempt(loop, MACHINE, ddg, 16, MACHINE.bind_units(loop))
    assert schedule is None
    assert stats.placements >= 0


def test_warp_rejects_infeasible_ii():
    program = kernel5_tridiag()
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    with pytest.raises(ValueError):
        WarpScheduler(loop, MACHINE, ddg, 1, MACHINE.bind_units(loop))


def _close(a, b):
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b)
    if math.isnan(a) and math.isnan(b):
        return True
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= 1e-8 * max(1.0, abs(a), abs(b))


@given(
    st.integers(min_value=0, max_value=3_000),
    st.sampled_from(["neither", "conditional", "recurrence", "both"]),
)
@settings(max_examples=25, deadline=None)
def test_warp_schedules_are_valid_and_correct(seed, klass):
    program = LoopGenerator(seed).generate(f"warp{seed}", klass)
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    result = modulo_schedule(loop, MACHINE, algorithm="warp", ddg=ddg)
    if not result.success:
        return  # no-backtracking failure is a legitimate outcome
    assert validate_schedule(result.schedule, ddg) == []
    sequential = run_sequential(program, initial_state(program))
    pipelined = run_pipelined(result.schedule, initial_state(program))
    for name in program.arrays:
        assert all(
            _close(a, b) for a, b in zip(sequential.arrays[name], pipelined.arrays[name])
        )
    for name in program.live_out:
        assert _close(sequential.scalars[name], pipelined.scalars[name])


def test_warp_never_beats_mii():
    for seed in range(6):
        program = LoopGenerator(seed).generate(f"w{seed}", "recurrence")
        loop = compile_loop(program)
        result = modulo_schedule(loop, MACHINE, algorithm="warp")
        if result.success:
            assert result.ii >= result.mii
