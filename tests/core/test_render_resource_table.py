"""Unit tests for the schedule's ASCII modulo resource table."""

from repro.core import modulo_schedule
from repro.machine import cydra5

from tests.conftest import build_divider_loop, build_figure1_loop

MACHINE = cydra5()


def test_every_unit_instance_has_a_lane():
    result = modulo_schedule(build_figure1_loop(), MACHINE)
    text = result.schedule.render_resource_table()
    for name in ("Memory Port[0]", "Memory Port[1]", "Address ALU[1]",
                 "Adder[0]", "Multiplier[0]", "Divider[0]", "Branch Unit[0]"):
        assert name in text


def test_each_real_op_appears_once():
    result = modulo_schedule(build_figure1_loop(), MACHINE)
    text = result.schedule.render_resource_table()
    # The unit-name column is 18 characters wide.
    cells = [c for line in text.splitlines()[2:] for c in line[18:].split()]
    oids = [c for c in cells if c not in (".", "=")]
    assert sorted(int(o) for o in oids) == sorted(
        op.oid for op in result.schedule.loop.real_ops
    )


def test_nonpipelined_busy_cycles_marked():
    result = modulo_schedule(build_divider_loop(), MACHINE)
    text = result.schedule.render_resource_table()
    divider_line = next(l for l in text.splitlines() if l.startswith("Divider"))
    # The 17-cycle divide occupies 1 issue cell + 16 '=' continuation cells.
    assert divider_line[18:].split().count("=") == 16
