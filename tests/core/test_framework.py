"""Unit tests for the operation-driven scheduling framework (§4)."""

import pytest

from repro.core import AttemptFailed, SlackAttempt, run_attempt
from repro.core.framework import SchedulingAttempt
from repro.ir import DType, LoopBody, Opcode, Operand, build_ddg

from tests.conftest import build_divider_loop, build_figure1_loop


def _attempt(machine, loop, ii, **kwargs):
    ddg = build_ddg(loop, machine)
    return SlackAttempt(loop, machine, ddg, ii, machine.bind_units(loop), **kwargs)


def test_start_is_pinned_at_zero(machine):
    attempt = _attempt(machine, build_figure1_loop(), ii=2)
    assert attempt.times == {attempt.start_oid: 0}
    assert attempt.start_oid not in attempt.unplaced


def test_initial_bounds_figure1(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    # Estart(x) = MinDist(Start, x); Lstart(x) = cap - MinDist(x, Stop).
    for op in loop.real_ops:
        assert attempt.estart[op.oid] >= 0
        assert attempt.lstart[op.oid] >= attempt.estart[op.oid]
    # Critical path: brtop (latency 2) and add+store (1+1) -> cap = 2.
    assert attempt.lstart_cap == 2


def test_cap_rounds_up_to_ii_multiple_under_contention(machine):
    loop = build_divider_loop()  # ResMII = 17 > 1: contention
    attempt = _attempt(machine, loop, ii=17)
    assert attempt.contention
    assert attempt.lstart_cap % 17 == 0
    assert attempt.lstart_cap >= attempt.estart[attempt.stop_oid]


def test_infeasible_ii_rejected(machine):
    loop = LoopBody("tight")
    s = loop.new_value("s", DType.FLOAT)
    loop.add_op(Opcode.MUL_F, s, [Operand(s, back=1)])  # RecMII = 2
    loop.finalize()
    ddg = build_ddg(loop, machine)
    with pytest.raises(ValueError):
        SlackAttempt(loop, machine, ddg, 1, machine.bind_units(loop))


def test_run_places_every_op(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    times = attempt.run()
    assert set(times) == {op.oid for op in loop.ops}
    assert not attempt.unplaced


def test_bounds_track_placements(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    x_def = next(op for op in loop.real_ops if op.dest is not None and op.dest.name == "x")
    store_x = next(
        op for op in loop.real_ops if op.is_store and op.attrs["array"] == "x"
    )
    attempt._place(x_def, 0)
    attempt._refresh_bounds()
    # store_x must now start at least 1 cycle after x's def.
    assert attempt.estart[store_x.oid] >= 1


def test_ejection_restores_unplaced_and_mrt(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    attempt._place(adds[0], 0)
    occupancy = attempt.mrt.occupancy()
    attempt._eject(adds[0].oid)
    assert adds[0].oid in attempt.unplaced
    assert adds[0].oid not in attempt.times
    assert attempt.mrt.occupancy() == occupancy - 1
    assert attempt.stats.ejections == 1


def test_force_place_ejects_resource_blocker(machine):
    loop = build_figure1_loop()
    attempt = _attempt(machine, loop, ii=2)
    adds = [op for op in loop.real_ops if op.opcode is Opcode.ADD_F]
    attempt._place(adds[0], 0)
    attempt._place(adds[1], 1)
    # Force the first add into cycle 1: the second add must be ejected.
    attempt._eject(adds[0].oid)
    attempt._refresh_bounds()
    attempt.last_place[adds[0].oid] = 0
    cycle = attempt._force_place(adds[0])
    assert cycle == 1
    assert adds[1].oid in attempt.unplaced
    assert attempt.stats.forced == 1


def test_budget_exhaustion_raises(machine):
    loop = build_figure1_loop()
    ddg = build_ddg(loop, machine)
    attempt = SlackAttempt(
        loop, machine, ddg, 2, machine.bind_units(loop), budget_ratio=16.0
    )
    attempt.budget = 2  # artificially tiny
    with pytest.raises(AttemptFailed):
        attempt.run()


def test_run_attempt_returns_none_on_failure(machine):
    loop = build_figure1_loop()
    ddg = build_ddg(loop, machine)
    attempt = SlackAttempt(loop, machine, ddg, 2, machine.bind_units(loop))
    attempt.budget = 1
    assert run_attempt(attempt) is None


def test_abstract_hooks_raise(machine):
    loop = build_figure1_loop()
    ddg = build_ddg(loop, machine)
    attempt = SchedulingAttempt(loop, machine, ddg, 2, machine.bind_units(loop))
    with pytest.raises(NotImplementedError):
        attempt.choose_operation()
    with pytest.raises(NotImplementedError):
        attempt.choose_issue_cycle(loop.real_ops[0], 0, 1)
