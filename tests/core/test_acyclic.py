"""Tests for straight-line (acyclic) scheduling: list, IPS, slack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acyclic import (
    acyclic_ddg,
    block_pressure,
    schedule_ips,
    schedule_list,
    schedule_slack,
)
from repro.frontend import ArrayRef, Assign, DoLoop, compile_loop
from repro.ir import ArcKind
from repro.machine import cydra5
from repro.workloads import LoopGenerator
from repro.workloads.livermore import kernel7_state

MACHINE = cydra5()


def _block(program):
    loop = compile_loop(program)
    return loop, acyclic_ddg(loop, MACHINE)


def _check_valid(loop, ddg, schedule, machine=MACHINE):
    """Dependences respected and no unit instance double-booked."""
    times = schedule.times
    assert set(times) == {op.oid for op in loop.ops}
    for arc in ddg.arcs:
        assert times[arc.dst] >= times[arc.src] + arc.latency, arc
    binding = machine.bind_units(loop)
    used = {}
    for op in loop.real_ops:
        unit = binding.get(op.oid)
        if unit is None:
            continue
        for extra in range(machine.busy_cycles(op)):
            key = (unit, times[op.oid] + extra)
            assert key not in used, f"{op} overlaps {used[key]}"
            used[key] = op


def test_acyclic_ddg_drops_carried_arcs():
    loop, ddg = _block(kernel7_state())
    assert all(arc.omega == 0 for arc in ddg.arcs)
    full_flow = [a for a in acyclic_ddg(loop, MACHINE).arcs if a.kind is ArcKind.FLOW]
    assert full_flow  # same-iteration flow survives


@pytest.mark.parametrize(
    "scheduler", [schedule_list, schedule_ips, schedule_slack], ids=["list", "ips", "slack"]
)
def test_schedulers_produce_valid_blocks(scheduler):
    loop, ddg = _block(kernel7_state())
    result = scheduler(loop, MACHINE, ddg)
    _check_valid(loop, ddg, result)
    assert result.length > 0
    assert result.pressure >= 1


def test_makespan_at_least_critical_path():
    loop, ddg = _block(kernel7_state())
    # Critical path lower bound: longest latency chain.
    from repro.bounds import MinDist

    critical = MinDist(ddg, ii=10_000).dist(loop.start.oid, loop.stop.oid)
    for scheduler in (schedule_list, schedule_ips, schedule_slack):
        assert scheduler(loop, MACHINE, ddg).length >= critical


def test_block_pressure_counts_overlaps():
    program = DoLoop(
        "bp",
        body=[Assign(ArrayRef("z"), ArrayRef("x") + ArrayRef("y"))],
        arrays={"z": 30, "x": 30, "y": 30},
        trip=4,
    )
    loop, ddg = _block(program)
    result = schedule_list(loop, MACHINE, ddg)
    # Both loads overlap (issued in parallel, 13-cycle latency each).
    assert result.pressure >= 2


def test_ips_limit_engages_csr_mode():
    """With a tight limit, IPS must not exceed list scheduling's pressure."""
    gen = LoopGenerator(99)
    worse = 0
    for index in range(10):
        program = gen.generate(f"ips{index}", "neither")
        loop, ddg = _block(program)
        base = schedule_list(loop, MACHINE, ddg)
        limited = schedule_ips(loop, MACHINE, ddg, pressure_limit=max(2, base.pressure - 2))
        _check_valid(loop, ddg, limited)
        if limited.pressure > base.pressure:
            worse += 1
    assert worse <= 2  # CSR mode may occasionally lose, not systematically


def test_slack_straight_line_reduces_pressure_in_aggregate():
    """The §8 'future experimentation': bidirectional slack scheduling
    carries its lifetime sensitivity over to straight-line code."""
    gen = LoopGenerator(7)
    totals = {"list": 0, "slack": 0}
    lengths = {"list": 0, "slack": 0}
    for index in range(25):
        program = gen.generate(f"bb{index}", "neither")
        loop, ddg = _block(program)
        for name, scheduler in (("list", schedule_list), ("slack", schedule_slack)):
            result = scheduler(loop, MACHINE, ddg)
            totals[name] += result.pressure
            lengths[name] += result.length
    assert totals["slack"] < totals["list"]
    assert lengths["slack"] <= lengths["list"] * 1.15  # modest makespan cost


@given(st.integers(min_value=0, max_value=2_000))
@settings(max_examples=20, deadline=None)
def test_random_blocks_all_schedulers_valid(seed):
    program = LoopGenerator(seed).generate(f"blk{seed}", "neither")
    loop, ddg = _block(program)
    for scheduler in (schedule_list, schedule_ips, schedule_slack):
        result = scheduler(loop, MACHINE, ddg)
        _check_valid(loop, ddg, result)
