"""Tests for pressure-limited scheduling (the footnote-1 extension)."""

import pytest

from repro.bounds import rr_max_live
from repro.core import SchedulerOptions, modulo_schedule, validate_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5

from tests.conftest import build_accumulator_loop
from repro.workloads.livermore import kernel7_state

MACHINE = cydra5()


def _pressure(loop, ddg, result):
    return rr_max_live(loop, ddg, result.schedule.times, result.schedule.ii)


def test_unlimited_budget_is_default():
    loop = build_accumulator_loop()
    result = modulo_schedule(loop, MACHINE)
    assert result.ii == result.mii


def test_tight_budget_trades_ii_for_registers():
    program = kernel7_state()
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    free = modulo_schedule(loop, MACHINE, ddg=ddg)
    baseline_pressure = _pressure(loop, ddg, free)
    budget = baseline_pressure - 4
    limited = modulo_schedule(
        loop, MACHINE, ddg=ddg,
        options=SchedulerOptions(max_rr_pressure=budget, max_attempts=40),
    )
    assert limited.success
    assert _pressure(loop, ddg, limited) <= budget
    assert limited.ii > free.ii  # registers were bought with cycles
    assert validate_schedule(limited.schedule, ddg) == []


def test_generous_budget_changes_nothing():
    program = kernel7_state()
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    free = modulo_schedule(loop, MACHINE, ddg=ddg)
    roomy = modulo_schedule(
        loop, MACHINE, ddg=ddg,
        options=SchedulerOptions(max_rr_pressure=_pressure(loop, ddg, free) + 10),
    )
    assert roomy.ii == free.ii


def test_impossible_budget_fails_cleanly():
    loop = build_accumulator_loop()  # 13-cycle load alone keeps ~13 live
    result = modulo_schedule(
        loop, MACHINE, options=SchedulerOptions(max_rr_pressure=1, max_attempts=5)
    )
    assert not result.success
    assert result.last_attempted_ii > result.mii
