"""Unit tests for Schedule / ScheduleResult / SchedulerStats plumbing."""

from repro.core import SchedulerStats, modulo_schedule
from repro.machine import cydra5

from tests.conftest import build_accumulator_loop, build_figure1_loop

MACHINE = cydra5()


def test_stats_merge_accumulates_every_field():
    a = SchedulerStats(attempts=1, placements=10, forced=2, ejections=3,
                       mindist_seconds=0.5, scheduling_seconds=1.0)
    b = SchedulerStats(attempts=2, placements=5, forced=1, ejections=4,
                       mindist_seconds=0.25, scheduling_seconds=0.5)
    a.merge(b)
    assert a.attempts == 3
    assert a.placements == 15
    assert a.forced == 3
    assert a.ejections == 7
    assert a.mindist_seconds == 0.75
    assert a.scheduling_seconds == 1.5


def test_stats_backtracked_flag():
    assert not SchedulerStats().backtracked
    assert SchedulerStats(ejections=1).backtracked


def test_schedule_time_of_matches_times():
    result = modulo_schedule(build_figure1_loop(), MACHINE)
    schedule = result.schedule
    for op in schedule.loop.ops:
        assert schedule.time_of(op.oid) == schedule.times[op.oid]


def test_kernel_rows_sorted_by_issue_time():
    result = modulo_schedule(build_accumulator_loop(), MACHINE)
    schedule = result.schedule
    for row in schedule.kernel_rows():
        issue_times = [schedule.times[oid] for oid in row]
        assert issue_times == sorted(issue_times)


def test_kernel_rows_modulo_partition():
    result = modulo_schedule(build_figure1_loop(), MACHINE)
    schedule = result.schedule
    for row_index, row in enumerate(schedule.kernel_rows()):
        for oid in row:
            assert schedule.times[oid] % schedule.ii == row_index


def test_stages_lower_bound():
    result = modulo_schedule(build_accumulator_loop(), MACHINE)
    schedule = result.schedule
    assert schedule.stages >= 1
    assert schedule.stages * schedule.ii >= schedule.span


def test_result_ii_on_success_and_mii_components():
    result = modulo_schedule(build_figure1_loop(), MACHINE)
    assert result.ii == result.schedule.ii
    assert result.mii == max(result.res_mii, result.rec_mii)


def test_render_lists_ops_in_time_order():
    result = modulo_schedule(build_figure1_loop(), MACHINE)
    text = result.schedule.render()
    times = [
        int(line.split("t=")[1].split()[0])
        for line in text.splitlines()
        if "t=" in line
    ]
    assert times == sorted(times)
