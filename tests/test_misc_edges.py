"""Edge-case tests across packages (formatting, parser corners, sizing)."""

import pytest

from repro.experiments.tables import _fmt_quantiles, _pct
from repro.frontend import ArrayRef, Assign, DoLoop, Gather, compile_loop
from repro.frontend.parser import parse_loop
from repro.machine import cydra5
from repro.simulator import initial_state

MACHINE = cydra5()


# ----------------------------------------------------------------------
# Table formatting helpers
# ----------------------------------------------------------------------
def test_fmt_quantiles_int_and_float():
    as_int = _fmt_quantiles([1, 2, 3, 4])
    # Nearest-rank: median index int(0.5*4) = 2 -> 3; p90 index 3 -> 4.
    assert as_int.split() == ["1", "3", "4", "4"]
    as_float = _fmt_quantiles([1.25, 2.5], as_int=False)
    assert "1.25" in as_float and "2.50" in as_float


def test_pct_handles_zero_denominator():
    assert _pct(1.0, 0.0) == "0%"
    assert _pct(1.0, 4.0) == "25%"


# ----------------------------------------------------------------------
# Parser corners
# ----------------------------------------------------------------------
def test_negative_direction_subscript_becomes_gather():
    program = parse_loop(
        """
        loop rev
        array x 40
        array z 40
        do i = 0, 9
            z(i) = x(9 - i)
        end do
        """
    )
    (stmt,) = program.body
    assert isinstance(stmt.expr, Gather)  # negative stride: indirect access


def test_scaled_index_without_i_is_constant_subscript():
    program = parse_loop(
        """
        loop konst
        array x 40
        array z 40
        do i = 0, 9
            z(i) = x(3)
        end do
        """
    )
    (stmt,) = program.body
    # x(3) is affine with stride 0 -> falls back to an indirect access
    # (a constant subscript re-reads one element every iteration).
    assert isinstance(stmt.expr, Gather)


def test_parenthesized_condition_expression():
    program = parse_loop(
        """
        loop parens
        array x 40
        array z 40
        do i = 0, 9
            z(i) = (x(i) + 1.0) * (x(i) - 1.0)
        end do
        """
    )
    loop = compile_loop(program)
    assert len(loop.real_ops) >= 5


def test_cli_rejects_unknown_algorithm_choice():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["--demo", "--algorithm", "nonsense"])


# ----------------------------------------------------------------------
# Simulation state sizing
# ----------------------------------------------------------------------
def test_initial_state_sizes_arrays_to_cover_references():
    program = DoLoop(
        "big",
        body=[Assign(ArrayRef("z", 5, 3), ArrayRef("x"))],
        arrays={"z": 4, "x": 4},  # declared too small on purpose
        start=2,
        trip=10,
    )
    state = initial_state(program)
    # stride 3 * (start 2 + trip 10) + offset 5 = 41 -> at least 43 cells.
    assert len(state.arrays["z"]) >= 42
    assert len(state.arrays["x"]) >= 13


def test_initial_state_seed_changes_contents():
    program = DoLoop(
        "seeded",
        body=[Assign(ArrayRef("z"), ArrayRef("x"))],
        arrays={"z": 10, "x": 10},
        trip=4,
    )
    a = initial_state(program, seed=0)
    b = initial_state(program, seed=1)
    assert a.arrays["x"] != b.arrays["x"]


# ----------------------------------------------------------------------
# Compiler: CSE of guards and selects
# ----------------------------------------------------------------------
def test_identical_conditions_share_one_compare():
    from repro.frontend import Const, If, Scalar
    from repro.ir import COMPARE_OPCODES

    program = DoLoop(
        "sharedcond",
        body=[
            If(ArrayRef("x") > Const(1.0), then=[Assign(ArrayRef("z"), Const(1.0))]),
            If(ArrayRef("x") > Const(1.0), then=[Assign(ArrayRef("w"), Const(2.0))]),
        ],
        arrays={"x": 40, "z": 40, "w": 40},
        trip=8,
    )
    loop = compile_loop(program)
    compares = [op for op in loop.real_ops if op.opcode in COMPARE_OPCODES]
    assert len(compares) == 1  # CSE merged the two identical conditions


def test_dump_lists_memory_dependences():
    program = DoLoop(
        "md",
        body=[
            Assign(ArrayRef("x"), ArrayRef("y")),
            Assign(ArrayRef("y"), ArrayRef("x", -1)),
        ],
        arrays={"x": 40, "y": 40},
        trip=8,
    )
    loop = compile_loop(program, load_store_elimination=False)
    assert "memdep" in loop.dump()
