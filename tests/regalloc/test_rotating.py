"""Unit and property tests for rotating register allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.lifetimes import Lifetime, max_live
from repro.regalloc import allocate_rotating
from repro.regalloc.rotating import _arcs_overlap


class _FakeValue:
    def __init__(self, vid):
        self.vid = vid


def _lifetimes(spans):
    return [Lifetime(_FakeValue(i), s, e) for i, (s, e) in enumerate(spans)]


def test_empty_allocation():
    allocation = allocate_rotating([], ii=4)
    assert allocation.registers == 0
    assert allocation.specifiers == {}


def test_single_value_single_register():
    allocation = allocate_rotating(_lifetimes([(0, 3)]), ii=4)
    assert allocation.registers == 1
    assert allocation.max_live == 1


def test_long_lifetime_needs_multiple_registers():
    # Lifetime of 10 cycles at II=4 spans ceil(10/4) = 3 registers.
    allocation = allocate_rotating(_lifetimes([(0, 10)]), ii=4)
    assert allocation.registers == 3


def test_figure3_naive_values():
    """x in [0,5), y in [1,4) at II=2: MaxLive 4, achievable exactly."""
    allocation = allocate_rotating(_lifetimes([(0, 5), (1, 4)]), ii=2)
    assert allocation.max_live == 4
    assert allocation.registers == allocation.max_live
    assert allocation.overshoot == 0


def test_zero_length_lifetimes_ignored():
    allocation = allocate_rotating(_lifetimes([(3, 3), (0, 2)]), ii=4)
    assert allocation.registers == 1
    assert 1 in allocation.specifiers  # only the live value got a register


@pytest.mark.parametrize("fit", ["first_fit", "best_fit", "end_fit"])
@pytest.mark.parametrize("ordering", ["start", "length", "adjacency"])
def test_all_strategy_combinations_produce_valid_packings(fit, ordering):
    spans = [(0, 7), (1, 4), (2, 9), (3, 5), (5, 11), (6, 8)]
    ii = 3
    allocation = allocate_rotating(_lifetimes(spans), ii, fit=fit, ordering=ordering)
    _assert_conflict_free(spans, allocation, ii)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        allocate_rotating(_lifetimes([(0, 2)]), ii=2, fit="magic")
    with pytest.raises(ValueError):
        allocate_rotating(_lifetimes([(0, 2)]), ii=2, ordering="magic")


def _assert_conflict_free(spans, allocation, ii):
    """No two values may occupy the same physical register at once.

    Physical register of instance k of value v is (s_v_phys - k) mod R
    with s_phys = -specifier; checking arcs pairwise over the circle of
    R*II slots is equivalent (and exhaustive).
    """
    registers = allocation.registers
    circumference = registers * ii
    arcs = []
    for vid, (start, end) in enumerate(spans):
        if end <= start:
            continue
        specifier = allocation.specifiers[vid]
        position = (start - specifier * ii) % circumference
        arcs.append((position, end - start))
    for i in range(len(arcs)):
        for j in range(i + 1, len(arcs)):
            a, b = arcs[i], arcs[j]
            assert not _arcs_overlap(circumference, a[0], a[1], b[0], b[1]), (
                f"arcs {a} and {b} overlap in a {registers}-register file"
            )


@st.composite
def random_lifetime_sets(draw):
    ii = draw(st.integers(min_value=1, max_value=8))
    count = draw(st.integers(min_value=1, max_value=12))
    spans = []
    for _ in range(count):
        start = draw(st.integers(min_value=0, max_value=30))
        length = draw(st.integers(min_value=1, max_value=25))
        spans.append((start, start + length))
    return ii, spans


@given(random_lifetime_sets())
@settings(max_examples=80, deadline=None)
def test_random_packings_are_conflict_free_and_near_maxlive(case):
    ii, spans = case
    lifetimes = _lifetimes(spans)
    allocation = allocate_rotating(lifetimes, ii)
    _assert_conflict_free(spans, allocation, ii)
    # The paper's empirical claim: allocation lands within a handful of
    # registers of the MaxLive bound.  The cushion must scale with the
    # widest single value: one lifetime spanning ceil(len/II) registers
    # can force that much slack on its own (e.g. a 16-cycle value at
    # II=2 occupies 8 registers while MaxLive counts it once per cycle).
    assert allocation.registers >= allocation.max_live
    widest = max(-(-(end - start) // ii) for start, end in spans)
    assert allocation.overshoot <= 6 + widest
