"""Integration tests for whole-loop register assignment."""

import pytest

from repro.core import modulo_schedule
from repro.frontend import compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.regalloc import allocate_registers
from repro.workloads import named_kernels
from repro.workloads.livermore import kernel15_casual, kernel5_tridiag

MACHINE = cydra5()


def _assignment(program):
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    result = modulo_schedule(loop, MACHINE, ddg=ddg)
    assert result.success
    return loop, allocate_registers(result.schedule, ddg)


def test_every_rr_variant_gets_a_specifier():
    loop, assignment = _assignment(kernel5_tridiag())
    from repro.bounds import rr_values

    for value in rr_values(loop):
        # Dead values (no uses) are skipped; live ones must be assigned.
        if any(True for _ in loop.uses_of(value)):
            assert value.vid in assignment.rr.specifiers


def test_predicates_go_to_icr():
    loop, assignment = _assignment(kernel15_casual())
    assert assignment.icr_registers >= 1
    from repro.bounds import icr_values

    for value in icr_values(loop):
        if any(True for _ in loop.uses_of(value)):
            assert value.vid in assignment.icr.specifiers


def test_invariants_get_distinct_gprs():
    loop, assignment = _assignment(kernel5_tridiag())
    indexes = list(assignment.gpr.values())
    assert len(indexes) == len(set(indexes))


def test_allocation_close_to_maxlive_over_kernels():
    """§3.2 / Rau '92: allocation ~always achieves MaxLive + O(1)."""
    worst = 0
    for program in named_kernels()[:18]:
        _, assignment = _assignment(program)
        worst = max(worst, assignment.rr.overshoot)
    assert worst <= 8
