"""Unit tests for textual kernel emission details."""

from repro.codegen import emit_kernel, generate_kernel
from repro.core import modulo_schedule
from repro.frontend import ArrayRef, Assign, DoLoop, Gather, Index, compile_loop
from repro.machine import cydra5

MACHINE = cydra5()


def _emit(program):
    loop = compile_loop(program)
    result = modulo_schedule(loop, MACHINE)
    return emit_kernel(generate_kernel(result.schedule))


def test_affine_memory_comment_shows_displacement():
    text = _emit(
        DoLoop(
            "disp",
            body=[Assign(ArrayRef("z"), ArrayRef("x", -2) + ArrayRef("y", 3))],
            arrays={"z": 40, "x": 60, "y": 60},
            trip=8,
        )
    )
    assert "x[i-2]" in text
    assert "y[i+3]" in text


def test_gather_memory_comment():
    text = _emit(
        DoLoop(
            "ind",
            body=[Assign(ArrayRef("z"), Gather("v", Index()))],
            arrays={"z": 40, "v": 60},
            trip=8,
        )
    )
    assert "v[indirect]" in text


def test_empty_rows_emit_nop():
    # A loop whose II exceeds its op count leaves empty rows.
    program = DoLoop(
        "sparse",
        body=[Assign(ArrayRef("z"), ArrayRef("z", -1) / (ArrayRef("x") + 2.0))],
        arrays={"z": 40, "x": 40},
        trip=8,
    )
    text = _emit(program)
    assert "nop" in text


def test_header_reports_all_three_files():
    text = _emit(
        DoLoop(
            "hdr",
            body=[Assign(ArrayRef("z"), ArrayRef("x") * 2.0)],
            arrays={"z": 40, "x": 40},
            trip=8,
        )
    )
    assert "RR file:" in text
    assert "ICR file:" in text
    assert "GPR file:" in text


def test_predicated_op_renders_guard():
    from repro.frontend import Const, If

    text = _emit(
        DoLoop(
            "grd",
            body=[
                If(ArrayRef("x") > Const(1.0), then=[Assign(ArrayRef("z"), ArrayRef("x"))])
            ],
            arrays={"z": 40, "x": 40},
            trip=8,
        )
    )
    assert " if icr[" in text
