"""Tests for modulo variable expansion (§2.3's rotation-less fallback)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.mve import emit_mve_summary, plan_mve, validate_mve_naming
from repro.core import modulo_schedule
from repro.frontend import ArrayRef, Assign, DoLoop, Scalar, compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.workloads import LoopGenerator
from repro.workloads.livermore import kernel1_hydro, kernel5_tridiag

MACHINE = cydra5()


def _plan(program, policy="minimal"):
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    result = modulo_schedule(loop, MACHINE, ddg=ddg)
    assert result.success
    return plan_mve(result.schedule, ddg, policy=policy), ddg


def test_unroll_factor_covers_longest_lifetime():
    plan, ddg = _plan(kernel1_hydro())
    ii = plan.schedule.ii
    from repro.bounds import rr_values, schedule_lifetimes

    longest = max(
        lt.length
        for lt in schedule_lifetimes(plan.loop, ddg, plan.schedule.times, ii)
    )
    assert plan.unroll >= math.ceil(longest / ii)
    for vid, width in plan.names_per_value.items():
        assert plan.unroll % width == 0  # minimal policy: U = lcm of widths


def test_uniform_policy_uses_max_width_everywhere():
    plan, _ = _plan(kernel1_hydro(), policy="uniform")
    widths = set(plan.names_per_value.values())
    assert widths == {plan.unroll}


def test_minimal_needs_fewer_registers_than_uniform():
    minimal, _ = _plan(kernel5_tridiag(), policy="minimal")
    uniform, _ = _plan(kernel5_tridiag(), policy="uniform")
    assert minimal.total_registers <= uniform.total_registers


def test_naming_is_collision_free():
    for program in (kernel1_hydro(), kernel5_tridiag()):
        for policy in ("minimal", "uniform"):
            plan, ddg = _plan(program, policy)
            assert validate_mve_naming(plan, ddg) == []


def test_name_of_cycles_with_the_right_period():
    plan, _ = _plan(kernel1_hydro())
    for vid, width in plan.names_per_value.items():
        names = {plan.name_of(vid, k) for k in range(3 * width)}
        assert len(names) == width
        assert plan.name_of(vid, 0) == plan.name_of(vid, width)
        # Pre-loop (live-in) instances cycle through the same names.
        assert plan.name_of(vid, -1) == plan.name_of(vid, width - 1)


def test_names_are_disjoint_across_values():
    plan, _ = _plan(kernel5_tridiag())
    seen = set()
    for vid, width in plan.names_per_value.items():
        mine = {plan.name_of(vid, k) for k in range(width)}
        assert not (mine & seen)
        seen |= mine
    assert plan.total_registers == len(seen)


def test_code_expansion_accounting():
    plan, _ = _plan(kernel5_tridiag())
    assert plan.total_ops == (
        plan.prologue_ops + plan.unroll * plan.kernel_ops + plan.epilogue_ops
    )
    assert plan.expansion > 1.0  # kernel-only code is strictly smaller
    # Prologue + epilogue together replicate stages-1 full kernels.
    assert plan.prologue_ops + plan.epilogue_ops == (plan.stages - 1) * plan.kernel_ops


def test_unknown_policy_rejected():
    loop = compile_loop(kernel1_hydro())
    result = modulo_schedule(loop, MACHINE)
    with pytest.raises(ValueError):
        plan_mve(result.schedule, policy="magic")


def test_minimal_lcm_cap():
    loop = compile_loop(kernel1_hydro())
    result = modulo_schedule(loop, MACHINE)
    with pytest.raises(RuntimeError):
        plan_mve(result.schedule, policy="minimal", unroll_cap=1)


def test_summary_mentions_expansion():
    plan, _ = _plan(kernel1_hydro())
    text = emit_mve_summary(plan)
    assert "expansion" in text and "unroll" in text


@given(st.integers(min_value=0, max_value=2_000))
@settings(max_examples=20, deadline=None)
def test_random_loops_get_collision_free_names(seed):
    program = LoopGenerator(seed).generate(f"mve{seed}", "neither")
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    result = modulo_schedule(loop, MACHINE, ddg=ddg)
    plan = plan_mve(result.schedule, ddg, policy="uniform")
    assert validate_mve_naming(plan, ddg) == []


def test_power2_policy_divides_unroll():
    plan, ddg = _plan(kernel1_hydro(), policy="power2")
    for width in plan.names_per_value.values():
        assert plan.unroll % width == 0
        assert width & (width - 1) == 0  # powers of two
    assert validate_mve_naming(plan, ddg) == []


def test_power2_bounded_unroll_vs_minimal():
    minimal, _ = _plan(kernel1_hydro(), policy="minimal")
    power2, _ = _plan(kernel1_hydro(), policy="power2")
    # kernel1's widths {1,2,5,7} give lcm 70 but power-2 max only 8.
    assert minimal.unroll == 70
    assert power2.unroll == 8
    assert power2.total_registers >= minimal.total_registers
