"""Unit tests for kernel-only code generation and emission."""

import pytest

from repro.codegen import emit_kernel, generate_kernel
from repro.core import modulo_schedule
from repro.frontend import ArrayRef, Assign, DoLoop, Scalar, compile_loop
from repro.ir import build_ddg
from repro.machine import cydra5
from repro.regalloc import allocate_registers
from repro.workloads.livermore import kernel5_tridiag, kernel15_casual

MACHINE = cydra5()


def _kernel(program):
    loop = compile_loop(program)
    ddg = build_ddg(loop, MACHINE)
    result = modulo_schedule(loop, MACHINE, ddg=ddg)
    return generate_kernel(result.schedule, allocate_registers(result.schedule, ddg))


def test_rows_cover_every_real_op():
    kernel = _kernel(kernel5_tridiag())
    assert len(kernel.rows) == kernel.ii
    ops = kernel.all_ops()
    assert len(ops) == len(kernel.loop.real_ops)


def test_row_and_stage_match_schedule():
    kernel = _kernel(kernel5_tridiag())
    for kop in kernel.all_ops():
        time = kernel.schedule.times[kop.op.oid]
        assert kop.row == time % kernel.ii
        assert kop.stage == time // kernel.ii


def test_use_specifier_adds_stage_and_distance():
    """The rotation encoding: use spec = def spec + stage delta + back."""
    kernel = _kernel(kernel5_tridiag())
    by_oid = {kop.op.oid: kop for kop in kernel.all_ops()}
    for kop in kernel.all_ops():
        for ir_operand, encoded in zip(kop.op.operands, kop.operands):
            if encoded.kind not in ("rr", "icr"):
                continue
            defop = ir_operand.value.defop
            def_kop = by_oid[defop.oid]
            assert def_kop.dest is not None
            base = def_kop.dest.spec - def_kop.stage
            assert encoded.spec == base + kop.stage + ir_operand.back


def test_predicated_ops_carry_icr_operand():
    kernel = _kernel(kernel15_casual())
    predicated = [kop for kop in kernel.all_ops() if kop.op.predicate is not None]
    assert predicated
    assert all(kop.predicate is not None and kop.predicate.kind == "icr" for kop in predicated)


def test_invariants_and_constants_encode_as_gpr_and_imm():
    program = DoLoop(
        "mix",
        body=[Assign(ArrayRef("z"), Scalar("a") * ArrayRef("x") + 2.0)],
        arrays={"z": 30, "x": 30},
        scalars={"a": 1.5},
        trip=8,
    )
    kernel = _kernel(program)
    kinds = {o.kind for kop in kernel.all_ops() for o in kop.operands}
    assert "gpr" in kinds and "imm" in kinds and "rr" in kinds


def test_emit_kernel_listing():
    kernel = _kernel(kernel5_tridiag())
    text = emit_kernel(kernel)
    assert f"II = {kernel.ii} cycles" in text
    assert "row 0:" in text
    assert "store" in text and "mulf" in text
    assert "rotating registers" in text


def test_operand_render():
    kernel = _kernel(kernel5_tridiag())
    rendered = [o.render() for kop in kernel.all_ops() for o in kop.operands]
    assert any(r.startswith("rr[p+") for r in rendered)
    assert any(r.startswith("#") for r in rendered)
