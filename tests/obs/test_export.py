"""Export formats: JSONL round trip and Chrome trace-event structure."""

import json

from repro.core import modulo_schedule
from repro.obs import (
    CollectingTracer,
    load_jsonl,
    replay_times,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)

from tests.conftest import build_divider_loop, build_figure1_loop


def traced(machine, build=build_figure1_loop):
    tracer = CollectingTracer()
    result = modulo_schedule(build(), machine, tracer=tracer)
    return result, tracer.events


def test_jsonl_roundtrip_is_lossless(machine, tmp_path):
    result, events = traced(machine)
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(events, path)
    loaded = load_jsonl(path)
    assert [e.to_dict() for e in loaded] == [e.to_dict() for e in events]
    # The acceptance criterion: a written trace replays to the schedule.
    assert replay_times(loaded) == result.schedule.times


def test_jsonl_is_one_object_per_line(machine, tmp_path):
    _, events = traced(machine)
    path = str(tmp_path / "trace.jsonl")
    write_jsonl(events, path)
    with open(path) as handle:
        lines = [line for line in handle.read().splitlines() if line]
    assert len(lines) == len(events)
    for line in lines:
        payload = json.loads(line)
        assert "kind" in payload and "seq" in payload and "ts" in payload


def test_jsonl_empty_trace(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    write_jsonl([], path)
    assert load_jsonl(path) == []
    assert to_jsonl([]) == ""


def test_chrome_trace_structure(machine, tmp_path):
    """Structural validation of what chrome://tracing / Perfetto needs."""
    _, events = traced(machine, build_divider_loop)
    path = str(tmp_path / "trace.json")
    write_chrome_trace(events, path)
    with open(path) as handle:
        document = json.load(handle)
    assert isinstance(document["traceEvents"], list)
    phases = set()
    for entry in document["traceEvents"]:
        assert "name" in entry and "ph" in entry and "pid" in entry
        phases.add(entry["ph"])
        if entry["ph"] != "M":
            assert entry["ts"] >= 0
        if entry["ph"] == "X":
            assert entry["dur"] > 0
    # Metadata, attempt slices, instants, and the placed-ops counter.
    assert {"M", "X", "i", "C"} <= phases


def test_chrome_trace_attempt_slices(machine):
    result, events = traced(machine)
    document = to_chrome_trace(events)
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == result.stats.attempts
    assert any("[ok]" in s["name"] for s in slices)


def test_chrome_counter_track_ends_at_op_count(machine):
    result, events = traced(machine)
    counters = [
        e["args"]["placed"]
        for e in to_chrome_trace(events)["traceEvents"]
        if e["ph"] == "C"
    ]
    # The final counter value is every op placed (incl. Start and Stop).
    assert counters[-1] == len(result.loop.ops)
