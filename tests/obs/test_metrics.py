"""Metrics registry: instruments, snapshots, and scheduler wiring."""

import pytest

from repro.core import modulo_schedule
from repro.obs import MetricsRegistry, record_mrt_occupancy
from repro.obs.metrics import Counter, Gauge, Histogram, Timer

from tests.conftest import build_divider_loop, build_figure1_loop


def test_counter_and_gauge():
    counter, gauge = Counter(), Gauge()
    counter.inc()
    counter.inc(4)
    gauge.set(2.5)
    assert counter.value == 5
    assert gauge.value == 2.5


def test_timer_accumulates_sections():
    timer = Timer()
    with timer.time():
        pass
    timer.add(0.25)
    assert timer.count == 2
    assert timer.seconds >= 0.25


def test_histogram_summary():
    histogram = Histogram()
    for value in [1, 2, 3, 4, 100]:
        histogram.record(value)
    summary = histogram.summary()
    assert summary["count"] == 5
    assert summary["min"] == 1 and summary["max"] == 100
    assert summary["p50"] == 3
    assert summary["mean"] == pytest.approx(22.0)


def test_empty_histogram_summary():
    assert Histogram().summary()["count"] == 0
    assert Histogram().percentile(0.9) == 0.0


def test_registry_reuses_instruments():
    metrics = MetricsRegistry()
    assert metrics.counter("a") is metrics.counter("a")
    assert metrics.timer("t") is metrics.timer("t")
    assert metrics.histogram("h") is metrics.histogram("h")
    assert metrics.gauge("g") is metrics.gauge("g")


def test_snapshot_is_json_safe():
    import json

    metrics = MetricsRegistry()
    metrics.counter("runs").inc()
    metrics.gauge("load").set(0.5)
    metrics.timer("phase").add(0.1)
    metrics.histogram("sizes").record(3)
    snapshot = metrics.snapshot()
    json.dumps(snapshot)
    assert snapshot["counters"]["runs"] == 1
    assert snapshot["histograms"]["sizes"]["count"] == 1


def test_render_lists_every_instrument():
    metrics = MetricsRegistry()
    metrics.counter("runs").inc(3)
    metrics.histogram("sizes").record(7)
    text = metrics.render()
    assert "runs" in text and "sizes" in text
    assert MetricsRegistry().render().endswith("(no instruments recorded)")


def test_scheduler_populates_registry(machine):
    metrics = MetricsRegistry()
    result = modulo_schedule(build_divider_loop(), machine, metrics=metrics)
    assert result.success
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["scheduler.attempts"] == result.stats.attempts
    assert snapshot["timers"]["phase.scheduling"]["count"] == result.stats.attempts
    scans = snapshot["histograms"]["scheduler.scan_window_length"]
    assert scans["count"] > 0 and scans["min"] >= 1
    # MRT occupancy gauges exist for every unit instance and are in [0,1].
    occupancies = {
        name: value
        for name, value in snapshot["gauges"].items()
        if name.startswith("mrt.occupancy.")
    }
    assert len(occupancies) == sum(u.count for u in machine.unit_classes)
    assert all(0.0 <= value <= 1.0 for value in occupancies.values())


def test_record_mrt_occupancy_matches_resource_table(machine):
    result = modulo_schedule(build_figure1_loop(), machine)
    metrics = MetricsRegistry()
    record_mrt_occupancy(metrics, result.schedule)
    # figure1 saturates the single Adder at II=2 (two addf per iteration).
    assert metrics.gauge("mrt.occupancy.Adder[0]").value == 1.0
    record_mrt_occupancy(None, result.schedule)  # no-op without a registry
