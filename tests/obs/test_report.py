"""The HTML report builder: determinism, section wiring, the CLI."""

import json

from repro.obs.bench import BENCH_SCHEMA, metric, wrap_payload
from repro.obs.progress import ProgressEvent
from repro.obs.regress import compare_sets
from repro.obs.report import (
    build_report,
    delta_table_html,
    flamegraph_svg,
    histogram_svg,
    report_main,
    scatter_svg,
    sparkline_svg,
)

LOOP_RECORDS = [
    {
        "name": "ll1", "success": True, "ii": 4, "mii": 4,
        "min_avg": 6.0, "max_live": 7, "scheduling_seconds": 0.010,
        "failure_reason": None,
    },
    {
        "name": "ll2", "success": True, "ii": 6, "mii": 5,
        "min_avg": 9.5, "max_live": 12, "scheduling_seconds": 0.025,
        "failure_reason": None,
    },
    {
        "name": "ll3", "success": False, "ii": 0, "mii": 5,
        "min_avg": 0.0, "max_live": 0, "scheduling_seconds": 0.080,
        "failure_reason": "ii_cap",
    },
]

REGISTRY = {
    "counters": {
        "service.cache.hits": 2,
        "service.cache.misses": 1,
        "service.progress.submitted": 3,
        "service.progress.finished": 2,
        "service.stragglers.flagged": 1,
    },
    "gauges": {},
    "timers": {},
    "histogram_values": {"service.job.seconds": [0.01, 0.025, 0.08]},
}

PROFILE = {
    "spans": {
        "driver": {"calls": 3, "cum_seconds": 0.10, "self_seconds": 0.02},
        "driver;mindist": {
            "calls": 3, "cum_seconds": 0.05, "self_seconds": 0.05,
        },
        "driver;schedule": {
            "calls": 3, "cum_seconds": 0.03, "self_seconds": 0.03,
        },
    },
    "counters": {"scan.ops": 42},
    "peak_memory_bytes": 1_000_000,
}

PROGRESS = [
    ProgressEvent(kind="submitted", job=0, loop="ll1", ts=1.0),
    ProgressEvent(kind="started", job=0, loop="ll1", ts=1.1),
    ProgressEvent(
        kind="straggler", job=0, loop="ll1", ts=2.0, seconds=0.9, ratio=6.2
    ),
    ProgressEvent(
        kind="finished", job=0, loop="ll1", ts=2.0, status="ok", seconds=0.9
    ),
]


def _bench_payload(value):
    return wrap_payload(
        BENCH_SCHEMA,
        {
            "scenario": "slack",
            "metrics": {"mean_ii": metric(value, "cycles", direction="lower")},
        },
    )


def _full_report():
    deltas = compare_sets(
        {"slack": _bench_payload(5.0)}, {"slack": _bench_payload(6.0)}
    )
    return build_report(
        title="test report",
        loop_records=LOOP_RECORDS,
        registry=REGISTRY,
        profile=PROFILE,
        trace_records=[{"type": "place"}, {"type": "place"}, {"type": "eject"}],
        progress_events=PROGRESS,
        deltas=deltas,
    )


def test_report_is_byte_deterministic():
    assert _full_report() == _full_report()


def test_report_contains_every_section_and_no_scripts():
    document = _full_report()
    for fragment in (
        "Where the time went",
        "Scheduling latency distribution",
        "Register pressure vs the MinAvg bound",
        "Breakdowns",
        "Stragglers",
        "Regression comparison",
        "Cache hit rate",
        "Job latency p99",
    ):
        assert fragment in document
    assert "<script" not in document
    assert "http://" not in document and "https://" not in document


def test_report_with_no_inputs_is_still_valid():
    document = build_report(title="empty")
    assert document.startswith("<!DOCTYPE html>")
    assert "empty" in document


def test_loop_names_are_escaped():
    records = [dict(LOOP_RECORDS[0], name="<b>&nasty")]
    document = build_report(loop_records=records)
    assert "<b>&nasty" not in document
    assert "&lt;b&gt;&amp;nasty" in document


def test_histogram_svg_handles_identical_values():
    svg = histogram_svg([5.0, 5.0, 5.0])
    assert "<path" in svg and "NaN" not in svg


def test_scatter_svg_two_series_with_legend():
    svg = scatter_svg([(6.0, 7.0, "a", True), (9.0, 12.0, "b", False)])
    assert svg.count('class="dot') == 2
    assert "II = MII" in svg and "legend" in svg


def test_flamegraph_nests_children_inside_parents():
    svg = flamegraph_svg(PROFILE["spans"])
    assert svg.count("<rect") == 3
    assert "driver &gt; mindist" in svg


def test_delta_table_marks_regressions():
    deltas = compare_sets(
        {"slack": _bench_payload(5.0)}, {"slack": _bench_payload(6.0)}
    )
    table = delta_table_html(deltas)
    assert "regression" in table
    assert "&#9650;" in table  # icon + word, never color alone


def test_report_cli_end_to_end(tmp_path, capsys):
    metrics_path = tmp_path / "m.json"
    metrics_path.write_text(json.dumps(LOOP_RECORDS))
    registry_path = tmp_path / "reg.json"
    registry_path.write_text(json.dumps(REGISTRY))
    out = tmp_path / "report.html"
    code = report_main(
        [
            "--metrics", str(metrics_path),
            "--registry", str(registry_path),
            "--out", str(out),
        ]
    )
    assert code == 0
    document = out.read_text()
    assert "Scheduling latency distribution" in document
    assert "report ->" in capsys.readouterr().out
    # Second render of the same inputs is byte-identical.
    out2 = tmp_path / "report2.html"
    assert report_main(
        [
            "--metrics", str(metrics_path),
            "--registry", str(registry_path),
            "--out", str(out2),
        ]
    ) == 0
    assert out2.read_text() == document


def test_report_cli_requires_an_input(capsys):
    assert report_main(["--out", "x.html"]) == 2
    assert "nothing to report" in capsys.readouterr().err


# ----------------------------------------------------------------------
# History trend sections
# ----------------------------------------------------------------------
def _history_db(tmp_path, walls):
    from repro.obs.bench import metric as _metric
    from repro.obs.history import HistoryStore

    db = str(tmp_path / "h.sqlite")
    store = HistoryStore(db)
    for wall in walls:
        store.record_payload(
            "slack",
            wrap_payload(
                BENCH_SCHEMA,
                {
                    "scenario": "slack",
                    "metrics": {"wall_s": _metric(wall, "s", kind="time")},
                },
            ),
        )
    store.close()
    return db


def test_sparkline_svg_marks_anomalies_and_latest():
    svg = sparkline_svg([1.0, 1.0, None, 1.0, 2.0], [False] * 4 + [True])
    assert '<polyline class="line"' in svg
    assert svg.count('class="anom"') == 1
    assert 'class="last"' in svg
    assert "NaN" not in svg
    assert sparkline_svg([None, None], [False, False]) == (
        '<span class="empty">no data</span>'
    )


def test_report_renders_trend_section_deterministically(tmp_path):
    from repro.obs.history import HistoryStore, metric_trends

    db = _history_db(tmp_path, [1.0, 1.01, 0.99, 1.0, 1.02, 1.0, 1.01, 1.9])
    store = HistoryStore(db)
    trends = {"slack": metric_trends(store.runs("slack"))}
    store.close()
    document = build_report(trends=trends)
    assert document == build_report(trends=trends)
    assert "History: slack" in document
    assert "history (1 scenarios)" in document
    assert '<polyline class="line"' in document
    assert 'class="anom"' in document  # the doctored jump is flagged


def test_report_cli_history_end_to_end(tmp_path, capsys):
    db = _history_db(tmp_path, [1.0, 1.0, 1.0])
    out = tmp_path / "report.html"
    assert report_main(["--history", db, "--out", str(out)]) == 0
    document = out.read_text()
    assert "History: slack" in document and "wall_s" in document
    capsys.readouterr()
    # --history alone satisfies the input requirement; bad DBs exit 2.
    bad = tmp_path / "bad.sqlite"
    bad.write_text("not a database")
    assert report_main(["--history", str(bad), "--out", str(out)]) == 2
    assert "error:" in capsys.readouterr().err


def test_report_cli_rejects_bad_input(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert report_main(["--metrics", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err
