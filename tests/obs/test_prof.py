"""Profiler spans: nesting, self vs cumulative time, counters, memory."""

import json

from repro.obs import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.prof import PATH_SEP


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def test_nested_spans_accumulate_self_and_cumulative_time():
    clock = FakeClock()
    prof = Profiler(clock=clock)
    with prof.span("outer"):
        clock.tick(1.0)
        with prof.span("inner"):
            clock.tick(2.0)
        clock.tick(0.5)
    snap = prof.snapshot()
    outer = snap["spans"]["outer"]
    inner = snap["spans"][f"outer{PATH_SEP}inner"]
    assert outer["calls"] == 1 and inner["calls"] == 1
    assert outer["cum_seconds"] == 3.5
    assert outer["self_seconds"] == 1.5  # 3.5 total minus the 2.0 child
    assert inner["cum_seconds"] == inner["self_seconds"] == 2.0


def test_same_name_different_parents_get_distinct_paths():
    clock = FakeClock()
    prof = Profiler(clock=clock)
    for parent in ("a", "b"):
        with prof.span(parent):
            with prof.span("work"):
                clock.tick(1.0)
    spans = prof.snapshot()["spans"]
    assert f"a{PATH_SEP}work" in spans and f"b{PATH_SEP}work" in spans


def test_repeated_spans_count_calls():
    clock = FakeClock()
    prof = Profiler(clock=clock)
    for _ in range(5):
        with prof.span("step"):
            clock.tick(0.1)
    stat = prof.snapshot()["spans"]["step"]
    assert stat["calls"] == 5
    assert abs(stat["cum_seconds"] - 0.5) < 1e-9


def test_counters_accumulate():
    prof = Profiler()
    prof.count("placements")
    prof.count("placements", 4)
    prof.count("scans", 10)
    counters = prof.snapshot()["counters"]
    assert counters == {"placements": 5, "scans": 10}


def test_snapshot_is_json_safe_and_report_renders():
    clock = FakeClock()
    prof = Profiler(clock=clock)
    with prof.span("phase"):
        clock.tick(1.0)
    prof.count("things", 3)
    json.dumps(prof.snapshot())  # must not raise
    report = prof.report()
    assert "phase" in report and "things" in report and "calls" in report


def test_merge_folds_spans_and_counters():
    clock = FakeClock()
    a, b = Profiler(clock=clock), Profiler(clock=clock)
    with a.span("s"):
        clock.tick(1.0)
    with b.span("s"):
        clock.tick(2.0)
    b.count("c", 7)
    a.merge(b)
    snap = a.snapshot()
    assert snap["spans"]["s"]["calls"] == 2
    assert snap["spans"]["s"]["cum_seconds"] == 3.0
    assert snap["counters"]["c"] == 7


def test_null_profiler_is_disabled_and_normalized_away():
    assert NULL_PROFILER.enabled is False
    assert isinstance(NULL_PROFILER, NullProfiler)
    # The normalization every instrumented site performs:
    prof = NULL_PROFILER if (NULL_PROFILER is not None and NULL_PROFILER.enabled) else None
    assert prof is None


def test_memory_capture_records_peak():
    prof = Profiler(memory=True)
    with prof.span("alloc"):
        blob = [bytearray(1024) for _ in range(512)]
    snap = prof.snapshot()
    prof.close()
    assert snap["peak_memory_bytes"] is not None
    assert snap["peak_memory_bytes"] > 0
    del blob


def test_exception_inside_span_still_closes_it():
    clock = FakeClock()
    prof = Profiler(clock=clock)
    try:
        with prof.span("risky"):
            clock.tick(1.0)
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    stat = prof.snapshot()["spans"]["risky"]
    assert stat["calls"] == 1 and stat["cum_seconds"] == 1.0


def test_scheduler_run_produces_expected_spans(figure1_loop, machine):
    from repro.core import modulo_schedule

    prof = Profiler()
    result = modulo_schedule(figure1_loop, machine, profiler=prof)
    assert result.success
    snap = prof.snapshot()
    paths = set(snap["spans"])
    assert "bounds.resmii" in paths and "bounds.recmii" in paths
    assert "driver.attempt" in paths
    assert any(p.endswith("bounds.mindist") for p in paths)
    assert snap["counters"]["framework.placements"] >= len(figure1_loop.real_ops)
    assert snap["counters"]["driver.attempts"] == result.stats.attempts
